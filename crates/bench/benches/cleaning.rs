//! Criterion micro-benchmarks for the end-to-end cleaners — the runtime side
//! of Figures 6, 11, 15 and Tables 5–6.
//!
//! * `mlnclean_error_rate/*` — MLNClean runtime as the error rate grows
//!   (Figure 6c/6d, MLNClean series);
//! * `holoclean_error_rate/*` — HoloClean runtime on the same inputs
//!   (Figure 6c/6d, HoloClean series);
//! * `mlnclean_threshold/*` — runtime vs. the AGP threshold τ (Figure 11);
//! * `mlnclean_metric/*` — runtime under different distance metrics (Table 5);
//! * `distributed_workers/*` — distributed runtime vs. worker count (Table 6,
//!   Figure 15).

use bench::{Scale, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distance::Metric;
use distributed::DistributedMlnClean;
use holoclean::{HoloClean, HoloCleanConfig};
use mlnclean::{CleanConfig, MlnClean};

fn mlnclean_error_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlnclean_error_rate");
    group.sample_size(10);
    for &rate in &[0.05, 0.15, 0.30] {
        let dirty = Workload::Car.dirty(Scale::Tiny, rate, 0.5, 1);
        let rules = Workload::Car.rules();
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
        group.bench_with_input(
            BenchmarkId::new("CAR", format!("{}%", rate * 100.0)),
            &dirty,
            |b, d| {
                b.iter(|| cleaner.clean(&d.dirty, &rules).expect("clean"));
            },
        );
    }
    group.finish();
}

fn holoclean_error_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("holoclean_error_rate");
    group.sample_size(10);
    for &rate in &[0.05, 0.15, 0.30] {
        let dirty = Workload::Car.dirty(Scale::Tiny, rate, 0.5, 1);
        let rules = Workload::Car.rules();
        let noisy = dirty.erroneous_cells();
        let cleaner = HoloClean::new(HoloCleanConfig::default());
        group.bench_with_input(
            BenchmarkId::new("CAR", format!("{}%", rate * 100.0)),
            &dirty,
            |b, d| {
                b.iter(|| cleaner.repair(&d.dirty, &rules, &noisy));
            },
        );
    }
    group.finish();
}

fn mlnclean_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlnclean_threshold");
    group.sample_size(10);
    let dirty = Workload::Car.dirty(Scale::Tiny, 0.05, 0.5, 2);
    let rules = Workload::Car.rules();
    for &tau in &[0usize, 1, 3, 5] {
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(tau));
        group.bench_with_input(BenchmarkId::from_parameter(tau), &dirty, |b, d| {
            b.iter(|| cleaner.clean(&d.dirty, &rules).expect("clean"));
        });
    }
    group.finish();
}

fn mlnclean_metric(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlnclean_metric");
    group.sample_size(10);
    let dirty = Workload::Car.dirty(Scale::Tiny, 0.05, 0.5, 3);
    let rules = Workload::Car.rules();
    for metric in [Metric::Levenshtein, Metric::Cosine] {
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(1).with_metric(metric));
        group.bench_with_input(
            BenchmarkId::from_parameter(metric.name()),
            &dirty,
            |b, d| {
                b.iter(|| cleaner.clean(&d.dirty, &rules).expect("clean"));
            },
        );
    }
    group.finish();
}

fn distributed_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_workers");
    group.sample_size(10);
    let dirty = Workload::Tpch.dirty(Scale::Tiny, 0.05, 0.5, 4);
    let rules = Workload::Tpch.rules();
    for &workers in &[2usize, 4, 8] {
        let cleaner = DistributedMlnClean::new(workers, CleanConfig::default().with_tau(2));
        group.bench_with_input(BenchmarkId::from_parameter(workers), &dirty, |b, d| {
            b.iter(|| cleaner.clean(&d.dirty, &rules).expect("clean"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    mlnclean_error_rate,
    holoclean_error_rate,
    mlnclean_threshold,
    mlnclean_metric,
    distributed_workers
);
criterion_main!(benches);
