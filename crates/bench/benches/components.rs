//! Criterion micro-benchmarks for the individual MLNClean components and
//! substrates: MLN index construction, weight learning, the string metrics,
//! and the data partitioner.  These back the complexity claims of Sections 4
//! and 5 (index construction is O(|rules|·|tuples|), weight learning
//! dominates, FSCR is per-tuple factorial in the number of rules).

use bench::{Scale, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distance::{DistanceMetric, Metric};
use distributed::{partition_dataset, PartitionConfig};
use mln::{learn_gamma_weights, LearningConfig};
use mlnclean::{AbnormalGroupProcessor, ConflictResolver, MlnIndex, ReliabilityCleaner};

fn index_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("mln_index_build");
    group.sample_size(20);
    for workload in [Workload::Car, Workload::Hai] {
        let dirty = workload.dirty(Scale::Tiny, 0.05, 0.5, 1);
        let rules = workload.rules();
        group.bench_with_input(
            BenchmarkId::from_parameter(workload.name()),
            &dirty,
            |b, d| {
                b.iter(|| MlnIndex::build(&d.dirty, &rules).expect("index"));
            },
        );
    }
    group.finish();
}

fn weight_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_weight_learning");
    for &gammas in &[10usize, 100, 1000] {
        let counts: Vec<usize> = (0..gammas).map(|i| 1 + i % 17).collect();
        group.bench_with_input(BenchmarkId::from_parameter(gammas), &counts, |b, counts| {
            b.iter(|| learn_gamma_weights(counts, &LearningConfig::default()));
        });
    }
    group.finish();
}

fn stage_breakdown(c: &mut Criterion) {
    // AGP → RSC → FSCR individually, on the CAR workload at 5% errors.
    let dirty = Workload::Car.dirty(Scale::Tiny, 0.05, 0.5, 7);
    let rules = Workload::Car.rules();
    let base_index = MlnIndex::build(&dirty.dirty, &rules).expect("index");

    let mut group = c.benchmark_group("stage_breakdown");
    group.sample_size(20);
    group.bench_function("agp", |b| {
        b.iter(|| {
            let mut index = base_index.clone();
            AbnormalGroupProcessor::new(1, Metric::Levenshtein).process(&mut index)
        });
    });
    group.bench_function("weights+rsc", |b| {
        b.iter(|| {
            let mut index = base_index.clone();
            AbnormalGroupProcessor::new(1, Metric::Levenshtein).process(&mut index);
            mlnclean::weights::assign_weights(&mut index);
            ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index)
        });
    });
    group.bench_function("fscr", |b| {
        let mut index = base_index.clone();
        AbnormalGroupProcessor::new(1, Metric::Levenshtein).process(&mut index);
        mlnclean::weights::assign_weights(&mut index);
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        b.iter(|| ConflictResolver::new(6).resolve(&dirty.dirty, &index));
    });
    group.finish();
}

fn string_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_metrics");
    let pairs = [
        ("DOTHAN", "DOTH"),
        ("2567688400", "2567638410"),
        ("CUSTOMER#000000042", "CUSTOMER#000000024"),
    ];
    for metric in Metric::ALL {
        group.bench_function(metric.name(), |b| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|(a, bs)| metric.normalized_distance(a, bs))
                    .sum::<f64>()
            });
        });
    }
    group.finish();
}

fn data_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_partitioning");
    group.sample_size(10);
    let dirty = Workload::Tpch.dirty(Scale::Tiny, 0.05, 0.5, 5);
    for &parts in &[2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(parts), &dirty, |b, d| {
            b.iter(|| partition_dataset(&d.dirty, &PartitionConfig::new(parts, 1)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    index_construction,
    weight_learning,
    stage_breakdown,
    string_metrics,
    data_partitioning
);
criterion_main!(benches);
