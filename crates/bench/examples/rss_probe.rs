//! One-off RSS probe for the memory-budget work: run the incremental
//! engine over the ladder's TPC-H stream at a given row count and print
//! VmHWM at each phase boundary.
//!
//! Usage: `rss_probe [rows] [budget_bytes]`

use bench::common::PeakRss;
use datagen::{batched, TpchGenerator};
use mlnclean::CleaningSession;
use std::time::Instant;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let budget: Option<usize> = std::env::args().nth(2).and_then(|s| s.parse().ok());
    let entities = (rows / 25).max(1);

    let meter = PeakRss::probe();
    println!("meter: {meter:?}");

    let clean_config = mlnclean::CleanConfig::default()
        .with_tau(2)
        .with_agp_distance_guard(0.15);
    let clean_config = match budget {
        Some(b) => {
            println!("budget: {b} bytes");
            clean_config.with_memory_budget(b)
        }
        None => clean_config,
    };

    meter.reset();
    let mut session = CleaningSession::new(
        clean_config,
        TpchGenerator::schema(),
        TpchGenerator::rules(),
    )
    .expect("rules match schema");
    let mut stream = TpchGenerator::default()
        .with_rows(rows)
        .with_customers(entities)
        .with_seed(1)
        .dirty_row_stream(0.02, 0.5, 1);
    let started = Instant::now();
    for batch in batched(&mut stream, 4_096) {
        session.ingest_batch(batch).expect("rows match schema");
    }
    println!(
        "ingest {rows} rows: {:.1}s, VmHWM {:?} KiB",
        started.elapsed().as_secs_f64(),
        PeakRss::read_kib()
    );
    let started = Instant::now();
    let report = session.outcome();
    println!(
        "outcome: {:.1}s, VmHWM {:?} KiB",
        started.elapsed().as_secs_f64(),
        PeakRss::read_kib()
    );
    println!("memory stats: {:?}", session.memory_stats());
    drop(report);
    drop(session);
    println!("after drop: VmHWM {:?} KiB", PeakRss::read_kib());
}
