//! Experiment driver: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p bench --release --bin experiments -- all
//! cargo run -p bench --release --bin experiments -- fig6 --scale small
//! cargo run -p bench --release --bin experiments -- table6 --scale full --out results
//! cargo run -p bench --release --bin experiments -- ladder --max-rows 100000
//! ```

use bench::{Experiment, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <fig6|fig7|fig8|...|fig15|table5|table6|smoke|ladder|all> \
         [--scale tiny|small|full] [--out DIR] [--max-rows N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut experiments: Option<Vec<Experiment>> = None;
    let mut scale = Scale::Small;
    let mut out_dir = PathBuf::from("results");
    let mut max_rows: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Some(parsed) = Scale::parse(value) else {
                    eprintln!("unknown scale {value:?}");
                    return usage();
                };
                scale = parsed;
                i += 2;
            }
            "--out" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                out_dir = PathBuf::from(value);
                i += 2;
            }
            "--max-rows" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Ok(parsed) = value.parse::<usize>() else {
                    eprintln!("invalid --max-rows {value:?}");
                    return usage();
                };
                max_rows = Some(parsed);
                i += 2;
            }
            other => {
                let Some(parsed) = Experiment::parse(other) else {
                    eprintln!("unknown experiment {other:?}");
                    return usage();
                };
                experiments = Some(parsed);
                i += 1;
            }
        }
    }

    let Some(experiments) = experiments else {
        return usage();
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output directory {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    for experiment in experiments {
        println!(
            "### running {} (scale {:?}) ###\n",
            experiment.name(),
            scale
        );
        let started = std::time::Instant::now();
        let files = experiment.run_with(scale, max_rows);
        for (name, contents) in files {
            let path = out_dir.join(name);
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
        println!(
            "\n### {} finished in {:.1}s ###\n",
            experiment.name(),
            started.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
