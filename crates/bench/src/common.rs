//! Shared plumbing for the experiment harness: dataset scales, workload
//! builders, and result-table formatting.

use datagen::{CarGenerator, HaiGenerator, TpchGenerator};
use dataset::{csv, DirtyDataset};
use mlnclean::Report;
use rules::RuleSet;

/// Number of worker threads the rayon pool uses (recorded in every
/// `BENCH_*.json` so perf points are comparable across machines).
pub fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

/// Compare two cleaning reports at the byte level: the repaired and
/// deduplicated CSVs plus the full AGP/RSC/FSCR provenance.  This is the
/// cross-engine equivalence check of the smoke and ladder experiments.
pub fn reports_identical(a: &Report, b: &Report) -> bool {
    csv::to_csv(&a.repaired) == csv::to_csv(&b.repaired)
        && csv::to_csv(a.deduplicated()) == csv::to_csv(b.deduplicated())
        && a.agp == b.agp
        && a.rsc == b.rsc
        && a.fscr == b.fscr
}

/// Peak-RSS meter backed by Linux's `/proc/self/status` (`VmHWM`, the
/// resident-set high-water mark) with an explicit capability probe so the
/// artifacts stay honest on platforms without procfs.
///
/// Writing `"5"` to `/proc/self/clear_refs` resets the high-water mark to
/// the *current* RSS, which lets the ladder attribute a per-engine peak to
/// each engine run instead of one monotone process-wide number.  Where the
/// reset is unavailable the readings are still recorded, flagged
/// `resettable: false` (they then measure the process-wide peak so far).
#[derive(Debug, Clone, Copy)]
pub struct PeakRss {
    /// `VmHWM` is readable at all.
    pub supported: bool,
    /// The high-water mark can be reset between engine runs.
    pub resettable: bool,
}

impl PeakRss {
    /// Probe what the platform supports.
    pub fn probe() -> Self {
        let supported = Self::read_kib().is_some();
        let resettable = supported && std::fs::write("/proc/self/clear_refs", "5").is_ok();
        PeakRss {
            supported,
            resettable,
        }
    }

    /// Reset the high-water mark to the current RSS (no-op when the platform
    /// cannot).
    pub fn reset(&self) {
        if self.resettable {
            let _ = std::fs::write("/proc/self/clear_refs", "5");
        }
    }

    /// Read the peak RSS in KiB, or `None` off-Linux.
    pub fn read_kib() -> Option<u64> {
        Self::status_kib("VmHWM:")
    }

    /// Read the *current* RSS in KiB, or `None` off-Linux.  Right after
    /// [`reset`](Self::reset) this equals the high-water mark, which makes
    /// it the floor to subtract when attributing peak growth to one run
    /// (allocators retain freed memory, so the floor is not zero even when
    /// everything from earlier runs has been dropped).
    pub fn current_kib() -> Option<u64> {
        Self::status_kib("VmRSS:")
    }

    fn status_kib(key: &str) -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with(key))?;
        line.split_whitespace().nth(1)?.parse().ok()
    }
}

/// How large the synthetic datasets are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred rows — used by unit/integration smoke tests.
    Tiny,
    /// A few thousand rows — the default for `cargo run -p bench`.
    Small,
    /// Tens of thousands of rows — closer to the paper's sizes; slower.
    Full,
}

impl Scale {
    /// Parse from the command line.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    fn hai_rows(&self) -> usize {
        match self {
            Scale::Tiny => 400,
            Scale::Small => 2_500,
            Scale::Full => 20_000,
        }
    }

    fn car_rows(&self) -> usize {
        match self {
            Scale::Tiny => 600,
            Scale::Small => 2_500,
            Scale::Full => 15_000,
        }
    }

    fn tpch_rows(&self) -> usize {
        match self {
            Scale::Tiny => 500,
            Scale::Small => 4_000,
            Scale::Full => 40_000,
        }
    }
}

/// The two evaluation datasets of the single-node experiments plus the
/// TPC-H-style dataset of the distributed experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Dense hospital-measures data (paper's HAI).
    Hai,
    /// Sparse used-vehicle data (paper's CAR).
    Car,
    /// Wide customer × line-item join (paper's TPC-H).
    Tpch,
}

impl Workload {
    /// Name used in table headers and CSV files.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Hai => "HAI",
            Workload::Car => "CAR",
            Workload::Tpch => "TPC-H",
        }
    }

    /// The AGP threshold τ used for this workload in the comparison
    /// experiments (the per-dataset optimum, analogous to the paper's τ=10
    /// for HAI and τ=1 for CAR; the synthetic stand-ins have smaller groups,
    /// so their optima are smaller too).
    pub fn default_tau(&self) -> usize {
        match self {
            Workload::Hai => 2,
            Workload::Car => 1,
            Workload::Tpch => 2,
        }
    }

    /// The MLNClean configuration used for this workload in the comparison
    /// experiments: the per-dataset optimal τ plus the AGP merge guard,
    /// which the synthetic data needs because (unlike the paper's real
    /// datasets) it has legitimately rare reason-part values at these scales.
    pub fn clean_config(&self) -> mlnclean::CleanConfig {
        mlnclean::CleanConfig::default()
            .with_tau(self.default_tau())
            .with_agp_distance_guard(0.15)
    }

    /// The rule set of Table 4 for this workload.
    pub fn rules(&self) -> RuleSet {
        match self {
            Workload::Hai => HaiGenerator::rules(),
            Workload::Car => CarGenerator::rules(),
            Workload::Tpch => TpchGenerator::rules(),
        }
    }

    /// Generate a dirty dataset at the given error rate / replacement ratio.
    pub fn dirty(
        &self,
        scale: Scale,
        error_rate: f64,
        replacement_ratio: f64,
        seed: u64,
    ) -> DirtyDataset {
        match self {
            Workload::Hai => HaiGenerator::default().with_rows(scale.hai_rows()).dirty(
                error_rate,
                replacement_ratio,
                seed,
            ),
            Workload::Car => CarGenerator::default().with_rows(scale.car_rows()).dirty(
                error_rate,
                replacement_ratio,
                seed,
            ),
            Workload::Tpch => TpchGenerator::default().with_rows(scale.tpch_rows()).dirty(
                error_rate,
                replacement_ratio,
                seed,
            ),
        }
    }
}

/// A simple fixed-width text table that is also serializable to CSV.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Start a table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        ResultTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Render as an aligned text table (what the `experiments` binary prints).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// Format a float with three decimals (the precision the paper reports).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in milliseconds.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = ResultTable::new("demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("333"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "a,bb");
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn workloads_have_valid_rules() {
        for w in [Workload::Hai, Workload::Car, Workload::Tpch] {
            let dirty = w.dirty(Scale::Tiny, 0.05, 0.5, 1);
            assert!(w.rules().is_valid_for(dirty.dirty.schema()), "{}", w.name());
            assert!(dirty.error_count() > 0);
        }
    }

    #[test]
    fn peak_rss_meter_is_consistent_with_its_probe() {
        let meter = PeakRss::probe();
        // On Linux both capabilities hold and a reading exists; elsewhere the
        // probe must say so instead of fabricating numbers.
        if meter.supported {
            let kib = PeakRss::read_kib().expect("supported meter reads");
            assert!(kib > 0);
            meter.reset();
            assert!(PeakRss::read_kib().is_some());
        } else {
            assert!(!meter.resettable);
            assert!(PeakRss::read_kib().is_none());
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.hai_rows() < Scale::Small.hai_rows());
        assert!(Scale::Small.hai_rows() < Scale::Full.hai_rows());
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("x"), None);
    }
}
