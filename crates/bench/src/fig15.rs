//! Figure 15: the distributed MLNClean version — F1 and runtime as the error
//! percentage grows, on the (larger) HAI and TPC-H workloads with a fixed
//! worker count.

use crate::common::{fmt3, fmt_ms, ResultTable, Scale, Workload};
use dataset::RepairEvaluation;
use distributed::DistributedMlnClean;

/// Worker count used for the error-percentage sweep.
pub const WORKERS: usize = 4;

/// One measured point of the distributed sweep.
#[derive(Debug, Clone)]
pub struct DistributedPoint {
    /// Dataset name.
    pub workload: &'static str,
    /// Injected error rate.
    pub error_rate: f64,
    /// F1 of the distributed run.
    pub f1: f64,
    /// Total wall-clock runtime.
    pub runtime: std::time::Duration,
}

/// Run the distributed cleaner at one error rate.
pub fn measure_at(
    workload: Workload,
    scale: Scale,
    error_rate: f64,
    seed: u64,
) -> DistributedPoint {
    let dirty = workload.dirty(scale, error_rate, 0.5, seed);
    let rules = workload.rules();
    let cleaner = DistributedMlnClean::new(WORKERS, workload.clean_config());
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");
    let f1 = RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1();
    DistributedPoint {
        workload: workload.name(),
        error_rate,
        f1,
        runtime: outcome.timings.total(),
    }
}

/// Run Figure 15 for HAI and TPC-H.
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for workload in [Workload::Hai, Workload::Tpch] {
        let mut table = ResultTable::new(
            &format!(
                "Figure 15 ({}) — distributed MLNClean ({} workers) vs error percentage",
                workload.name(),
                WORKERS
            ),
            &["error%", "F1", "runtime_ms"],
        );
        for (i, &rate) in crate::fig6::ERROR_RATES.iter().enumerate() {
            let p = measure_at(workload, scale, rate, 600 + i as u64);
            table.push_row(vec![
                format!("{:.0}%", rate * 100.0),
                fmt3(p.f1),
                fmt_ms(p.runtime),
            ]);
        }
        println!("{}", table.to_text());
        files.push((
            format!(
                "fig15_{}.csv",
                workload.name().to_lowercase().replace('-', "")
            ),
            table.to_csv(),
        ));
    }
    files
}
