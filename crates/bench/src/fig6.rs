//! Figure 6: effect of the error percentage on MLNClean vs. HoloClean —
//! F1-score (a, b) and runtime (c, d) on CAR and HAI.

use crate::common::{fmt3, fmt_ms, ResultTable, Scale, Workload};
use dataset::RepairEvaluation;
use holoclean::{HoloClean, HoloCleanConfig};
use mlnclean::MlnClean;

/// Error percentages swept in the paper.
pub const ERROR_RATES: [f64; 6] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

/// One measured point of the comparison.
#[derive(Debug, Clone)]
pub struct ComparisonPoint {
    /// Dataset name.
    pub workload: &'static str,
    /// Injected error rate.
    pub error_rate: f64,
    /// MLNClean F1 (detection + repair, no oracle).
    pub mlnclean_f1: f64,
    /// HoloClean F1 (oracle detection, repair only — the paper's protocol).
    pub holoclean_f1: f64,
    /// MLNClean total runtime (detection + repair).
    pub mlnclean_time: std::time::Duration,
    /// HoloClean runtime (repair only).
    pub holoclean_time: std::time::Duration,
}

/// Run the comparison for one workload at one error rate.
pub fn compare_at(workload: Workload, scale: Scale, error_rate: f64, seed: u64) -> ComparisonPoint {
    let dirty = workload.dirty(scale, error_rate, 0.5, seed);
    let rules = workload.rules();

    // MLNClean: full pipeline, no oracle.
    let cleaner = MlnClean::new(workload.clean_config());
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");
    let mlnclean_f1 = RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1();
    let mlnclean_time = outcome.timings.total();

    // HoloClean: oracle detection (100% accuracy), repair only.
    let baseline = HoloClean::new(HoloCleanConfig::default());
    let noisy = dirty.erroneous_cells();
    let repair = baseline.repair(&dirty.dirty, &rules, &noisy);
    let holoclean_f1 = RepairEvaluation::evaluate(&dirty, &repair.repaired).f1();
    let holoclean_time = repair.total_time();

    ComparisonPoint {
        workload: workload.name(),
        error_rate,
        mlnclean_f1,
        holoclean_f1,
        mlnclean_time,
        holoclean_time,
    }
}

/// Run Figure 6 (both datasets, full error-rate sweep); returns the CSV files.
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for workload in [Workload::Car, Workload::Hai] {
        let mut accuracy = ResultTable::new(
            &format!(
                "Figure 6 ({}) — F1-score vs error percentage",
                workload.name()
            ),
            &["error%", "MLNClean F1", "HoloClean F1"],
        );
        let mut runtime = ResultTable::new(
            &format!(
                "Figure 6 ({}) — runtime vs error percentage (ms)",
                workload.name()
            ),
            &["error%", "MLNClean ms", "HoloClean ms"],
        );
        for (i, &rate) in ERROR_RATES.iter().enumerate() {
            let point = compare_at(workload, scale, rate, 100 + i as u64);
            accuracy.push_row(vec![
                format!("{:.0}%", rate * 100.0),
                fmt3(point.mlnclean_f1),
                fmt3(point.holoclean_f1),
            ]);
            runtime.push_row(vec![
                format!("{:.0}%", rate * 100.0),
                fmt_ms(point.mlnclean_time),
                fmt_ms(point.holoclean_time),
            ]);
        }
        println!("{}", accuracy.to_text());
        println!("{}", runtime.to_text());
        files.push((
            format!("fig6_accuracy_{}.csv", workload.name().to_lowercase()),
            accuracy.to_csv(),
        ));
        files.push((
            format!("fig6_runtime_{}.csv", workload.name().to_lowercase()),
            runtime.to_csv(),
        ));
    }
    files
}
