//! Figure 7: effect of the error-type ratio (Rret, the share of replacement
//! errors among a fixed 5% total error rate) on MLNClean vs. HoloClean.

use crate::common::{fmt3, ResultTable, Scale, Workload};
use dataset::RepairEvaluation;
use holoclean::{HoloClean, HoloCleanConfig};
use mlnclean::MlnClean;

/// Replacement-error ratios swept in the paper (0 = all typos, 1 = all
/// replacement errors).
pub const RRET_VALUES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// F1 of both systems at one Rret value.
#[derive(Debug, Clone)]
pub struct RretPoint {
    /// Dataset name.
    pub workload: &'static str,
    /// Share of replacement errors.
    pub rret: f64,
    /// MLNClean F1.
    pub mlnclean_f1: f64,
    /// HoloClean F1.
    pub holoclean_f1: f64,
}

/// Measure one point of Figure 7.
pub fn compare_at(workload: Workload, scale: Scale, rret: f64, seed: u64) -> RretPoint {
    let dirty = workload.dirty(scale, 0.05, rret, seed);
    let rules = workload.rules();

    let cleaner = MlnClean::new(workload.clean_config());
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");
    let mlnclean_f1 = RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1();

    let baseline = HoloClean::new(HoloCleanConfig::default());
    let repair = baseline.repair(&dirty.dirty, &rules, &dirty.erroneous_cells());
    let holoclean_f1 = RepairEvaluation::evaluate(&dirty, &repair.repaired).f1();

    RretPoint {
        workload: workload.name(),
        rret,
        mlnclean_f1,
        holoclean_f1,
    }
}

/// Run Figure 7 for both datasets.
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for workload in [Workload::Car, Workload::Hai] {
        let mut table = ResultTable::new(
            &format!(
                "Figure 7 ({}) — F1-score vs replacement-error ratio Rret",
                workload.name()
            ),
            &["Rret", "MLNClean F1", "HoloClean F1"],
        );
        for (i, &rret) in RRET_VALUES.iter().enumerate() {
            let point = compare_at(workload, scale, rret, 200 + i as u64);
            table.push_row(vec![
                format!("{:.0}%", rret * 100.0),
                fmt3(point.mlnclean_f1),
                fmt3(point.holoclean_f1),
            ]);
        }
        println!("{}", table.to_text());
        files.push((
            format!("fig7_{}.csv", workload.name().to_lowercase()),
            table.to_csv(),
        ));
    }
    files
}
