//! Paper-scale benchmark ladder: the same cleaning workload at
//! 10⁴ → 10⁵ → 10⁶ (→ 10⁷, opt-in) rows, across all three engines.
//!
//! The paper's evaluation runs to 6 M tuples; the per-figure experiments in
//! this crate stop around 10⁴ rows so they stay interactive.  The ladder is
//! the bridge: every rung streams a seeded dirty workload (see
//! [`datagen::DirtyRowStream`] — rows are produced batch-by-batch and never
//! all resident) through
//!
//! * the **batch** engine ([`MlnClean`], materialise then clean),
//! * the **incremental** engine ([`CleaningSession`], micro-batch ingest
//!   then one `outcome()`), and
//! * the **distributed-streaming** engine
//!   ([`DistributedStreamingSession`], 2 partitions, periodic weight merge),
//!
//! recording per engine: ingest throughput (rows/s), outcome latency, the
//! per-stage breakdown, and the peak RSS attributable to the run (via
//! [`PeakRss`]).  At rungs small enough for it to be cheap the three
//! engines' reports are compared byte-for-byte (repaired CSV + full
//! provenance), extending the smoke test's equivalence guarantee to
//! paper-scale inputs.  On the largest rung the incremental session is kept
//! alive and probed with a sustained stream of single-cell mutations,
//! reporting p50/p99/max `apply` + `outcome` latency plus the group-scoped
//! re-clean counters: how many MLN groups the most expensive mutation
//! re-cleaned versus how many groups the index holds in total (the CI
//! evidence that a pure-FD mutation stream no longer re-cleans every group).
//!
//! Every rung also carries a **budgeted re-run** of the incremental engine:
//! the same stream cleaned under [`LadderConfig::memory_budget`] (2 GiB by
//! default), asserted byte-identical to the unbudgeted report at every rung
//! the ladder executes — including the 10⁶ nightly rung, which is the CI
//! teeth behind the out-of-core session.  At rungs up to
//! [`LadderConfig::rss_assert_limit`] (with a resettable meter) the probe
//! additionally claims (`"rss_asserted": true`) that the run's RSS *growth*
//! — peak minus the post-reset floor, so allocator retention from earlier
//! rungs cannot fail it — stays within the budget, which
//! `scripts/assert_bench.py` enforces with a tolerance.
//!
//! [`run`] ladders all three of the paper's workloads: TPC-H (the original
//! ladder, rungs up to 10⁷) plus HAI and CAR at 10⁴/10⁵.  The artifacts are
//! `BENCH_ladder.json`, `BENCH_ladder_hai.json` and `BENCH_ladder_car.json`;
//! `scripts/assert_bench.py ladder` checks each one's invariants and gates
//! CI against the committed baselines.

use crate::common::{rayon_threads, reports_identical, PeakRss, Scale, Workload};
use datagen::{
    batched, CarGenerator, CarRows, DirtyRowStream, HaiGenerator, HaiRows, TpchGenerator, TpchRows,
};
use dataset::{Dataset, Schema, TupleId};
use distributed::DistributedStreamingSession;
use mlnclean::{ChangeSet, CleaningSession, MlnClean, Report};
use std::time::{Duration, Instant};

/// Tunables of the ladder run.  [`run`] derives the row cap from the scale
/// or an explicit `--max-rows`; tests shrink everything.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Which of the paper's workloads this ladder runs.
    pub workload: Workload,
    /// Candidate rung sizes, ascending; rungs above `max_rows` are skipped.
    pub rungs: Vec<usize>,
    /// Largest rung to run.
    pub max_rows: usize,
    /// Micro-batch size for the streaming engines.
    pub batch_rows: usize,
    /// Error rate over the rule-related cells.
    pub error_rate: f64,
    /// Typo/replacement split (the paper's Rret).
    pub replacement_ratio: f64,
    /// Seed of both the row stream and the error stream.
    pub seed: u64,
    /// Partition count of the distributed engine.
    pub partitions: usize,
    /// Merge cadence (in batches) of the distributed engine.
    pub merge_every: usize,
    /// Byte-identity across engines is asserted at rungs up to this size
    /// (the comparison costs a CSV render of every report).
    pub identity_limit: usize,
    /// Mutation-latency samples taken on the largest executed rung (scaled
    /// down on big rungs, where TPC-H's single rule makes every mutation
    /// re-clean the one FD block).
    pub mutation_samples: usize,
    /// Budget, in bytes, of the budgeted re-run of the incremental engine
    /// ([`mlnclean::CleanConfig::memory_budget`]): every rung re-cleans the
    /// same stream under this bound on the session's evictable state and
    /// asserts the report stays byte-identical to the unbudgeted run.
    /// `None` skips the probe (`"budgeted": null` in the artifact).
    pub memory_budget: Option<usize>,
    /// Largest rung at which the budgeted probe also *asserts* its RSS
    /// growth (peak − post-reset floor) against the budget
    /// (`"rss_asserted": true` in the artifact, enforced by
    /// `scripts/assert_bench.py`).  Above this, outcome-time transients
    /// that no budget governs (resolved FSCR strings, the report itself,
    /// pool clones) dominate RSS, so only byte-identity is claimed.
    pub rss_assert_limit: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            workload: Workload::Tpch,
            rungs: vec![10_000, 100_000, 1_000_000, 10_000_000],
            max_rows: 100_000,
            batch_rows: 4_096,
            error_rate: 0.02,
            replacement_ratio: 0.5,
            seed: 1,
            partitions: 2,
            merge_every: 8,
            identity_limit: 100_000,
            mutation_samples: 40,
            memory_budget: Some(2 * 1024 * 1024 * 1024),
            rss_assert_limit: 100_000,
        }
    }
}

impl LadderConfig {
    /// The rungs that will actually run under the current cap.
    fn active_rungs(&self) -> Vec<usize> {
        self.rungs
            .iter()
            .copied()
            .filter(|&r| r <= self.max_rows)
            .collect()
    }

    /// Mutation samples for a rung of `rows` rows.  Even group-scoped,
    /// every sampled mutation pays a full `outcome()` assembly, so scale
    /// the sample count down with the rung to keep the probe a bounded
    /// share of the run; the floor keeps the percentile ranks meaningful.
    fn samples_for(&self, rows: usize) -> usize {
        self.mutation_samples.min((800_000 / rows.max(1)).max(8))
    }

    /// The artifact this ladder writes.
    fn artifact_name(&self) -> &'static str {
        match self.workload {
            Workload::Tpch => "BENCH_ladder.json",
            Workload::Hai => "BENCH_ladder_hai.json",
            Workload::Car => "BENCH_ladder_car.json",
        }
    }

    /// The workload's schema.
    fn schema(&self) -> Schema {
        match self.workload {
            Workload::Tpch => TpchGenerator::schema(),
            Workload::Hai => HaiGenerator::schema(),
            Workload::Car => CarGenerator::schema(),
        }
    }

    /// Entity count scaling the group structure of one rung (recorded as
    /// `"entities"` in the artifact): customers for TPC-H (1 per 25 line
    /// items), providers for HAI (1 per 40 measures), models-per-make for
    /// CAR (1 per 2 000 listings) — all grow with the rung so block/group
    /// counts grow with the data, like the probe workloads elsewhere in
    /// this crate.
    fn entities(&self, rows: usize) -> usize {
        match self.workload {
            Workload::Tpch => (rows / 25).max(1),
            Workload::Hai => (rows / 40).max(1),
            Workload::Car => (rows / 2_000).max(3),
        }
    }

    /// The seeded dirty row stream of one rung.
    fn stream(&self, rows: usize) -> LadderStream {
        let (e, r, s) = (self.error_rate, self.replacement_ratio, self.seed);
        match self.workload {
            Workload::Tpch => LadderStream::Tpch(
                TpchGenerator::default()
                    .with_rows(rows)
                    .with_customers(self.entities(rows))
                    .with_seed(self.seed)
                    .dirty_row_stream(e, r, s),
            ),
            Workload::Hai => LadderStream::Hai(
                HaiGenerator::default()
                    .with_rows(rows)
                    .with_providers(self.entities(rows))
                    .with_seed(self.seed)
                    .dirty_row_stream(e, r, s),
            ),
            Workload::Car => LadderStream::Car(
                CarGenerator {
                    models_per_make: self.entities(rows),
                    rows,
                    seed: self.seed,
                }
                .dirty_row_stream(e, r, s),
            ),
        }
    }

    /// The attribute the mutation probe overwrites: the consequent of one of
    /// the workload's FDs, so every sampled mutation dirties the groups that
    /// cover the tuple — and only those.
    fn mutation_attr(&self) -> &'static str {
        match self.workload {
            Workload::Tpch => "Address",
            Workload::Hai => "City",
            Workload::Car => "Make",
        }
    }

    /// The `i`-th mutation value: fresh per sample, so the update is a real
    /// overwrite, never a skipped no-op.
    fn mutation_value(&self, i: usize) -> String {
        match self.workload {
            Workload::Tpch => {
                format!("{} REWRITE BLVD SUITE {}", 100 + (i * 53) % 900, i + 1)
            }
            Workload::Hai => format!("REWRITEVILLE{}", i + 1),
            Workload::Car => format!("rewrite-make-{}", i + 1),
        }
    }
}

/// One rung's dirty row stream, whatever the workload (the three generators
/// stream through differently typed [`DirtyRowStream`]s).
enum LadderStream {
    Tpch(DirtyRowStream<TpchRows>),
    Hai(DirtyRowStream<HaiRows>),
    Car(DirtyRowStream<CarRows>),
}

impl LadderStream {
    fn injected_errors(&self) -> u64 {
        match self {
            LadderStream::Tpch(s) => s.injected_errors(),
            LadderStream::Hai(s) => s.injected_errors(),
            LadderStream::Car(s) => s.injected_errors(),
        }
    }
}

impl Iterator for LadderStream {
    type Item = Vec<String>;

    fn next(&mut self) -> Option<Vec<String>> {
        match self {
            LadderStream::Tpch(s) => s.next(),
            LadderStream::Hai(s) => s.next(),
            LadderStream::Car(s) => s.next(),
        }
    }
}

/// Run the ladders of all three workloads at the default rungs for `scale`
/// (overridden by `--max-rows` on the command line, threaded through as
/// `max_rows`): TPC-H at the full rung set, HAI and CAR at 10⁴/10⁵ (the
/// paper's single-node datasets stop around those sizes).
pub fn run(scale: Scale, max_rows: Option<usize>) -> Vec<(String, String)> {
    let max_rows = max_rows.unwrap_or(match scale {
        Scale::Tiny => 10_000,
        Scale::Small => 100_000,
        Scale::Full => 1_000_000,
    });
    let mut files = Vec::new();
    for workload in [Workload::Tpch, Workload::Hai, Workload::Car] {
        let config = LadderConfig {
            workload,
            rungs: match workload {
                Workload::Tpch => LadderConfig::default().rungs,
                Workload::Hai | Workload::Car => vec![10_000, 100_000],
            },
            max_rows,
            ..LadderConfig::default()
        };
        files.extend(run_config(&config));
    }
    files
}

/// Run the ladder with explicit tunables and return the JSON artifact.
pub fn run_config(config: &LadderConfig) -> Vec<(String, String)> {
    let meter = PeakRss::probe();
    let rungs = config.active_rungs();
    let largest = rungs.last().copied();

    let mut rung_jsons = Vec::with_capacity(rungs.len());
    for rows in rungs {
        let point = run_rung(config, rows, &meter, Some(rows) == largest);
        println!(
            "ladder [{workload}] rung {rows}: batch {:.3}s, incremental {:.3}s, distributed {:.3}s{}",
            point.batch.total().as_secs_f64(),
            point.incremental.total().as_secs_f64(),
            point.distributed.total().as_secs_f64(),
            if point.identity_checked {
                " (byte-identity checked)"
            } else {
                ""
            },
            workload = config.workload.name(),
        );
        rung_jsons.push(render_rung(&point));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"ladder\",\n",
            "  \"codec_version\": {codec_version},\n",
            "  \"workload\": \"{workload}\",\n",
            "  \"max_rows\": {max_rows},\n",
            "  \"batch_rows\": {batch_rows},\n",
            "  \"error_rate\": {error_rate},\n",
            "  \"replacement_ratio\": {replacement_ratio},\n",
            "  \"seed\": {seed},\n",
            "  \"partitions\": {partitions},\n",
            "  \"merge_every\": {merge_every},\n",
            "  \"identity_limit\": {identity_limit},\n",
            "  \"threads\": {threads},\n",
            "  \"rss_meter\": {{ \"supported\": {rss_supported}, ",
            "\"resettable\": {rss_resettable} }},\n",
            "  \"rungs\": [\n",
            "{rungs}\n",
            "  ]\n",
            "}}\n",
        ),
        codec_version = transport::CODEC_VERSION,
        workload = config.workload.name(),
        max_rows = config.max_rows,
        batch_rows = config.batch_rows,
        error_rate = config.error_rate,
        replacement_ratio = config.replacement_ratio,
        seed = config.seed,
        partitions = config.partitions,
        merge_every = config.merge_every,
        identity_limit = config.identity_limit,
        threads = rayon_threads(),
        rss_supported = meter.supported,
        rss_resettable = meter.resettable,
        rungs = rung_jsons.join(",\n"),
    );

    vec![(config.artifact_name().to_string(), json)]
}

/// One engine's measurements on one rung.
struct EngineRun {
    report: Report,
    ingest: Duration,
    outcome: Duration,
    peak_rss_kib: Option<u64>,
}

impl EngineRun {
    fn total(&self) -> Duration {
        self.ingest + self.outcome
    }
}

/// One rung's measurements across the three engines.
struct RungPoint {
    rows: usize,
    entities: usize,
    batches: usize,
    injected_errors: u64,
    batch: EngineRun,
    incremental: EngineRun,
    distributed: EngineRun,
    identity_checked: bool,
    incremental_matches_batch: Option<bool>,
    distributed_matches_batch: Option<bool>,
    mutation: Option<MutationLatency>,
    budgeted: Option<BudgetedRun>,
}

/// The budgeted re-run of the incremental engine on one rung: the same
/// stream cleaned under [`LadderConfig::memory_budget`], compared
/// byte-for-byte against the unbudgeted incremental report (at *every*
/// rung the probe runs, including rungs above `identity_limit` — this is
/// the CI evidence that spilling/eviction never changes output).
struct BudgetedRun {
    budget_kib: u64,
    matches_unbudgeted: bool,
    /// Whole-process peak RSS over the budgeted run (reset → ingest →
    /// outcome), read before the identity comparison renders any CSV.
    peak_rss_kib: Option<u64>,
    /// Current RSS right after the meter reset, i.e. the high-water mark's
    /// starting floor.  Allocators retain freed memory from earlier rungs,
    /// so the honest budget claim is about *growth*: peak − floor.
    rss_floor_kib: Option<u64>,
    /// Whether `peak ≤ floor + (1 + tolerance) × budget` is a claim this
    /// rung makes (and `scripts/assert_bench.py` enforces).  Requires a
    /// resettable meter — a monotone process-wide high-water mark cannot
    /// attribute a peak to this probe.
    rss_asserted: bool,
    spilled_blocks: u64,
    faulted_blocks: u64,
    evicted_fusions: u64,
    spilled_bytes: u64,
}

/// Tail latency of `apply` + `outcome` under a sustained mutation stream,
/// plus the group-scoped re-clean counters backing the CI probe that a
/// pure-FD mutation stream no longer re-cleans every group.
struct MutationLatency {
    samples: usize,
    p50: Duration,
    p99: Duration,
    max: Duration,
    /// Most output groups any single sampled mutation re-cleaned.
    recleaned_groups: u64,
    /// Groups the session's index held when the probe finished.
    total_groups: usize,
}

fn run_rung(config: &LadderConfig, rows: usize, meter: &PeakRss, is_largest: bool) -> RungPoint {
    let schema = config.schema();
    let rules = config.workload.rules();
    let clean_config = config.workload.clean_config();
    let batches = rows.div_ceil(config.batch_rows);

    // Batch engine: materialise the dirty stream, then one-shot clean.
    // Generation is part of every engine's ingest time, so the three
    // ingest/throughput numbers are comparable.
    meter.reset();
    let mut stream = config.stream(rows);
    let started = Instant::now();
    let mut ds = Dataset::with_capacity(schema.clone(), rows);
    for row in &mut stream {
        ds.push_row(row).expect("row matches the workload schema");
    }
    let ingest = started.elapsed();
    let injected_errors = stream.injected_errors();
    let started = Instant::now();
    let report = MlnClean::new(clean_config.clone())
        .clean(&ds, &rules)
        .expect("the ladder workload cleans");
    let batch = EngineRun {
        report,
        ingest,
        outcome: started.elapsed(),
        peak_rss_kib: PeakRss::read_kib(),
    };
    drop(ds);

    // Incremental engine: micro-batch ingest, then one outcome.  The session
    // stays alive for the mutation probe on the largest rung.
    meter.reset();
    let mut session = CleaningSession::new(clean_config.clone(), schema.clone(), rules.clone())
        .expect("the workload's rules match its schema");
    let mut stream = config.stream(rows);
    let started = Instant::now();
    for batch in batched(&mut stream, config.batch_rows) {
        session.ingest_batch(batch).expect("rows match the schema");
    }
    let ingest = started.elapsed();
    let started = Instant::now();
    let report = session.outcome();
    let incremental = EngineRun {
        report,
        ingest,
        outcome: started.elapsed(),
        peak_rss_kib: PeakRss::read_kib(),
    };

    // Mutation probe before the distributed run so the probe's re-cleans do
    // not sit inside the distributed engine's RSS window, then drop the
    // session (its rows now differ from the shared stream).
    let mutation =
        is_largest.then(|| mutation_probe(&mut session, config, rows, config.samples_for(rows)));
    drop(session);

    // Distributed-streaming engine: the same batches fanned out over
    // `partitions` per-partition sessions with periodic weight merge.
    meter.reset();
    let mut session = DistributedStreamingSession::new(
        clean_config.clone(),
        schema.clone(),
        rules.clone(),
        config.partitions,
        config.merge_every,
    )
    .expect("the workload's rules match its schema");
    let mut stream = config.stream(rows);
    let started = Instant::now();
    for batch in batched(&mut stream, config.batch_rows) {
        session
            .apply(ChangeSet::inserting(batch))
            .expect("rows match the schema");
    }
    let ingest = started.elapsed();
    let started = Instant::now();
    let report = session.finish();
    let distributed = EngineRun {
        report,
        ingest,
        outcome: started.elapsed(),
        peak_rss_kib: PeakRss::read_kib(),
    };

    // Budgeted re-run of the incremental engine: the same stream under the
    // configured memory budget must produce a byte-identical report.  RSS is
    // read right after the outcome, *before* the identity comparison renders
    // CSVs, so the comparison's allocations never inflate the measurement.
    let budgeted = config.memory_budget.map(|budget| {
        meter.reset();
        let rss_floor_kib = PeakRss::current_kib();
        let budgeted_config = clean_config.clone().with_memory_budget(budget);
        let mut session = CleaningSession::new(budgeted_config, schema, rules)
            .expect("the workload's rules match its schema");
        let mut stream = config.stream(rows);
        for batch in batched(&mut stream, config.batch_rows) {
            session.ingest_batch(batch).expect("rows match the schema");
        }
        let report = session.outcome();
        let peak_rss_kib = PeakRss::read_kib();
        let stats = session.memory_stats();
        BudgetedRun {
            budget_kib: (budget / 1024) as u64,
            matches_unbudgeted: reports_identical(&report, &incremental.report),
            peak_rss_kib,
            rss_floor_kib,
            rss_asserted: meter.resettable && rows <= config.rss_assert_limit,
            spilled_blocks: stats.spilled_blocks,
            faulted_blocks: stats.faulted_blocks,
            evicted_fusions: stats.evicted_fusions,
            spilled_bytes: stats.spilled_bytes,
        }
    });

    // Cross-engine byte-identity, where the CSV render is affordable.
    let identity_checked = rows <= config.identity_limit;
    let (incremental_matches_batch, distributed_matches_batch) = if identity_checked {
        (
            Some(reports_identical(&incremental.report, &batch.report)),
            Some(reports_identical(&distributed.report, &batch.report)),
        )
    } else {
        (None, None)
    };

    RungPoint {
        rows,
        entities: config.entities(rows),
        batches,
        injected_errors,
        batch,
        incremental,
        distributed,
        identity_checked,
        incremental_matches_batch,
        distributed_matches_batch,
        mutation,
        budgeted,
    }
}

/// Keep mutating one cell at a time and re-asking for the outcome, recording
/// the latency distribution the incremental engine sustains at this rung and
/// the worst-case group-scoped re-clean cost of a single mutation.
fn mutation_probe(
    session: &mut CleaningSession,
    config: &LadderConfig,
    rows: usize,
    samples: usize,
) -> MutationLatency {
    let schema = config.schema();
    let attr = schema
        .attr_id(config.mutation_attr())
        .expect("the workload schema has the mutated attribute");
    let samples = samples.max(1);

    let mut latencies = Vec::with_capacity(samples);
    let mut recleaned_groups = 0u64;
    for i in 0..samples {
        // Spread the touched rows across the dataset; a fresh value
        // guarantees the update is a real overwrite, never a skipped no-op.
        let tuple = TupleId((i.wrapping_mul(9973) + 17) % rows.max(1));
        let value = config.mutation_value(i);
        let recleaned_before = session.recleaned_groups();
        let started = Instant::now();
        session
            .apply(ChangeSet::new().update(tuple, attr, value))
            .expect("the mutation addresses a live row");
        let _ = session.outcome();
        latencies.push(started.elapsed());
        recleaned_groups = recleaned_groups.max(session.recleaned_groups() - recleaned_before);
    }
    latencies.sort();

    // Nearest-rank percentiles.
    let rank = |q: f64| {
        let n = latencies.len();
        latencies[(((n as f64 * q).ceil() as usize).max(1) - 1).min(n - 1)]
    };
    MutationLatency {
        samples,
        p50: rank(0.50),
        p99: rank(0.99),
        max: *latencies.last().expect("at least one sample"),
        recleaned_groups,
        total_groups: session.total_groups(),
    }
}

/// Render one engine's JSON object (the value of `"batch"` etc.).
fn render_engine(rows: usize, run: &EngineRun) -> String {
    let t = &run.report.timings;
    format!(
        concat!(
            "        {{\n",
            "          \"ingest_seconds\": {ingest:.6},\n",
            "          \"ingest_rows_per_sec\": {rps:.1},\n",
            "          \"outcome_seconds\": {outcome:.6},\n",
            "          \"total_seconds\": {total:.6},\n",
            "          \"peak_rss_kib\": {rss},\n",
            "          \"merge_rounds\": {merge_rounds},\n",
            "          \"stage_seconds\": {{\n",
            "            \"index\": {index:.6},\n",
            "            \"agp\": {agp:.6},\n",
            "            \"weight_learning\": {learning:.6},\n",
            "            \"rsc\": {rsc:.6},\n",
            "            \"fscr\": {fscr:.6},\n",
            "            \"dedup\": {dedup:.6},\n",
            "            \"partition\": {partition:.6},\n",
            "            \"weight_merge\": {weight_merge:.6},\n",
            "            \"gather\": {gather:.6}\n",
            "          }}\n",
            "        }}",
        ),
        ingest = run.ingest.as_secs_f64(),
        rps = rows as f64 / run.ingest.as_secs_f64().max(1e-9),
        outcome = run.outcome.as_secs_f64(),
        total = run.total().as_secs_f64(),
        rss = json_opt_u64(run.peak_rss_kib),
        merge_rounds = t.merge_rounds,
        index = t.index.as_secs_f64(),
        agp = t.agp.as_secs_f64(),
        learning = t.weight_learning.as_secs_f64(),
        rsc = t.rsc.as_secs_f64(),
        fscr = t.fscr.as_secs_f64(),
        dedup = t.dedup.as_secs_f64(),
        partition = t.partition.as_secs_f64(),
        weight_merge = t.weight_merge.as_secs_f64(),
        gather = t.gather.as_secs_f64(),
    )
}

fn render_rung(point: &RungPoint) -> String {
    let budgeted = match &point.budgeted {
        None => "null".to_string(),
        Some(b) => format!(
            concat!(
                "{{ \"budget_kib\": {budget}, ",
                "\"matches_unbudgeted\": {matches}, ",
                "\"peak_rss_kib\": {rss}, ",
                "\"rss_floor_kib\": {floor}, ",
                "\"rss_asserted\": {asserted}, ",
                "\"spilled_blocks\": {spilled}, ",
                "\"faulted_blocks\": {faulted}, ",
                "\"evicted_fusions\": {evicted}, ",
                "\"spilled_bytes\": {bytes} }}",
            ),
            budget = b.budget_kib,
            matches = b.matches_unbudgeted,
            rss = json_opt_u64(b.peak_rss_kib),
            floor = json_opt_u64(b.rss_floor_kib),
            asserted = b.rss_asserted,
            spilled = b.spilled_blocks,
            faulted = b.faulted_blocks,
            evicted = b.evicted_fusions,
            bytes = b.spilled_bytes,
        ),
    };
    let mutation = match &point.mutation {
        None => "null".to_string(),
        Some(m) => format!(
            concat!(
                "{{ \"samples\": {samples}, \"p50_seconds\": {p50:.6}, ",
                "\"p99_seconds\": {p99:.6}, \"max_seconds\": {max:.6}, ",
                "\"recleaned_groups\": {recleaned}, \"total_groups\": {total} }}",
            ),
            samples = m.samples,
            p50 = m.p50.as_secs_f64(),
            p99 = m.p99.as_secs_f64(),
            max = m.max.as_secs_f64(),
            recleaned = m.recleaned_groups,
            total = m.total_groups,
        ),
    };
    format!(
        concat!(
            "    {{\n",
            "      \"rows\": {rows},\n",
            "      \"entities\": {entities},\n",
            "      \"batches\": {batches},\n",
            "      \"injected_errors\": {injected},\n",
            "      \"byte_identity\": {{\n",
            "        \"checked\": {checked},\n",
            "        \"incremental_matches_batch\": {inc_match},\n",
            "        \"distributed_matches_batch\": {dist_match}\n",
            "      }},\n",
            "      \"engines\": {{\n",
            "        \"batch\":\n",
            "{batch},\n",
            "        \"incremental\":\n",
            "{incremental},\n",
            "        \"distributed\":\n",
            "{distributed}\n",
            "      }},\n",
            "      \"budgeted\": {budgeted},\n",
            "      \"mutation_latency\": {mutation}\n",
            "    }}",
        ),
        rows = point.rows,
        entities = point.entities,
        batches = point.batches,
        injected = point.injected_errors,
        checked = point.identity_checked,
        inc_match = json_opt_bool(point.incremental_matches_batch),
        dist_match = json_opt_bool(point.distributed_matches_batch),
        batch = render_engine(point.rows, &point.batch),
        incremental = render_engine(point.rows, &point.incremental),
        distributed = render_engine(point.rows, &point.distributed),
        budgeted = budgeted,
        mutation = mutation,
    )
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn json_opt_bool(v: Option<bool>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_config() -> LadderConfig {
        LadderConfig {
            rungs: vec![300, 900],
            max_rows: 900,
            batch_rows: 128,
            identity_limit: 900,
            mutation_samples: 4,
            ..LadderConfig::default()
        }
    }

    #[test]
    fn micro_ladder_runs_and_engines_agree() {
        let files = run_config(&micro_config());
        assert_eq!(files.len(), 1);
        let (name, json) = &files[0];
        assert_eq!(name, "BENCH_ladder.json");
        // Both rungs ran and the engines stayed byte-identical.
        assert!(json.contains("\"rows\": 300"));
        assert!(json.contains("\"rows\": 900"));
        assert_eq!(json.matches("\"checked\": true").count(), 2);
        assert_eq!(
            json.matches("\"incremental_matches_batch\": true").count(),
            2
        );
        assert_eq!(
            json.matches("\"distributed_matches_batch\": true").count(),
            2
        );
        // Only the largest rung carries the mutation probe.
        assert_eq!(json.matches("\"mutation_latency\": null").count(), 1);
        assert_eq!(json.matches("\"p99_seconds\"").count(), 1);
        // The group-scoped probe: single-cell mutations re-clean a strict
        // subset of the groups.
        let (recleaned, total) = probe_counts(json);
        assert!(
            recleaned > 0 && recleaned < total,
            "mutations should re-clean some but not all groups \
             (recleaned {recleaned} of {total})"
        );
        // Crude structural sanity: balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// Pull `"recleaned_groups"`/`"total_groups"` out of the artifact.
    fn probe_counts(json: &str) -> (u64, u64) {
        let grab = |key: &str| -> u64 {
            let at = json.find(key).unwrap_or_else(|| panic!("{key} missing"));
            json[at + key.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("the probe counters are integers")
        };
        (grab("\"recleaned_groups\": "), grab("\"total_groups\": "))
    }

    #[test]
    fn hai_and_car_micro_ladders_run() {
        // The non-TPC-H workloads ladder the same way: own artifact, the
        // same schema, byte-identical engines, and a group-scoped mutation
        // probe on the largest rung.
        for (workload, artifact) in [
            (Workload::Hai, "BENCH_ladder_hai.json"),
            (Workload::Car, "BENCH_ladder_car.json"),
        ] {
            let config = LadderConfig {
                workload,
                rungs: vec![500],
                max_rows: 500,
                batch_rows: 128,
                identity_limit: 500,
                mutation_samples: 3,
                ..LadderConfig::default()
            };
            let files = run_config(&config);
            assert_eq!(files.len(), 1);
            let (name, json) = &files[0];
            assert_eq!(name, artifact);
            assert!(json.contains(&format!("\"workload\": \"{}\"", workload.name())));
            assert_eq!(json.matches("\"checked\": true").count(), 1, "{name}");
            assert_eq!(
                json.matches("\"incremental_matches_batch\": true").count(),
                1,
                "{name}"
            );
            assert_eq!(
                json.matches("\"distributed_matches_batch\": true").count(),
                1,
                "{name}"
            );
            let (recleaned, total) = probe_counts(json);
            assert!(
                recleaned > 0 && recleaned < total,
                "{name}: recleaned {recleaned} of {total}"
            );
            assert_eq!(json.matches('{').count(), json.matches('}').count());
        }
    }

    #[test]
    fn ladder_artifact_schema_keys_are_pinned() {
        // Golden pin of the artifact's schema: `scripts/assert_bench.py` and
        // the committed baseline both rely on these exact keys, so renaming
        // any of them must be a conscious, test-visible decision.
        let config = LadderConfig {
            rungs: vec![250],
            max_rows: 250,
            batch_rows: 64,
            identity_limit: 250,
            mutation_samples: 2,
            ..LadderConfig::default()
        };
        let (_, json) = run_config(&config).pop().unwrap();
        for key in [
            "\"experiment\"",
            "\"codec_version\"",
            "\"workload\"",
            "\"max_rows\"",
            "\"batch_rows\"",
            "\"error_rate\"",
            "\"replacement_ratio\"",
            "\"seed\"",
            "\"partitions\"",
            "\"merge_every\"",
            "\"identity_limit\"",
            "\"threads\"",
            "\"rss_meter\"",
            "\"supported\"",
            "\"resettable\"",
            "\"rungs\"",
            "\"rows\"",
            "\"entities\"",
            "\"batches\"",
            "\"injected_errors\"",
            "\"byte_identity\"",
            "\"checked\"",
            "\"incremental_matches_batch\"",
            "\"distributed_matches_batch\"",
            "\"engines\"",
            "\"batch\"",
            "\"incremental\"",
            "\"distributed\"",
            "\"ingest_seconds\"",
            "\"ingest_rows_per_sec\"",
            "\"outcome_seconds\"",
            "\"total_seconds\"",
            "\"peak_rss_kib\"",
            "\"merge_rounds\"",
            "\"stage_seconds\"",
            "\"index\"",
            "\"agp\"",
            "\"weight_learning\"",
            "\"rsc\"",
            "\"fscr\"",
            "\"dedup\"",
            "\"partition\"",
            "\"weight_merge\"",
            "\"gather\"",
            "\"mutation_latency\"",
            "\"samples\"",
            "\"p50_seconds\"",
            "\"p99_seconds\"",
            "\"max_seconds\"",
            "\"recleaned_groups\"",
            "\"total_groups\"",
            "\"budgeted\"",
            "\"budget_kib\"",
            "\"matches_unbudgeted\"",
            "\"rss_floor_kib\"",
            "\"rss_asserted\"",
            "\"spilled_blocks\"",
            "\"faulted_blocks\"",
            "\"evicted_fusions\"",
            "\"spilled_bytes\"",
        ] {
            assert!(json.contains(key), "BENCH_ladder.json lost the {key} key");
        }
    }

    #[test]
    fn tight_budget_rung_spills_and_stays_byte_identical() {
        // A 1-byte budget forces the probe through the whole out-of-core
        // path (spill + evict) and the report must still match the
        // unbudgeted incremental run byte-for-byte.
        let config = LadderConfig {
            rungs: vec![600],
            max_rows: 600,
            batch_rows: 128,
            identity_limit: 600,
            mutation_samples: 2,
            memory_budget: Some(1),
            rss_assert_limit: 0,
            ..LadderConfig::default()
        };
        let (_, json) = run_config(&config).pop().unwrap();
        assert!(json.contains("\"matches_unbudgeted\": true"), "{json}");
        // RSS is never claimed against a 1-byte budget.
        assert!(json.contains("\"rss_asserted\": false"));
        let grab = |key: &str| -> u64 {
            let at = json.find(key).unwrap_or_else(|| panic!("{key} missing"));
            json[at + key.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .expect("the spill counters are integers")
        };
        assert!(grab("\"spilled_blocks\": ") > 0, "{json}");
        assert!(grab("\"evicted_fusions\": ") > 0, "{json}");
        assert!(grab("\"spilled_bytes\": ") > 0, "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn budget_probe_can_be_disabled() {
        let config = LadderConfig {
            rungs: vec![250],
            max_rows: 250,
            batch_rows: 64,
            identity_limit: 250,
            mutation_samples: 2,
            memory_budget: None,
            ..LadderConfig::default()
        };
        let (_, json) = run_config(&config).pop().unwrap();
        assert!(json.contains("\"budgeted\": null"));
    }

    #[test]
    fn rungs_above_the_cap_are_skipped() {
        let config = LadderConfig {
            max_rows: 123,
            ..LadderConfig::default()
        };
        assert!(config.active_rungs().is_empty());
        let config = LadderConfig {
            max_rows: 100_000,
            ..LadderConfig::default()
        };
        assert_eq!(config.active_rungs(), vec![10_000, 100_000]);
    }
}
