//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 7) on the synthetic stand-in datasets.
//!
//! Each `figN`/`tableN` module produces the same rows/series the paper
//! reports; the `experiments` binary prints them as aligned text tables and
//! writes CSV files under `results/`.  Absolute numbers differ from the paper
//! (different data, different hardware, no Spark cluster) — EXPERIMENTS.md
//! tracks paper-vs-measured values and the qualitative shape that must hold.

pub mod common;
pub mod fig15;
pub mod fig6;
pub mod fig7;
pub mod ladder;
pub mod smoke;
pub mod sweeps;
pub mod table5;
pub mod table6;

pub use common::{Scale, Workload};

/// Identifier of a runnable experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Figure 6: F1 and runtime vs. error percentage, MLNClean vs HoloClean.
    Fig6,
    /// Figure 7: F1 vs. replacement-error ratio.
    Fig7,
    /// Figures 8–11: component accuracy and overall F1/runtime vs. τ.
    ThresholdSweep,
    /// Figures 12–14: component accuracy vs. error percentage.
    ErrorSweep,
    /// Figure 15: distributed MLNClean vs. error percentage.
    Fig15,
    /// Table 5: distance-metric comparison.
    Table5,
    /// Table 6: distributed runtime vs. worker count.
    Table6,
    /// CI bench-smoke: one end-to-end run emitting `BENCH_smoke.json` with
    /// wall-time and repair quality.  Not part of the paper; excluded from
    /// [`Experiment::ALL`].
    Smoke,
    /// Paper-scale benchmark ladder: TPC-H at 10⁴–10⁷ rows plus HAI and CAR
    /// at 10⁴–10⁵, across all three engines, emitting `BENCH_ladder.json`,
    /// `BENCH_ladder_hai.json` and `BENCH_ladder_car.json`.  Not part of the
    /// paper's figures; excluded from [`Experiment::ALL`].
    Ladder,
}

impl Experiment {
    /// All experiments, in paper order.
    pub const ALL: [Experiment; 7] = [
        Experiment::Fig6,
        Experiment::Fig7,
        Experiment::ThresholdSweep,
        Experiment::ErrorSweep,
        Experiment::Fig15,
        Experiment::Table5,
        Experiment::Table6,
    ];

    /// Parse an experiment id from the command line (`fig6`, `table5`, …).
    pub fn parse(s: &str) -> Option<Vec<Experiment>> {
        match s.to_ascii_lowercase().as_str() {
            "all" => Some(Self::ALL.to_vec()),
            "fig6" => Some(vec![Experiment::Fig6]),
            "fig7" => Some(vec![Experiment::Fig7]),
            "fig8" | "fig9" | "fig10" | "fig11" | "threshold" => {
                Some(vec![Experiment::ThresholdSweep])
            }
            "fig12" | "fig13" | "fig14" | "errorsweep" => Some(vec![Experiment::ErrorSweep]),
            "fig15" => Some(vec![Experiment::Fig15]),
            "table5" => Some(vec![Experiment::Table5]),
            "table6" => Some(vec![Experiment::Table6]),
            "smoke" => Some(vec![Experiment::Smoke]),
            "ladder" => Some(vec![Experiment::Ladder]),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::ThresholdSweep => "fig8-11 (threshold sweep)",
            Experiment::ErrorSweep => "fig12-14 (error-percentage sweep)",
            Experiment::Fig15 => "fig15",
            Experiment::Table5 => "table5",
            Experiment::Table6 => "table6",
            Experiment::Smoke => "smoke",
            Experiment::Ladder => "ladder",
        }
    }

    /// Run the experiment, printing its tables and returning the CSV files it
    /// produced (path, contents).
    pub fn run(&self, scale: Scale) -> Vec<(String, String)> {
        self.run_with(scale, None)
    }

    /// Like [`Experiment::run`], with the ladder's row cap threaded through
    /// (`--max-rows` on the command line; ignored by every other experiment).
    pub fn run_with(&self, scale: Scale, max_rows: Option<usize>) -> Vec<(String, String)> {
        match self {
            Experiment::Fig6 => fig6::run(scale),
            Experiment::Fig7 => fig7::run(scale),
            Experiment::ThresholdSweep => sweeps::run_threshold(scale),
            Experiment::ErrorSweep => sweeps::run_error(scale),
            Experiment::Fig15 => fig15::run(scale),
            Experiment::Table5 => table5::run(scale),
            Experiment::Table6 => table6::run(scale),
            Experiment::Smoke => smoke::run(scale),
            Experiment::Ladder => ladder::run(scale, max_rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_parse() {
        assert_eq!(Experiment::parse("fig6"), Some(vec![Experiment::Fig6]));
        assert_eq!(
            Experiment::parse("FIG9"),
            Some(vec![Experiment::ThresholdSweep])
        );
        assert_eq!(Experiment::parse("table6"), Some(vec![Experiment::Table6]));
        assert_eq!(Experiment::parse("all").map(|v| v.len()), Some(7));
        assert_eq!(Experiment::parse("nope"), None);
    }

    #[test]
    fn tiny_scale_fig6_runs() {
        // A smoke test that the harness end-to-end works at the tiny scale.
        let files = fig6::run(Scale::Tiny);
        assert!(!files.is_empty());
        let (_, csv) = &files[0];
        assert!(csv.lines().count() > 1, "CSV should have a header and rows");
    }

    #[test]
    fn tiny_scale_table5_runs() {
        let files = table5::run(Scale::Tiny);
        assert_eq!(files.len(), 1);
        assert!(files[0].1.contains("levenshtein"));
        assert!(files[0].1.contains("cosine"));
    }
}
