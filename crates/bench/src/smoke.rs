//! CI bench-smoke: one end-to-end MLNClean run on a tiny synthetic HAI
//! workload, emitted as a machine-readable `BENCH_smoke.json`.
//!
//! This is not one of the paper's experiments — it exists so CI records a
//! small, fast perf point on every push (end-to-end wall-time plus per-stage
//! breakdown, repair quality, and since the interning refactor the
//! memory-side picture: value-pool size, distinct values per attribute, and
//! the Stage-I distance-cache hit rate), seeding the `BENCH_*.json`
//! trajectory that later PRs can compare against.

use crate::common::{Scale, Workload};
use dataset::RepairEvaluation;
use mlnclean::{CacheStats, MlnClean};
use std::time::Instant;

/// Run the smoke workload and return the JSON artifact as `(file name,
/// contents)` pairs, like every other experiment.
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let workload = Workload::Hai;
    let error_rate = 0.05;
    let replacement_ratio = 0.5;
    let seed = 1;

    let dirty = workload.dirty(scale, error_rate, replacement_ratio, seed);
    let rules = workload.rules();
    let cleaner = MlnClean::new(workload.clean_config());

    let started = Instant::now();
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("smoke workload cleans");
    let wall = started.elapsed();

    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
    let timings = outcome.timings;

    // Memory-side statistics of the interned representation: the pool holds
    // every distinct value once, so pool size vs. cell count is exactly the
    // deduplication factor the columnar layout buys.
    let ds = &dirty.dirty;
    let pool_values = ds.pool().len();
    let pool_bytes = ds.pool().string_bytes();
    let distinct_per_attr: String = ds
        .schema()
        .attr_ids()
        .map(|a| {
            format!(
                "    \"{}\": {}",
                ds.schema().attr_name(a),
                ds.distinct_count(a)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // Stage-I distance-cache effectiveness (AGP + RSC combined).
    let mut cache = CacheStats::default();
    cache.absorb(outcome.agp.cache);
    cache.absorb(outcome.rsc.cache);

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"smoke\",\n",
            "  \"workload\": \"{workload}\",\n",
            "  \"scale\": \"{scale:?}\",\n",
            "  \"rows\": {rows},\n",
            "  \"rules\": {rules},\n",
            "  \"error_rate\": {error_rate},\n",
            "  \"injected_errors\": {injected},\n",
            "  \"threads\": {threads},\n",
            "  \"end_to_end_seconds\": {wall:.6},\n",
            "  \"stage_seconds\": {{\n",
            "    \"index\": {index:.6},\n",
            "    \"agp\": {agp:.6},\n",
            "    \"weight_learning\": {learning:.6},\n",
            "    \"rsc\": {rsc:.6},\n",
            "    \"fscr\": {fscr:.6}\n",
            "  }},\n",
            "  \"memory\": {{\n",
            "    \"cells\": {cells},\n",
            "    \"pool_distinct_values\": {pool_values},\n",
            "    \"pool_string_bytes\": {pool_bytes},\n",
            "    \"distinct_per_attribute\": {{\n",
            "{distinct_per_attr}\n",
            "    }}\n",
            "  }},\n",
            "  \"distance_cache\": {{\n",
            "    \"hits\": {cache_hits},\n",
            "    \"misses\": {cache_misses},\n",
            "    \"hit_rate\": {cache_hit_rate:.6}\n",
            "  }},\n",
            "  \"precision\": {precision:.6},\n",
            "  \"recall\": {recall:.6},\n",
            "  \"f1\": {f1:.6}\n",
            "}}\n",
        ),
        workload = workload.name(),
        scale = scale,
        rows = dirty.dirty.len(),
        rules = rules.len(),
        error_rate = error_rate,
        injected = dirty.error_count(),
        threads = rayon_threads(),
        wall = wall.as_secs_f64(),
        index = timings.index.as_secs_f64(),
        agp = timings.agp.as_secs_f64(),
        learning = timings.weight_learning.as_secs_f64(),
        rsc = timings.rsc.as_secs_f64(),
        fscr = timings.fscr.as_secs_f64(),
        cells = ds.cell_count(),
        pool_values = pool_values,
        pool_bytes = pool_bytes,
        distinct_per_attr = distinct_per_attr,
        cache_hits = cache.hits,
        cache_misses = cache.misses,
        cache_hit_rate = cache.hit_rate(),
        precision = report.precision(),
        recall = report.recall(),
        f1 = report.f1(),
    );

    println!(
        "smoke: {} rows cleaned in {:.3}s (F1 {:.3})",
        dirty.dirty.len(),
        wall.as_secs_f64(),
        report.f1()
    );

    vec![("BENCH_smoke.json".to_string(), json)]
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_emits_wall_time_json() {
        let files = run(Scale::Tiny);
        assert_eq!(files.len(), 1);
        let (name, json) = &files[0];
        assert_eq!(name, "BENCH_smoke.json");
        assert!(json.contains("\"end_to_end_seconds\""));
        assert!(json.contains("\"f1\""));
        // Memory-side stats of the interned representation.
        assert!(json.contains("\"pool_distinct_values\""));
        assert!(json.contains("\"distinct_per_attribute\""));
        assert!(json.contains("\"hit_rate\""));
        // Crude structural sanity: balanced braces, no trailing comma issues.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
