//! CI bench-smoke: one end-to-end MLNClean run on a tiny synthetic HAI
//! workload, emitted as a machine-readable `BENCH_smoke.json`.
//!
//! This is not one of the paper's experiments — it exists so CI records a
//! small, fast perf point on every push (end-to-end wall-time plus per-stage
//! breakdown and repair quality), seeding the `BENCH_*.json` trajectory that
//! later PRs can compare against.

use crate::common::{Scale, Workload};
use dataset::RepairEvaluation;
use mlnclean::MlnClean;
use std::time::Instant;

/// Run the smoke workload and return the JSON artifact as `(file name,
/// contents)` pairs, like every other experiment.
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let workload = Workload::Hai;
    let error_rate = 0.05;
    let replacement_ratio = 0.5;
    let seed = 1;

    let dirty = workload.dirty(scale, error_rate, replacement_ratio, seed);
    let rules = workload.rules();
    let cleaner = MlnClean::new(workload.clean_config());

    let started = Instant::now();
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("smoke workload cleans");
    let wall = started.elapsed();

    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
    let timings = outcome.timings;

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"smoke\",\n",
            "  \"workload\": \"{workload}\",\n",
            "  \"scale\": \"{scale:?}\",\n",
            "  \"rows\": {rows},\n",
            "  \"rules\": {rules},\n",
            "  \"error_rate\": {error_rate},\n",
            "  \"injected_errors\": {injected},\n",
            "  \"threads\": {threads},\n",
            "  \"end_to_end_seconds\": {wall:.6},\n",
            "  \"stage_seconds\": {{\n",
            "    \"index\": {index:.6},\n",
            "    \"agp\": {agp:.6},\n",
            "    \"weight_learning\": {learning:.6},\n",
            "    \"rsc\": {rsc:.6},\n",
            "    \"fscr\": {fscr:.6}\n",
            "  }},\n",
            "  \"precision\": {precision:.6},\n",
            "  \"recall\": {recall:.6},\n",
            "  \"f1\": {f1:.6}\n",
            "}}\n",
        ),
        workload = workload.name(),
        scale = scale,
        rows = dirty.dirty.len(),
        rules = rules.len(),
        error_rate = error_rate,
        injected = dirty.error_count(),
        threads = rayon_threads(),
        wall = wall.as_secs_f64(),
        index = timings.index.as_secs_f64(),
        agp = timings.agp.as_secs_f64(),
        learning = timings.weight_learning.as_secs_f64(),
        rsc = timings.rsc.as_secs_f64(),
        fscr = timings.fscr.as_secs_f64(),
        precision = report.precision(),
        recall = report.recall(),
        f1 = report.f1(),
    );

    println!(
        "smoke: {} rows cleaned in {:.3}s (F1 {:.3})",
        dirty.dirty.len(),
        wall.as_secs_f64(),
        report.f1()
    );

    vec![("BENCH_smoke.json".to_string(), json)]
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_emits_wall_time_json() {
        let files = run(Scale::Tiny);
        assert_eq!(files.len(), 1);
        let (name, json) = &files[0];
        assert_eq!(name, "BENCH_smoke.json");
        assert!(json.contains("\"end_to_end_seconds\""));
        assert!(json.contains("\"f1\""));
        // Crude structural sanity: balanced braces, no trailing comma issues.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
