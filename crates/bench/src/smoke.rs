//! CI bench-smoke: one end-to-end MLNClean run on a tiny synthetic HAI
//! workload, emitted as a machine-readable `BENCH_smoke.json`.
//!
//! This is not one of the paper's experiments — it exists so CI records a
//! small, fast perf point on every push (end-to-end wall-time plus per-stage
//! breakdown, repair quality, and since the interning refactor the
//! memory-side picture: value-pool size, distinct values per attribute, and
//! the Stage-I distance-cache hit rate), seeding the `BENCH_*.json`
//! trajectory that later PRs can compare against.
//!
//! Since the incremental engine landed the artifact also records a
//! **streaming** section: the same tiny HAI ingested in 8 micro-batches
//! through `CleaningSession` (per-batch wall-time, dirty-block counts, and a
//! byte-identity check against the one-shot run), plus an incremental
//! re-clean probe on CAR whose tail batch leaves the CFD block untouched —
//! dirty blocks < total blocks — measured against a full batch re-run.

use crate::common::{rayon_threads, reports_identical, Scale, Workload};
use dataset::{csv, RepairEvaluation};
use distributed::DistributedStreamingSession;
use mlnclean::{CacheStats, ChangeSet, CleaningSession, MlnClean, SessionSnapshot};
use std::time::{Duration, Instant};
use transport::{wire_session, FaultSchedule, WorkerCrash, CODEC_VERSION};

/// Run the smoke workload and return the JSON artifact as `(file name,
/// contents)` pairs, like every other experiment.
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let workload = Workload::Hai;
    let error_rate = 0.05;
    let replacement_ratio = 0.5;
    let seed = 1;

    let dirty = workload.dirty(scale, error_rate, replacement_ratio, seed);
    let rules = workload.rules();
    let cleaner = MlnClean::new(workload.clean_config());

    let started = Instant::now();
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("smoke workload cleans");
    let wall = started.elapsed();

    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
    let timings = outcome.timings;

    // Memory-side statistics of the interned representation: the pool holds
    // every distinct value once, so pool size vs. cell count is exactly the
    // deduplication factor the columnar layout buys.
    let ds = &dirty.dirty;
    let pool_values = ds.pool().len();
    let pool_bytes = ds.pool().string_bytes();
    let distinct_per_attr: String = ds
        .schema()
        .attr_ids()
        .map(|a| {
            format!(
                "    \"{}\": {}",
                ds.schema().attr_name(a),
                ds.distinct_count(a)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // Stage-I distance-cache effectiveness (AGP + RSC combined).
    let mut cache = CacheStats::default();
    cache.absorb(outcome.agp.cache);
    cache.absorb(outcome.rsc.cache);

    // Streaming scenarios: the same HAI workload ingested in 8 micro-batches,
    // the CAR incremental re-clean probe (dirty blocks < total blocks), and
    // the typed-mutation probe (delete + re-update a CAR tail).
    let stream = run_hai_stream(&dirty.dirty, &workload, &outcome, wall);
    let reclean = run_incremental_reclean(scale);
    let mutation = run_mutation_probe(scale);
    let distributed = run_distributed_stream(scale);
    let suspend = run_suspend_resume(scale);
    let wire = run_wire_probe(scale);
    let streaming = render_streaming(&stream, &reclean, &mutation, &distributed, &suspend, &wire);

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"smoke\",\n",
            "  \"codec_version\": {codec_version},\n",
            "  \"workload\": \"{workload}\",\n",
            "  \"scale\": \"{scale:?}\",\n",
            "  \"rows\": {rows},\n",
            "  \"rules\": {rules},\n",
            "  \"error_rate\": {error_rate},\n",
            "  \"injected_errors\": {injected},\n",
            "  \"threads\": {threads},\n",
            "  \"end_to_end_seconds\": {wall:.6},\n",
            "  \"stage_seconds\": {{\n",
            "    \"index\": {index:.6},\n",
            "    \"agp\": {agp:.6},\n",
            "    \"weight_learning\": {learning:.6},\n",
            "    \"rsc\": {rsc:.6},\n",
            "    \"fscr\": {fscr:.6},\n",
            "    \"dedup\": {dedup:.6}\n",
            "  }},\n",
            "  \"memory\": {{\n",
            "    \"cells\": {cells},\n",
            "    \"pool_distinct_values\": {pool_values},\n",
            "    \"pool_string_bytes\": {pool_bytes},\n",
            "    \"distinct_per_attribute\": {{\n",
            "{distinct_per_attr}\n",
            "    }}\n",
            "  }},\n",
            "  \"distance_cache\": {{\n",
            "    \"hits\": {cache_hits},\n",
            "    \"misses\": {cache_misses},\n",
            "    \"hit_rate\": {cache_hit_rate:.6}\n",
            "  }},\n",
            "  \"precision\": {precision:.6},\n",
            "  \"recall\": {recall:.6},\n",
            "  \"f1\": {f1:.6},\n",
            "  \"streaming\": {streaming}\n",
            "}}\n",
        ),
        codec_version = CODEC_VERSION,
        workload = workload.name(),
        scale = scale,
        rows = dirty.dirty.len(),
        rules = rules.len(),
        error_rate = error_rate,
        injected = dirty.error_count(),
        threads = rayon_threads(),
        wall = wall.as_secs_f64(),
        index = timings.index.as_secs_f64(),
        agp = timings.agp.as_secs_f64(),
        learning = timings.weight_learning.as_secs_f64(),
        rsc = timings.rsc.as_secs_f64(),
        fscr = timings.fscr.as_secs_f64(),
        dedup = timings.dedup.as_secs_f64(),
        cells = ds.cell_count(),
        pool_values = pool_values,
        pool_bytes = pool_bytes,
        distinct_per_attr = distinct_per_attr,
        cache_hits = cache.hits,
        cache_misses = cache.misses,
        cache_hit_rate = cache.hit_rate(),
        precision = report.precision(),
        recall = report.recall(),
        f1 = report.f1(),
        streaming = streaming,
    );

    println!(
        "smoke: {} rows cleaned in {:.3}s (F1 {:.3})",
        dirty.dirty.len(),
        wall.as_secs_f64(),
        report.f1()
    );

    vec![("BENCH_smoke.json".to_string(), json)]
}

/// One micro-batch's measurements in the streaming scenario.
struct BatchPoint {
    rows: usize,
    wall: Duration,
    dirty_blocks: usize,
    total_blocks: usize,
    touched_groups: usize,
    total_groups: usize,
}

/// The HAI micro-batch stream: per-batch wall-time and dirtiness, plus
/// byte-identity of the final incremental result with the one-shot run.
struct StreamProbe {
    per_batch: Vec<BatchPoint>,
    stream_total: Duration,
    one_shot: Duration,
    final_matches_one_shot: bool,
}

/// Ingest the smoke HAI workload in 8 micro-batches, re-cleaning after every
/// batch (`CleaningSession::outcome`), and compare the final result with the
/// already-measured one-shot outcome.
fn run_hai_stream(
    dirty: &dataset::Dataset,
    workload: &Workload,
    one_shot: &mlnclean::Report,
    one_shot_wall: Duration,
) -> StreamProbe {
    let rules = workload.rules();
    let mut session = CleaningSession::new(workload.clean_config(), dirty.schema().clone(), rules)
        .expect("the smoke rules match the smoke schema");

    let mut per_batch = Vec::new();
    let mut last = None;
    let stream_started = Instant::now();
    for batch in datagen::row_batches(dirty, 8) {
        let started = Instant::now();
        let report = session.ingest_batch(batch).expect("rows match the schema");
        let outcome = session.outcome();
        per_batch.push(BatchPoint {
            rows: report.rows,
            wall: started.elapsed(),
            dirty_blocks: report.dirty_blocks,
            total_blocks: report.total_blocks,
            touched_groups: report.touched_groups,
            total_groups: report.total_groups,
        });
        last = Some(outcome);
    }
    let stream_total = stream_started.elapsed();

    let final_matches_one_shot = last.is_some_and(|outcome| {
        csv::to_csv(&outcome.repaired) == csv::to_csv(&one_shot.repaired)
            && csv::to_csv(outcome.deduplicated()) == csv::to_csv(one_shot.deduplicated())
    });
    StreamProbe {
        per_batch,
        stream_total,
        one_shot: one_shot_wall,
        final_matches_one_shot,
    }
}

/// The incremental re-clean probe: after a bulk ingest + clean of the CAR
/// workload, a small tail batch of non-acura rows arrives.  The CFD block
/// (`Make="acura"`) stays clean — dirty blocks < total blocks — and the
/// incremental re-clean is measured against a full batch re-run over the
/// same accumulated data (which it must match byte for byte).
struct RecleanProbe {
    head_rows: usize,
    tail_rows: usize,
    dirty_blocks: usize,
    total_blocks: usize,
    incremental: Duration,
    full: Duration,
    matches_full: bool,
}

fn run_incremental_reclean(scale: Scale) -> RecleanProbe {
    let workload = Workload::Car;
    let dirty = workload.dirty(scale, 0.05, 0.5, 1).dirty;
    let rules = workload.rules();
    let config = workload.clean_config();

    // Order-preserving split: the tail is the last few non-acura rows (they
    // are irrelevant to the CFD, so its block must stay clean).
    let (head, tail) = datagen::CarGenerator::non_acura_tail_split(&dirty, 16);

    let tail_rows: Vec<Vec<String>> = tail
        .iter()
        .map(|&t| dirty.tuple(t).owned_values())
        .collect();

    // Three repetitions, best (minimum) wall-time of each side — single
    // runs of a few milliseconds are too noisy for a stable speedup.
    let mut incremental = Duration::MAX;
    let mut full = Duration::MAX;
    let mut dirty_blocks = 0;
    let mut total_blocks = 0;
    let mut matches_full = true;
    for _ in 0..3 {
        let mut session =
            CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone())
                .expect("the CAR rules match the CAR schema");
        session
            .ingest_dataset(&dirty.project_rows(&head))
            .expect("same schema");
        let _ = session.outcome();

        // The measured incremental re-clean: tail ingest + re-clean (the
        // batch copy is prepared before the timer starts, mirroring the full
        // re-run whose inputs are also ready-made).
        let batch = tail_rows.clone();
        let started = Instant::now();
        let report = session.ingest_batch(batch).expect("rows match the schema");
        let incremental_outcome = session.outcome();
        incremental = incremental.min(started.elapsed());
        dirty_blocks = report.dirty_blocks;
        total_blocks = report.total_blocks;

        // The full batch re-run over the same accumulated rows.
        let started = Instant::now();
        let full_outcome = MlnClean::new(config.clone())
            .clean(session.dataset(), &rules)
            .expect("the CAR workload cleans");
        full = full.min(started.elapsed());
        matches_full &=
            csv::to_csv(&incremental_outcome.repaired) == csv::to_csv(&full_outcome.repaired);
    }

    RecleanProbe {
        head_rows: head.len(),
        tail_rows: tail.len(),
        dirty_blocks,
        total_blocks,
        incremental,
        full,
        matches_full,
    }
}

/// The typed-mutation probe: after a bulk ingest + clean of the CAR
/// workload, a change set deletes a few non-acura tail rows and re-updates a
/// few cells of others.  The CFD block (`Make="acura"`) stays clean — dirty
/// blocks < total blocks — and the incremental re-clean is measured against
/// a full batch re-run over the net surviving rows (which it must match byte
/// for byte).
struct MutationProbe {
    rows: usize,
    deleted_rows: usize,
    updated_cells: usize,
    dirty_blocks: usize,
    total_blocks: usize,
    incremental: Duration,
    full: Duration,
    matches_full: bool,
}

fn run_mutation_probe(scale: Scale) -> MutationProbe {
    use dataset::TupleId;
    use mlnclean::ChangeSet;

    let workload = Workload::Car;
    let dirty = workload.dirty(scale, 0.05, 0.5, 1).dirty;
    let rules = workload.rules();
    let config = workload.clean_config();

    // Put the non-acura rows at the tail so the mutations below address them
    // with stable ids; the CFD block must stay clean throughout.
    let (head, tail) = datagen::CarGenerator::non_acura_tail_split(&dirty, 12);
    let ordered: Vec<TupleId> = head.iter().chain(tail.iter()).copied().collect();
    let feed = dirty.project_rows(&ordered);
    let model_attr = dirty.schema().attr_id("Model").unwrap();

    // The change set: delete the last 4 rows, re-update the Model cell of
    // the 4 before them to a value guaranteed to differ (so every update is
    // a real overwrite, not a no-op the session skips).  The first non-acura
    // row sits at index head.len() in the reordered feed (`tail` ids are in
    // the pre-reorder numbering).
    let total = feed.len();
    let donor = feed.value(TupleId(head.len()), model_attr).to_string();
    let mut changes = ChangeSet::new();
    let mut deletes = 0usize;
    for _ in 0..4.min(tail.len()) {
        changes = changes.delete(TupleId(total - 1 - deletes));
        deletes += 1;
    }
    let survivors = total - deletes;
    for i in 0..4.min(survivors) {
        let t = TupleId(survivors - 1 - i);
        // Deletes only shear off rows above `t`, so `feed` still holds t's
        // current value.
        let v = if feed.value(t, model_attr) == donor {
            format!("{donor}-corrected")
        } else {
            donor.clone()
        };
        changes = changes.update(t, model_attr, v);
    }

    // Three repetitions, best (minimum) wall-time of each side.
    let mut incremental = Duration::MAX;
    let mut full = Duration::MAX;
    let mut deleted_rows = 0;
    let mut updated_cells = 0;
    let mut dirty_blocks = 0;
    let mut total_blocks = 0;
    let mut matches_full = true;
    for _ in 0..3 {
        let mut session =
            CleaningSession::new(config.clone(), feed.schema().clone(), rules.clone())
                .expect("the CAR rules match the CAR schema");
        session.ingest_dataset(&feed).expect("same schema");
        let _ = session.outcome();

        let batch = changes.clone();
        let started = Instant::now();
        let report = session.apply(batch).expect("mutations are in bounds");
        let incremental_outcome = session.outcome();
        incremental = incremental.min(started.elapsed());
        deleted_rows = report.deleted_rows;
        updated_cells = report.updated_cells;
        dirty_blocks = report.dirty_blocks;
        total_blocks = report.total_blocks;

        // The full batch re-run over the net surviving rows.
        let started = Instant::now();
        let full_outcome = MlnClean::new(config.clone())
            .clean(session.dataset(), &rules)
            .expect("the CAR workload cleans");
        full = full.min(started.elapsed());
        matches_full &=
            csv::to_csv(&incremental_outcome.repaired) == csv::to_csv(&full_outcome.repaired);
    }

    MutationProbe {
        rows: total,
        deleted_rows,
        updated_cells,
        dirty_blocks,
        total_blocks,
        incremental,
        full,
        matches_full,
    }
}

/// The distributed-streaming probe: the same tiny HAI workload ingested in
/// 8 micro-batches through a 2-partition `DistributedStreamingSession`
/// (merge cadence 1) **and** a single `CleaningSession`, asserting
/// byte-identity of the repaired CSV and the full AGP/RSC/FSCR provenance,
/// and reporting the per-round cross-partition merge cost.
struct DistributedStreamProbe {
    partitions: usize,
    merge_every: usize,
    batches: usize,
    merge_rounds: usize,
    weight_merge: Duration,
    gather: Duration,
    shared_gammas: usize,
    partition_sizes: Vec<usize>,
    matches_single_session: bool,
}

fn run_distributed_stream(scale: Scale) -> DistributedStreamProbe {
    let workload = Workload::Hai;
    let dirty = workload.dirty(scale, 0.05, 0.5, 1).dirty;
    let rules = workload.rules();
    let config = workload.clean_config();
    let (partitions, merge_every) = (2usize, 1usize);

    let mut single = CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone())
        .expect("the smoke rules match the smoke schema");
    let mut streamed = DistributedStreamingSession::new(
        config,
        dirty.schema().clone(),
        rules,
        partitions,
        merge_every,
    )
    .expect("the smoke rules match the smoke schema");

    let mut batches = 0usize;
    for batch in datagen::row_batches(&dirty, 8) {
        single
            .apply(ChangeSet::inserting(batch.clone()))
            .expect("rows match the schema");
        streamed
            .apply(ChangeSet::inserting(batch))
            .expect("rows match the schema");
        batches += 1;
    }
    let partition_sizes = streamed.partition_sizes();
    let streamed = streamed.finish();
    let single = single.finish();

    DistributedStreamProbe {
        partitions,
        merge_every,
        batches,
        merge_rounds: streamed.timings.merge_rounds,
        weight_merge: streamed.timings.weight_merge,
        gather: streamed.timings.gather,
        shared_gammas: streamed
            .partitions
            .as_ref()
            .map(|p| p.shared_gammas)
            .unwrap_or(0),
        partition_sizes,
        matches_single_session: reports_identical(&streamed, &single),
    }
}

/// The suspend/resume probe: the same HAI micro-batch stream, but the
/// session is suspended halfway — its compacting `SessionSnapshot` encoded
/// through the wire codec, the live session dropped, and a fresh session
/// resumed from the decoded frame — then the stream finishes.  The resumed
/// session's final outcome must be byte-identical to an uninterrupted run
/// over the same batches.
struct SuspendResumeProbe {
    batches: usize,
    suspended_at_batch: usize,
    snapshot_bytes: usize,
    matches_uninterrupted: bool,
}

fn run_suspend_resume(scale: Scale) -> SuspendResumeProbe {
    let workload = Workload::Hai;
    let dirty = workload.dirty(scale, 0.05, 0.5, 1).dirty;
    let rules = workload.rules();
    let config = workload.clean_config();

    let mut uninterrupted =
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone())
            .expect("the smoke rules match the smoke schema");
    let mut session = Some(
        CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone())
            .expect("the smoke rules match the smoke schema"),
    );

    let batches: Vec<Vec<Vec<String>>> = datagen::row_batches(&dirty, 8);
    let suspend_after = batches.len() / 2;
    let mut suspended_at_batch = 0usize;
    let mut snapshot_bytes = 0usize;
    for (i, batch) in batches.iter().enumerate() {
        uninterrupted
            .ingest_batch(batch.clone())
            .expect("rows match the schema");
        session
            .as_mut()
            .expect("session is live between suspends")
            .ingest_batch(batch.clone())
            .expect("rows match the schema");
        if i + 1 == suspend_after {
            // Suspend: snapshot → codec frame → drop the live session →
            // decode → resume, exactly what a worker checkpoint does.
            let live = session.take().expect("session is live");
            suspended_at_batch = live.batches();
            let frame = transport::to_bytes(&live.snapshot()).expect("session snapshots encode");
            snapshot_bytes = frame.len();
            drop(live);
            let snapshot: SessionSnapshot =
                transport::from_bytes(&frame).expect("snapshot frames decode");
            session = Some(
                CleaningSession::resume(config.clone(), rules.clone(), snapshot)
                    .expect("a snapshot that was taken resumes"),
            );
        }
    }
    let resumed = session.expect("session is live").finish();
    let reference = uninterrupted.finish();

    SuspendResumeProbe {
        batches: batches.len(),
        suspended_at_batch,
        snapshot_bytes,
        matches_uninterrupted: reports_identical(&resumed, &reference),
    }
}

/// The simulated-transport probe: the same HAI micro-batch stream driven
/// through a wire-backed session — every coordinator/worker exchange crosses
/// the binary codec and a hostile seeded network (delay, reordering,
/// duplication, loss, plus one scheduled worker crash recovered by
/// change-log replay) — asserting byte-identity with a single in-process
/// session and recording the transport tallies.
struct WireProbe {
    partitions: usize,
    merge_every: usize,
    batches: usize,
    counters: transport::NetCounters,
    restarts: usize,
    matches_single_session: bool,
}

fn run_wire_probe(scale: Scale) -> WireProbe {
    let workload = Workload::Hai;
    let dirty = workload.dirty(scale, 0.05, 0.5, 1).dirty;
    let rules = workload.rules();
    let config = workload.clean_config();
    let (partitions, merge_every) = (2usize, 1usize);

    let schedule = FaultSchedule {
        seed: 42,
        delay: (0, 4),
        reorder: 0.2,
        duplicate: 0.2,
        loss: 0.15,
        crashes: vec![WorkerCrash { at: 3, worker: 0 }],
        ..FaultSchedule::reliable()
    };

    let mut single = CleaningSession::new(config.clone(), dirty.schema().clone(), rules.clone())
        .expect("the smoke rules match the smoke schema");
    let mut wired = wire_session(
        config,
        dirty.schema().clone(),
        rules,
        partitions,
        merge_every,
        schedule,
    )
    .expect("the smoke rules match the smoke schema");

    let mut batches = 0usize;
    for batch in datagen::row_batches(&dirty, 8) {
        single
            .apply(ChangeSet::inserting(batch.clone()))
            .expect("rows match the schema");
        wired
            .apply(ChangeSet::inserting(batch))
            .expect("rows match the schema");
        batches += 1;
    }
    let counters = wired.backend_mut().counters();
    let restarts = wired.backend_mut().total_restarts();
    let wired = wired.finish();
    let single = single.finish();

    WireProbe {
        partitions,
        merge_every,
        batches,
        counters,
        restarts,
        matches_single_session: reports_identical(&wired, &single),
    }
}

/// Render the streaming section of `BENCH_smoke.json` (the value of the
/// `"streaming"` key, indented to nest under the top-level object).
fn render_streaming(
    stream: &StreamProbe,
    reclean: &RecleanProbe,
    mutation: &MutationProbe,
    distributed: &DistributedStreamProbe,
    suspend: &SuspendResumeProbe,
    wire: &WireProbe,
) -> String {
    let per_batch: String = stream
        .per_batch
        .iter()
        .map(|p| {
            format!(
                "      {{ \"rows\": {}, \"wall_seconds\": {:.6}, \"dirty_blocks\": {}, \
                 \"total_blocks\": {}, \"touched_groups\": {}, \"total_groups\": {} }}",
                p.rows,
                p.wall.as_secs_f64(),
                p.dirty_blocks,
                p.total_blocks,
                p.touched_groups,
                p.total_groups,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // Clamp the denominator so the ratio stays finite (bare `inf` would make
    // the JSON unparseable) even on a coarse monotonic clock.
    let speedup = reclean.full.as_secs_f64() / reclean.incremental.as_secs_f64().max(1e-9);
    let mutation_speedup =
        mutation.full.as_secs_f64() / mutation.incremental.as_secs_f64().max(1e-9);
    format!(
        concat!(
            "{{\n",
            "    \"hai_stream\": {{\n",
            "      \"batches\": {batches},\n",
            "      \"stream_total_seconds\": {stream_total:.6},\n",
            "      \"one_shot_seconds\": {one_shot:.6},\n",
            "      \"final_matches_one_shot\": {matches},\n",
            "      \"per_batch\": [\n",
            "{per_batch}\n",
            "      ]\n",
            "    }},\n",
            "    \"incremental_reclean\": {{\n",
            "      \"workload\": \"CAR\",\n",
            "      \"head_rows\": {head_rows},\n",
            "      \"tail_rows\": {tail_rows},\n",
            "      \"dirty_blocks\": {dirty_blocks},\n",
            "      \"total_blocks\": {total_blocks},\n",
            "      \"incremental_seconds\": {incremental:.6},\n",
            "      \"full_reclean_seconds\": {full:.6},\n",
            "      \"speedup\": {speedup:.3},\n",
            "      \"matches_full_reclean\": {matches_full}\n",
            "    }},\n",
            "    \"mutation\": {{\n",
            "      \"workload\": \"CAR\",\n",
            "      \"rows\": {mutation_rows},\n",
            "      \"deleted_rows\": {mutation_deleted},\n",
            "      \"updated_cells\": {mutation_updated},\n",
            "      \"dirty_blocks\": {mutation_dirty},\n",
            "      \"total_blocks\": {mutation_total},\n",
            "      \"incremental_seconds\": {mutation_incremental:.6},\n",
            "      \"full_reclean_seconds\": {mutation_full:.6},\n",
            "      \"speedup\": {mutation_speedup:.3},\n",
            "      \"matches_full_reclean\": {mutation_matches}\n",
            "    }},\n",
            "    \"distributed_stream\": {{\n",
            "      \"workload\": \"HAI\",\n",
            "      \"partitions\": {ds_partitions},\n",
            "      \"merge_every\": {ds_merge_every},\n",
            "      \"batches\": {ds_batches},\n",
            "      \"merge_rounds\": {ds_rounds},\n",
            "      \"weight_merge_seconds\": {ds_weight_merge:.6},\n",
            "      \"gather_seconds\": {ds_gather:.6},\n",
            "      \"per_round_merge_seconds\": {ds_per_round:.6},\n",
            "      \"shared_gammas\": {ds_shared},\n",
            "      \"partition_sizes\": {ds_sizes:?},\n",
            "      \"matches_single_session\": {ds_matches}\n",
            "    }},\n",
            "    \"suspend_resume\": {{\n",
            "      \"workload\": \"HAI\",\n",
            "      \"batches\": {sr_batches},\n",
            "      \"suspended_at_batch\": {sr_at},\n",
            "      \"snapshot_bytes\": {sr_bytes},\n",
            "      \"matches_uninterrupted\": {sr_matches}\n",
            "    }},\n",
            "    \"simulated_transport\": {{\n",
            "      \"workload\": \"HAI\",\n",
            "      \"partitions\": {w_partitions},\n",
            "      \"merge_every\": {w_merge_every},\n",
            "      \"batches\": {w_batches},\n",
            "      \"messages_sent\": {w_sent},\n",
            "      \"messages_delivered\": {w_delivered},\n",
            "      \"messages_dropped\": {w_dropped},\n",
            "      \"messages_duplicated\": {w_duplicated},\n",
            "      \"retransmits\": {w_retransmits},\n",
            "      \"bytes_sent\": {w_bytes},\n",
            "      \"worker_restarts\": {w_restarts},\n",
            "      \"matches_single_session\": {w_matches}\n",
            "    }}\n",
            "  }}",
        ),
        batches = stream.per_batch.len(),
        stream_total = stream.stream_total.as_secs_f64(),
        one_shot = stream.one_shot.as_secs_f64(),
        matches = stream.final_matches_one_shot,
        per_batch = per_batch,
        head_rows = reclean.head_rows,
        tail_rows = reclean.tail_rows,
        dirty_blocks = reclean.dirty_blocks,
        total_blocks = reclean.total_blocks,
        incremental = reclean.incremental.as_secs_f64(),
        full = reclean.full.as_secs_f64(),
        speedup = speedup,
        matches_full = reclean.matches_full,
        mutation_rows = mutation.rows,
        mutation_deleted = mutation.deleted_rows,
        mutation_updated = mutation.updated_cells,
        mutation_dirty = mutation.dirty_blocks,
        mutation_total = mutation.total_blocks,
        mutation_incremental = mutation.incremental.as_secs_f64(),
        mutation_full = mutation.full.as_secs_f64(),
        mutation_speedup = mutation_speedup,
        mutation_matches = mutation.matches_full,
        ds_partitions = distributed.partitions,
        ds_merge_every = distributed.merge_every,
        ds_batches = distributed.batches,
        ds_rounds = distributed.merge_rounds,
        ds_weight_merge = distributed.weight_merge.as_secs_f64(),
        ds_gather = distributed.gather.as_secs_f64(),
        ds_per_round = (distributed.weight_merge + distributed.gather).as_secs_f64()
            / distributed.merge_rounds.max(1) as f64,
        ds_shared = distributed.shared_gammas,
        ds_sizes = distributed.partition_sizes,
        ds_matches = distributed.matches_single_session,
        sr_batches = suspend.batches,
        sr_at = suspend.suspended_at_batch,
        sr_bytes = suspend.snapshot_bytes,
        sr_matches = suspend.matches_uninterrupted,
        w_partitions = wire.partitions,
        w_merge_every = wire.merge_every,
        w_batches = wire.batches,
        w_sent = wire.counters.sent,
        w_delivered = wire.counters.delivered,
        w_dropped = wire.counters.dropped,
        w_duplicated = wire.counters.duplicated,
        w_retransmits = wire.counters.retransmits,
        w_bytes = wire.counters.bytes_sent,
        w_restarts = wire.restarts,
        w_matches = wire.matches_single_session,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_emits_wall_time_json() {
        let files = run(Scale::Tiny);
        assert_eq!(files.len(), 1);
        let (name, json) = &files[0];
        assert_eq!(name, "BENCH_smoke.json");
        assert!(json.contains("\"end_to_end_seconds\""));
        assert!(json.contains("\"f1\""));
        // Memory-side stats of the interned representation.
        assert!(json.contains("\"pool_distinct_values\""));
        assert!(json.contains("\"distinct_per_attribute\""));
        assert!(json.contains("\"hit_rate\""));
        // The dedup stage is timed separately from FSCR now.
        assert!(json.contains("\"dedup\""));
        // The streaming section: per-batch points and the incremental
        // re-clean probe, both byte-identical to their batch counterparts.
        assert!(json.contains("\"streaming\""));
        assert!(json.contains("\"hai_stream\""));
        assert!(json.contains("\"incremental_reclean\""));
        assert!(json.contains("\"mutation\""));
        assert!(json.contains("\"deleted_rows\""));
        assert!(json.contains("\"updated_cells\""));
        assert!(json.contains("\"final_matches_one_shot\": true"));
        assert!(json.contains("\"matches_full_reclean\": true"));
        assert!(!json.contains("\"matches_full_reclean\": false"));
        // The distributed-streaming probe: per-round merge accounting and
        // byte-identity with the single-session stream.
        assert!(json.contains("\"distributed_stream\""));
        assert!(json.contains("\"per_round_merge_seconds\""));
        assert!(json.contains("\"matches_single_session\": true"));
        assert!(!json.contains("\"matches_single_session\": false"));
        // The suspend/resume probe: snapshot → codec → resume, identical.
        assert!(json.contains("\"suspend_resume\""));
        assert!(json.contains("\"suspended_at_batch\""));
        assert!(json.contains("\"snapshot_bytes\""));
        assert!(json.contains("\"matches_uninterrupted\": true"));
        // The simulated-transport probe and the codec-versioned header.
        assert!(json.contains(&format!("\"codec_version\": {CODEC_VERSION}")));
        assert!(json.contains("\"simulated_transport\""));
        assert!(json.contains("\"messages_sent\""));
        assert!(json.contains("\"worker_restarts\""));
        // Crude structural sanity: balanced braces, no trailing comma issues.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn incremental_reclean_skips_the_untouched_cfd_block() {
        let probe = run_incremental_reclean(Scale::Tiny);
        assert!(probe.tail_rows > 0);
        assert!(
            probe.dirty_blocks < probe.total_blocks,
            "the non-acura tail must leave the CFD block clean \
             ({}/{} dirty)",
            probe.dirty_blocks,
            probe.total_blocks
        );
        assert!(
            probe.matches_full,
            "incremental re-clean must match the batch re-run"
        );
    }

    #[test]
    fn distributed_stream_probe_matches_the_single_session() {
        let probe = run_distributed_stream(Scale::Tiny);
        assert_eq!(probe.partitions, 2);
        assert_eq!(probe.batches, 8);
        assert!(
            probe.merge_rounds >= 1 && probe.merge_rounds <= probe.batches,
            "cadence 1 merges at most once per batch: {}",
            probe.merge_rounds
        );
        assert_eq!(probe.partition_sizes.len(), 2);
        assert!(
            probe.matches_single_session,
            "distributed streaming must match the single-session stream byte for byte"
        );
    }

    #[test]
    fn wire_probe_survives_the_hostile_schedule_byte_identically() {
        let probe = run_wire_probe(Scale::Tiny);
        assert_eq!(probe.partitions, 2);
        assert_eq!(probe.batches, 8);
        let c = probe.counters;
        assert_eq!(
            c.sent - c.dropped + c.duplicated,
            c.delivered,
            "every non-dropped copy must land: {c:?}"
        );
        assert!(c.dropped > 0, "the hostile schedule never dropped");
        assert!(c.retransmits > 0, "loss never forced a retransmit");
        assert!(
            probe.restarts >= 1,
            "the scheduled crash never fired ({} restarts)",
            probe.restarts
        );
        assert!(
            probe.matches_single_session,
            "wire session must match the single session byte for byte"
        );
    }

    #[test]
    fn suspend_resume_probe_round_trips_byte_identically() {
        let probe = run_suspend_resume(Scale::Tiny);
        assert_eq!(probe.batches, 8);
        assert!(probe.suspended_at_batch > 0);
        assert!(probe.snapshot_bytes > 0);
        assert!(
            probe.matches_uninterrupted,
            "the resumed session must match the uninterrupted run byte for byte"
        );
    }

    #[test]
    fn mutation_probe_skips_the_untouched_cfd_block() {
        let probe = run_mutation_probe(Scale::Tiny);
        assert!(probe.deleted_rows > 0 && probe.updated_cells > 0);
        assert!(
            probe.dirty_blocks < probe.total_blocks,
            "non-acura deletes/updates must leave the CFD block clean \
             ({}/{} dirty)",
            probe.dirty_blocks,
            probe.total_blocks
        );
        assert!(
            probe.matches_full,
            "mutated session must match a batch clean of the net rows"
        );
    }
}
