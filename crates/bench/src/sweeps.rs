//! Parameter sweeps over MLNClean's components:
//!
//! * **threshold sweep** — Figures 8, 9, 10, 11: AGP / RSC / FSCR accuracy,
//!   the number of detected abnormal γs (#dag), and the overall F1 and
//!   runtime, as the AGP threshold τ varies;
//! * **error sweep** — Figures 12, 13, 14: the same component metrics as the
//!   injected error percentage varies at the per-dataset optimal τ.

use crate::common::{fmt3, fmt_ms, ResultTable, Scale, Workload};
use dataset::RepairEvaluation;
use mlnclean::{evaluate_agp, evaluate_fscr, evaluate_rsc, MlnClean};

/// All component metrics measured at one configuration point.
#[derive(Debug, Clone)]
pub struct ComponentPoint {
    /// AGP precision (Precision-A).
    pub precision_a: f64,
    /// AGP recall (Recall-A).
    pub recall_a: f64,
    /// Number of tuples inside detected abnormal groups (#dag).
    pub dag: usize,
    /// RSC precision (Precision-R).
    pub precision_r: f64,
    /// RSC recall (Recall-R).
    pub recall_r: f64,
    /// FSCR precision (Precision-F).
    pub precision_f: f64,
    /// FSCR recall (Recall-F).
    pub recall_f: f64,
    /// Overall F1 of the pipeline.
    pub f1: f64,
    /// Total pipeline runtime.
    pub runtime: std::time::Duration,
}

/// Clean one dirty workload with the given τ and measure every component.
pub fn measure_components(
    workload: Workload,
    scale: Scale,
    error_rate: f64,
    tau: usize,
    seed: u64,
) -> ComponentPoint {
    let dirty = workload.dirty(scale, error_rate, 0.5, seed);
    let rules = workload.rules();
    let cleaner = MlnClean::new(workload.clean_config().with_tau(tau));
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");

    let agp = evaluate_agp(&dirty, &rules, &outcome.agp);
    let rsc = evaluate_rsc(&dirty, &rules, &outcome.rsc);
    let fscr = evaluate_fscr(&dirty, &outcome.fscr);
    let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);

    ComponentPoint {
        precision_a: agp.precision(),
        recall_a: agp.recall(),
        dag: outcome.agp.detected_gamma_tuples(),
        precision_r: rsc.precision(),
        recall_r: rsc.recall(),
        precision_f: fscr.precision(),
        recall_f: fscr.recall(),
        f1: report.f1(),
        runtime: outcome.timings.total(),
    }
}

/// The τ values swept per workload (the paper sweeps 0–5 on CAR and 0–50 on
/// HAI; the synthetic datasets are smaller, so the interesting range is
/// correspondingly smaller).
pub fn tau_values(workload: Workload) -> Vec<usize> {
    match workload {
        Workload::Car => vec![0, 1, 2, 3, 4, 5],
        Workload::Hai | Workload::Tpch => vec![0, 1, 2, 4, 8, 16],
    }
}

/// Figures 8–11: sweep τ at a fixed 5% error rate.
pub fn run_threshold(scale: Scale) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for workload in [Workload::Car, Workload::Hai] {
        let mut table = ResultTable::new(
            &format!(
                "Figures 8-11 ({}) — component accuracy, #dag, F1 and runtime vs threshold τ",
                workload.name()
            ),
            &[
                "tau",
                "Prec-A",
                "Rec-A",
                "#dag",
                "Prec-R",
                "Rec-R",
                "Prec-F",
                "Rec-F",
                "F1",
                "runtime_ms",
            ],
        );
        for (i, tau) in tau_values(workload).into_iter().enumerate() {
            let p = measure_components(workload, scale, 0.05, tau, 300 + i as u64);
            table.push_row(vec![
                tau.to_string(),
                fmt3(p.precision_a),
                fmt3(p.recall_a),
                p.dag.to_string(),
                fmt3(p.precision_r),
                fmt3(p.recall_r),
                fmt3(p.precision_f),
                fmt3(p.recall_f),
                fmt3(p.f1),
                fmt_ms(p.runtime),
            ]);
        }
        println!("{}", table.to_text());
        files.push((
            format!("fig8_11_threshold_{}.csv", workload.name().to_lowercase()),
            table.to_csv(),
        ));
    }
    files
}

/// Figures 12–14: sweep the error percentage at the per-dataset optimal τ.
pub fn run_error(scale: Scale) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for workload in [Workload::Car, Workload::Hai] {
        let mut table = ResultTable::new(
            &format!(
                "Figures 12-14 ({}) — component accuracy vs error percentage (τ={})",
                workload.name(),
                workload.default_tau()
            ),
            &[
                "error%", "Prec-A", "Rec-A", "#dag", "Prec-R", "Rec-R", "Prec-F", "Rec-F", "F1",
            ],
        );
        for (i, &rate) in crate::fig6::ERROR_RATES.iter().enumerate() {
            let p = measure_components(
                workload,
                scale,
                rate,
                workload.default_tau(),
                400 + i as u64,
            );
            table.push_row(vec![
                format!("{:.0}%", rate * 100.0),
                fmt3(p.precision_a),
                fmt3(p.recall_a),
                p.dag.to_string(),
                fmt3(p.precision_r),
                fmt3(p.recall_r),
                fmt3(p.precision_f),
                fmt3(p.recall_f),
                fmt3(p.f1),
            ]);
        }
        println!("{}", table.to_text());
        files.push((
            format!("fig12_14_error_{}.csv", workload.name().to_lowercase()),
            table.to_csv(),
        ));
    }
    files
}
