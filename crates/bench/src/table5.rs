//! Table 5: F1-score of MLNClean under different distance metrics
//! (Levenshtein vs. cosine; we additionally report the other metrics the
//! `distance` crate provides).

use crate::common::{fmt3, ResultTable, Scale, Workload};
use dataset::RepairEvaluation;
use distance::Metric;
use mlnclean::MlnClean;

/// Measure MLNClean's F1 under one distance metric.
pub fn f1_with_metric(workload: Workload, scale: Scale, metric: Metric, seed: u64) -> f64 {
    let dirty = workload.dirty(scale, 0.05, 0.5, seed);
    let rules = workload.rules();
    let cleaner = MlnClean::new(workload.clean_config().with_metric(metric));
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");
    RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1()
}

/// Run Table 5: both datasets × the paper's two metrics (plus the extras).
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let metrics = [
        Metric::Levenshtein,
        Metric::Cosine,
        Metric::DamerauLevenshtein,
        Metric::Jaccard,
        Metric::JaroWinkler,
    ];
    let mut table = ResultTable::new(
        "Table 5 — F1-scores under different distance metrics",
        &[
            "dataset",
            "levenshtein",
            "cosine",
            "damerau-levenshtein",
            "jaccard",
            "jaro-winkler",
        ],
    );
    for workload in [Workload::Car, Workload::Hai] {
        let mut row = vec![workload.name().to_string()];
        for metric in metrics {
            row.push(fmt3(f1_with_metric(workload, scale, metric, 500)));
        }
        table.push_row(row);
    }
    println!("{}", table.to_text());
    vec![("table5_distance_metrics.csv".to_string(), table.to_csv())]
}
