//! Table 6: total runtime of distributed MLNClean as the number of workers
//! grows (2 → 10) on the TPC-H workload.

use crate::common::{fmt3, fmt_ms, ResultTable, Scale, Workload};
use dataset::RepairEvaluation;
use distributed::DistributedMlnClean;

/// Worker counts of Table 6.
pub const WORKER_COUNTS: [usize; 5] = [2, 4, 6, 8, 10];

/// One measured point of the worker sweep.
#[derive(Debug, Clone)]
pub struct WorkerPoint {
    /// Number of workers.
    pub workers: usize,
    /// Total wall-clock runtime.
    pub runtime: std::time::Duration,
    /// F1 (the paper notes it barely fluctuates with the worker count).
    pub f1: f64,
}

/// Measure one worker count.
pub fn measure_workers(scale: Scale, workers: usize, seed: u64) -> WorkerPoint {
    let workload = Workload::Tpch;
    let dirty = workload.dirty(scale, 0.05, 0.5, seed);
    let rules = workload.rules();
    let cleaner = DistributedMlnClean::new(workers, workload.clean_config());
    let outcome = cleaner
        .clean(&dirty.dirty, &rules)
        .expect("rules match the schema");
    let f1 = RepairEvaluation::evaluate(&dirty, &outcome.repaired).f1();
    WorkerPoint {
        workers,
        runtime: outcome.timings.total(),
        f1,
    }
}

/// Run Table 6.
pub fn run(scale: Scale) -> Vec<(String, String)> {
    let mut table = ResultTable::new(
        "Table 6 — distributed MLNClean runtime vs number of workers (TPC-H)",
        &["workers", "runtime_ms", "speedup_vs_2", "F1"],
    );
    let mut baseline = None;
    for &workers in &WORKER_COUNTS {
        let p = measure_workers(scale, workers, 700);
        let base = *baseline.get_or_insert(p.runtime.as_secs_f64());
        table.push_row(vec![
            workers.to_string(),
            fmt_ms(p.runtime),
            fmt3(base / p.runtime.as_secs_f64().max(1e-9)),
            fmt3(p.f1),
        ]);
    }
    println!("{}", table.to_text());
    vec![("table6_workers.csv".to_string(), table.to_csv())]
}
