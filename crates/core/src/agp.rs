//! AGP — Abnormal Group Processing (Section 5.1.1).
//!
//! A group whose tuples were placed there because of an error in the rule's
//! *reason part* (e.g. the typo "DOTH" instead of "DOTHAN") erroneously forms
//! its own group.  AGP identifies such groups with a simple size heuristic —
//! a group related to at most τ tuples is considered abnormal — and merges
//! each abnormal group into its nearest *normal* group within the same block,
//! where the distance between two groups is the distance between their
//! dominant γs (the γ related to the most tuples).
//!
//! Distances run through a per-block [`DistanceCache`] keyed on interned
//! value pairs, so each distinct value pair pays the string metric exactly
//! once per block no matter how many group comparisons revisit it.

use crate::cache::{CacheStats, DistanceCache};
use crate::index::{Block, Group, MlnIndex};
use dataset::{TupleId, ValueId, ValuePool};
use distance::Metric;
use rayon::prelude::*;
use rules::RuleId;
use serde::{Deserialize, Serialize};

/// One merge performed (or attempted) by AGP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgpMerge {
    /// Block in which the merge happened.
    pub rule: RuleId,
    /// Reason-part key of the abnormal group (resolved strings).
    pub abnormal_key: Vec<String>,
    /// Reason-part key of the normal group it was merged into, or `None` if
    /// the block had no normal group to merge into.
    pub target_key: Option<Vec<String>>,
    /// Tuples carried by the abnormal group.
    pub tuples: Vec<TupleId>,
    /// Number of γs the abnormal group contained.
    pub gamma_count: usize,
}

/// The full AGP record of one cleaning run, used both for reporting and for
/// the Precision-A / Recall-A evaluation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AgpRecord {
    /// Every detected abnormal group, in processing order.
    pub merges: Vec<AgpMerge>,
    /// Distance-cache counters accumulated over all blocks.
    pub cache: CacheStats,
}

/// Equality compares the *decisions* (the merges), not the distance-cache
/// counters: the incremental [`crate::CleaningSession`] keeps a persistent
/// per-block cache across refreshes, so its hit/miss split legitimately
/// differs from a cold batch run even when the merges are byte-identical.
impl PartialEq for AgpRecord {
    fn eq(&self, other: &Self) -> bool {
        self.merges == other.merges
    }
}

impl AgpRecord {
    /// Number of detected abnormal groups.
    pub fn detected_count(&self) -> usize {
        self.merges.len()
    }

    /// Total number of tuples related to γs inside detected abnormal groups —
    /// the `#dag` series of Figure 8.
    pub fn detected_gamma_tuples(&self) -> usize {
        self.merges.iter().map(|m| m.tuples.len()).sum()
    }
}

/// The AGP strategy.
#[derive(Debug, Clone)]
pub struct AbnormalGroupProcessor {
    /// Size threshold τ: groups with at most this many related tuples are
    /// treated as abnormal.
    pub tau: usize,
    /// Distance metric for the nearest-normal-group search.
    pub metric: Metric,
    /// Optional merge guard: skip the merge when the normalized distance to
    /// the nearest normal group exceeds this bound (see
    /// [`crate::CleanConfig::agp_distance_guard`]).
    pub distance_guard: Option<f64>,
}

impl AbnormalGroupProcessor {
    /// Create an AGP processor with the paper's always-merge behaviour.
    pub fn new(tau: usize, metric: Metric) -> Self {
        AbnormalGroupProcessor {
            tau,
            metric,
            distance_guard: None,
        }
    }

    /// Enable the merge distance guard.
    pub fn with_distance_guard(mut self, guard: f64) -> Self {
        self.distance_guard = Some(guard);
        self
    }

    /// Process every block of the index in place and return the merge record.
    ///
    /// Blocks are independent (one per rule), so they are processed in
    /// parallel; per-block results are reassembled in block order, making the
    /// outcome identical to [`AbnormalGroupProcessor::process_serial`].
    pub fn process(&self, index: &mut MlnIndex) -> AgpRecord {
        let (blocks, pool) = index.split_mut();
        let taken = std::mem::take(blocks);
        let processed: Vec<(Block, AgpRecord)> = taken
            .into_par_iter()
            .map(|mut block| {
                let record = self.process_block(&mut block, pool);
                (block, record)
            })
            .collect();
        let mut record = AgpRecord::default();
        for (block, block_record) in processed {
            blocks.push(block);
            record.merges.extend(block_record.merges);
            record.cache.absorb(block_record.cache);
        }
        record
    }

    /// Serial reference implementation of [`AbnormalGroupProcessor::process`],
    /// kept for the parallel-equivalence tests.
    pub fn process_serial(&self, index: &mut MlnIndex) -> AgpRecord {
        let (blocks, pool) = index.split_mut();
        let mut record = AgpRecord::default();
        for block in blocks.iter_mut() {
            let block_record = self.process_block(block, pool);
            record.merges.extend(block_record.merges);
            record.cache.absorb(block_record.cache);
        }
        record
    }

    /// Process a single block: detect abnormal groups (size ≤ τ) and merge
    /// each into its nearest normal group.  This is the per-block unit both
    /// the whole-index paths above and the incremental
    /// [`crate::CleaningSession`] compose, expressed as plan + apply so the
    /// session can inspect the plan (to scope its refresh to affected
    /// groups) before mutating anything.
    pub(crate) fn process_block(&self, block: &mut Block, pool: &ValuePool) -> AgpRecord {
        // One distance memo per block: every group comparison below shares it.
        let mut cache = DistanceCache::new(self.metric);
        let plan = self.plan_block(block, pool, &mut cache);
        Self::apply_plan(block, &plan);
        let mut record = plan.record;
        record.cache.absorb(cache.stats());
        record
    }

    /// Decide every merge of one block against the *pristine* pre-merge
    /// snapshot, without mutating the block.
    ///
    /// Because each abnormal group's nearest-normal search sees the same
    /// snapshot (the original dominant γ of every normal group), the
    /// decisions are independent of the order in which merges are later
    /// applied — the property the group-scoped incremental refresh relies on
    /// to recompute a single group without replaying its siblings.
    pub(crate) fn plan_block(
        &self,
        block: &Block,
        pool: &ValuePool,
        cache: &mut DistanceCache,
    ) -> AgpPlan {
        // Partition group indices into abnormal and normal by the size test.
        let abnormal: Vec<usize> = block
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.tuple_count() <= self.tau)
            .map(|(i, _)| i)
            .collect();
        let mut plan = AgpPlan {
            abnormal,
            targets: Vec::new(),
            record: AgpRecord::default(),
        };
        if plan.abnormal.is_empty() {
            return plan;
        }
        // Dominant-γ value ids of every *normal* group, computed once from
        // the snapshot: only normal groups are valid merge targets (abnormal
        // groups never merge into each other), and computing them up front
        // keeps the nearest-normal search below from re-deriving (and
        // re-allocating) them per abnormal × candidate pair.
        // `plan.abnormal` is ascending by construction, so binary search
        // works for the membership test.
        let normal_ids: Vec<Option<Vec<ValueId>>> = block
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                if plan.abnormal.binary_search(&i).is_ok() || g.gammas.is_empty() {
                    None
                } else {
                    Some(g.dominant_gamma().expect("normal group has γs").value_ids())
                }
            })
            .collect();

        for &ai in &plan.abnormal {
            let group = &block.groups[ai];
            // Nearest normal group by dominant-γ distance, optionally subject
            // to the normalized-distance merge guard.
            let target_idx: Option<usize> = match group.dominant_gamma() {
                None => None,
                Some(dominant) => {
                    let dominant_ids = dominant.value_ids();
                    let mut best: Option<(usize, f64)> = None;
                    for (ci, candidate_ids) in normal_ids.iter().enumerate() {
                        let Some(candidate_ids) = candidate_ids else {
                            continue;
                        };
                        let d = cache.record_distance(pool, &dominant_ids, candidate_ids);
                        // Strict `<` so ties keep the *first* minimal
                        // candidate, matching the historical
                        // `Iterator::min_by` tie-breaking exactly.
                        let closer = match &best {
                            None => true,
                            Some((_, best_d)) => d < *best_d,
                        };
                        if closer {
                            best = Some((ci, d));
                        }
                    }
                    best.map(|(ci, _)| ci)
                        .filter(|&ci| match self.distance_guard {
                            None => true,
                            Some(guard) => {
                                let other_ids = normal_ids[ci]
                                    .as_deref()
                                    .expect("targets come from the normal set");
                                cache.normalized_record_distance(pool, &dominant_ids, other_ids)
                                    <= guard
                            }
                        })
                }
            };

            plan.record.merges.push(AgpMerge {
                rule: block.rule,
                abnormal_key: group
                    .resolve_key(pool)
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
                target_key: target_idx.map(|ci| {
                    block.groups[ci]
                        .key
                        .iter()
                        .map(|&v| pool.resolve(v).to_string())
                        .collect()
                }),
                tuples: group.all_tuples(),
                gamma_count: group.gamma_count(),
            });
            plan.targets.push(target_idx);
        }
        plan
    }

    /// Execute a plan produced by [`AbnormalGroupProcessor::plan_block`] on
    /// the same block it was planned against.
    ///
    /// The resulting group layout matches the historical in-place merge loop
    /// byte for byte: surviving normal groups keep their relative order,
    /// merged-in γs land in abnormal order (extending value-identical γs,
    /// appending new ones), and abnormal groups without a target are put
    /// back at the end of the block.
    pub(crate) fn apply_plan(block: &mut Block, plan: &AgpPlan) {
        if plan.abnormal.is_empty() {
            return;
        }
        let mut slots: Vec<Option<Group>> = std::mem::take(&mut block.groups)
            .into_iter()
            .map(Some)
            .collect();
        let mut unmerged: Vec<Group> = Vec::new();
        for (&ai, &target) in plan.abnormal.iter().zip(&plan.targets) {
            let group = slots[ai].take().expect("abnormal indices are distinct");
            match target {
                Some(ti) => {
                    let target = slots[ti]
                        .as_mut()
                        .expect("targets are normal groups, never taken");
                    // Move the abnormal group's γs into the target group,
                    // merging identical γs (same full value vector — an id
                    // comparison).
                    for gamma in group.gammas {
                        if let Some(existing) = target.gammas.iter_mut().find(|g| {
                            g.reason_values == gamma.reason_values
                                && g.result_values == gamma.result_values
                        }) {
                            existing.tuples.extend(gamma.tuples);
                        } else {
                            target.gammas.push(gamma);
                        }
                    }
                }
                // No normal group exists in this block (e.g. every group is
                // tiny); the group goes back untouched, after the survivors.
                None => unmerged.push(group),
            }
        }
        block.groups = slots.into_iter().flatten().chain(unmerged).collect();
    }
}

/// The decisions AGP would make for one block, computed against the pristine
/// pre-merge snapshot by [`AbnormalGroupProcessor::plan_block`].
#[derive(Debug, Clone)]
pub(crate) struct AgpPlan {
    /// Indices (ascending, into the snapshot's group list) of the abnormal
    /// groups.
    pub(crate) abnormal: Vec<usize>,
    /// For each abnormal group (in `abnormal` order), the snapshot index of
    /// the normal group it merges into — `None` when the block has no
    /// normal group or the distance guard vetoed the merge.
    pub(crate) targets: Vec<Option<usize>>,
    /// The [`AgpMerge`] entries describing the planned merges (cache
    /// counters are left to the caller, who owns the [`DistanceCache`]).
    pub(crate) record: AgpRecord,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MlnIndex;
    use dataset::sample_hospital_dataset;
    use rules::sample_hospital_rules;

    fn sample_index() -> MlnIndex {
        MlnIndex::build(&sample_hospital_dataset(), &sample_hospital_rules()).unwrap()
    }

    #[test]
    fn paper_example_merges_g12_g22_g31() {
        // With τ = 1 the paper identifies G12 (DOTH), G22 (PN 2567638410) and
        // G31 (ELIZA/DOTHAN) as abnormal and merges them into G11, G23, G32.
        let mut index = sample_index();
        let agp = AbnormalGroupProcessor::new(1, Metric::Levenshtein);
        let record = agp.process(&mut index);

        assert_eq!(record.detected_count(), 3);
        assert_eq!(
            record.detected_gamma_tuples(),
            3,
            "each abnormal group held one tuple"
        );

        // B1: DOTH merged into DOTHAN.
        let merge_b1 = record.merges.iter().find(|m| m.rule == RuleId(0)).unwrap();
        assert_eq!(merge_b1.abnormal_key, vec!["DOTH"]);
        assert_eq!(merge_b1.target_key, Some(vec!["DOTHAN".to_string()]));

        // B2: the lone phone number merged into the 2567688400 group (closest
        // by Levenshtein distance).
        let merge_b2 = record.merges.iter().find(|m| m.rule == RuleId(1)).unwrap();
        assert_eq!(merge_b2.abnormal_key, vec!["2567638410"]);
        assert_eq!(merge_b2.target_key, Some(vec!["2567688400".to_string()]));

        // B3: (ELIZA, DOTHAN) merged into (ELIZA, BOAZ).
        let merge_b3 = record.merges.iter().find(|m| m.rule == RuleId(2)).unwrap();
        assert_eq!(merge_b3.abnormal_key, vec!["ELIZA", "DOTHAN"]);
        assert_eq!(
            merge_b3.target_key,
            Some(vec!["ELIZA".to_string(), "BOAZ".to_string()])
        );

        // After AGP, block B1 has two groups left (DOTHAN and BOAZ).
        assert_eq!(index.block(RuleId(0)).group_count(), 2);
    }

    #[test]
    fn tau_zero_detects_nothing() {
        let mut index = sample_index();
        let agp = AbnormalGroupProcessor::new(0, Metric::Levenshtein);
        let record = agp.process(&mut index);
        assert_eq!(record.detected_count(), 0);
        assert_eq!(index.block(RuleId(0)).group_count(), 3);
    }

    #[test]
    fn huge_tau_leaves_groups_unmerged_when_no_normal_group_exists() {
        let mut index = sample_index();
        let agp = AbnormalGroupProcessor::new(100, Metric::Levenshtein);
        let record = agp.process(&mut index);
        // Every group is "abnormal" but no normal group exists, so nothing
        // can be merged and the index keeps all groups.
        assert!(record.merges.iter().all(|m| m.target_key.is_none()));
        assert_eq!(index.block(RuleId(0)).group_count(), 3);
    }

    #[test]
    fn merging_combines_identical_gammas() {
        // Build a situation where the abnormal group's γ is value-identical
        // to one already in the target group: supports must be combined, not
        // duplicated.
        use dataset::{Dataset, Schema};
        let mut ds = Dataset::new(Schema::new(&["CT", "ST"]));
        for _ in 0..5 {
            ds.push_row(vec!["DOTHAN".into(), "AL".into()]).unwrap();
        }
        // One tuple whose CT got replaced with a *valid but wrong* city that
        // is closest to DOTHAN, keeping the same ST.
        ds.push_row(vec!["DOTHA".into(), "AL".into()]).unwrap();
        let rules = rules::parse_rules("FD: CT -> ST").unwrap();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        let agp = AbnormalGroupProcessor::new(1, Metric::Levenshtein);
        agp.process(&mut index);
        let block = index.block(RuleId(0));
        assert_eq!(block.group_count(), 1);
        let group = &block.groups[0];
        // The merged group keeps two γs (DOTHAN/AL and DOTHA/AL) because their
        // full values differ; total tuples = 6.
        assert_eq!(group.tuple_count(), 6);
        assert_eq!(group.gamma_count(), 2);
    }

    #[test]
    fn parallel_and_serial_processing_are_identical() {
        for tau in [0usize, 1, 3, 100] {
            let mut par_index = sample_index();
            let mut ser_index = sample_index();
            let agp = AbnormalGroupProcessor::new(tau, Metric::Levenshtein);
            let par_record = agp.process(&mut par_index);
            let ser_record = agp.process_serial(&mut ser_index);
            assert_eq!(par_record, ser_record, "AGP records diverged at tau={tau}");
            assert_eq!(
                format!("{par_index:?}"),
                format!("{ser_index:?}"),
                "AGP index state diverged at tau={tau}"
            );
        }
    }

    #[test]
    fn cache_counters_are_recorded() {
        let mut index = sample_index();
        let record = AbnormalGroupProcessor::new(1, Metric::Levenshtein).process(&mut index);
        let stats = record.cache;
        assert!(
            stats.misses > 0,
            "AGP on the sample must compute some distances"
        );
        assert!((0.0..=1.0).contains(&stats.hit_rate()));
    }

    #[test]
    fn higher_tau_detects_more_groups() {
        let metric = Metric::Levenshtein;
        let mut small = sample_index();
        let mut large = sample_index();
        let detected_small = AbnormalGroupProcessor::new(1, metric)
            .process(&mut small)
            .detected_count();
        let detected_large = AbnormalGroupProcessor::new(3, metric)
            .process(&mut large)
            .detected_count();
        assert!(detected_large >= detected_small);
    }
}
