//! Distance memoisation keyed on interned value pairs.
//!
//! AGP and RSC compare γs through string distances.  Within a block the same
//! *value pair* recurs constantly — every abnormal group is compared against
//! every normal group, and RSC's normalization constant revisits all γ pairs
//! of a group — while the number of *distinct* value pairs is small.  Keying
//! the metric on `(ValueId, ValueId)` (symmetric, order-normalized) makes
//! each distinct pair pay the metric exactly once per cache lifetime; the
//! pipeline instantiates one cache per block so the parallel and serial paths
//! report identical statistics.

use dataset::{ValueId, ValuePool};
use distance::{DistanceMetric, Metric};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hit/miss counters of a [`DistanceCache`], aggregated into the stage
/// records so benchmarks can report cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Pair lookups answered from the cache (including trivial equal pairs).
    pub hits: u64,
    /// Pair lookups that had to run the metric.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served without running the metric (`1.0` when no
    /// lookup happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another counter into this one.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A symmetric `(ValueId, ValueId) → (raw, normalized)` distance memo.
#[derive(Debug, Clone)]
pub struct DistanceCache {
    metric: Metric,
    pairs: HashMap<(ValueId, ValueId), (f64, f64)>,
    stats: CacheStats,
}

impl DistanceCache {
    /// Create an empty cache for `metric`.
    pub fn new(metric: Metric) -> Self {
        DistanceCache {
            metric,
            pairs: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The metric this cache memoises.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct value pairs memoised so far (the cache's resident
    /// footprint, used by the session's memory-budget accounting).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the memo holds no pairs yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Raw and normalized distance between two interned values.
    fn pair(&mut self, pool: &ValuePool, a: ValueId, b: ValueId) -> (f64, f64) {
        if a == b {
            self.stats.hits += 1;
            return (0.0, 0.0);
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&cached) = self.pairs.get(&key) {
            self.stats.hits += 1;
            return cached;
        }
        self.stats.misses += 1;
        let sa = pool.resolve(a);
        let sb = pool.resolve(b);
        let computed = match self.metric {
            // For the edit distances the normalized form is raw / max-length:
            // derive it instead of running the dynamic program twice.
            Metric::Levenshtein | Metric::DamerauLevenshtein => {
                let raw = self.metric.distance(sa, sb);
                let max_len = sa.chars().count().max(sb.chars().count());
                let normalized = if max_len == 0 {
                    0.0
                } else {
                    raw / max_len as f64
                };
                (raw, normalized)
            }
            // The remaining metrics are already normalized; raw == normalized.
            Metric::Cosine | Metric::Jaccard | Metric::JaroWinkler => {
                let d = self.metric.distance(sa, sb);
                (d, d)
            }
        };
        self.pairs.insert(key, computed);
        computed
    }

    /// Raw distance between two interned values.
    pub fn distance(&mut self, pool: &ValuePool, a: ValueId, b: ValueId) -> f64 {
        self.pair(pool, a, b).0
    }

    /// Normalized (`[0, 1]`) distance between two interned values.
    pub fn normalized_distance(&mut self, pool: &ValuePool, a: ValueId, b: ValueId) -> f64 {
        self.pair(pool, a, b).1
    }

    /// Record distance between two equal-arity id vectors: the attribute-wise
    /// raw distances summed (the γ-to-γ distance of AGP/RSC).
    pub fn record_distance(&mut self, pool: &ValuePool, a: &[ValueId], b: &[ValueId]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "records must have the same arity");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.distance(pool, x, y))
            .sum()
    }

    /// Normalized record distance in `[0, 1]`: the attribute-wise normalized
    /// distances averaged.  Returns `0.0` for two empty records.
    pub fn normalized_record_distance(
        &mut self,
        pool: &ValuePool,
        a: &[ValueId],
        b: &[ValueId],
    ) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "records must have the same arity");
        if a.is_empty() {
            return 0.0;
        }
        let total: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| self.normalized_distance(pool, x, y))
            .sum();
        total / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distance::{levenshtein, normalized_levenshtein};

    fn pool() -> ValuePool {
        let mut p = ValuePool::new();
        p.intern_all(["DOTHAN", "DOTH", "BOAZ", "AL", "AK", ""]);
        p
    }

    #[test]
    fn matches_direct_metric_for_every_metric() {
        use distance::DistanceMetric;
        // Pins the cache's derived normalization to Metric::normalized_distance
        // for ALL metrics, so a future change to either side cannot silently
        // diverge the cached path AGP/RSC use.
        let pool = pool();
        for metric in Metric::ALL {
            let mut cache = DistanceCache::new(metric);
            for (a, sa) in pool.iter().collect::<Vec<_>>() {
                for (b, sb) in pool.iter().collect::<Vec<_>>() {
                    assert_eq!(
                        cache.distance(&pool, a, b),
                        metric.distance(sa, sb),
                        "{metric:?} raw distance diverged for {sa:?} vs {sb:?}"
                    );
                    assert!(
                        (cache.normalized_distance(&pool, a, b)
                            - metric.normalized_distance(sa, sb))
                        .abs()
                            < 1e-12,
                        "{metric:?} normalized distance diverged for {sa:?} vs {sb:?}"
                    );
                }
            }
        }
        // Spot-check the Levenshtein helpers directly too.
        let mut cache = DistanceCache::new(Metric::Levenshtein);
        let a = pool.lookup("DOTHAN").unwrap();
        let b = pool.lookup("DOTH").unwrap();
        assert_eq!(
            cache.distance(&pool, a, b),
            levenshtein("DOTHAN", "DOTH") as f64
        );
        assert!(
            (cache.normalized_distance(&pool, a, b) - normalized_levenshtein("DOTHAN", "DOTH"))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn each_distinct_pair_misses_once() {
        let pool = pool();
        let mut cache = DistanceCache::new(Metric::Levenshtein);
        let a = pool.lookup("DOTHAN").unwrap();
        let b = pool.lookup("DOTH").unwrap();
        cache.distance(&pool, a, b);
        cache.distance(&pool, b, a); // symmetric: served from cache
        cache.normalized_distance(&pool, a, b);
        cache.distance(&pool, a, a); // equal: trivial hit
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn record_distances_match_unmemoised_forms() {
        let pool = pool();
        let mut cache = DistanceCache::new(Metric::Levenshtein);
        let ids: Vec<ValueId> = ["BOAZ", "AL"]
            .iter()
            .map(|v| pool.lookup(v).unwrap())
            .collect();
        let other: Vec<ValueId> = ["DOTHAN", "AK"]
            .iter()
            .map(|v| pool.lookup(v).unwrap())
            .collect();
        let raw = cache.record_distance(&pool, &ids, &other);
        assert_eq!(
            raw,
            (levenshtein("BOAZ", "DOTHAN") + levenshtein("AL", "AK")) as f64
        );
        let norm = cache.normalized_record_distance(&pool, &ids, &other);
        let expected =
            (normalized_levenshtein("BOAZ", "DOTHAN") + normalized_levenshtein("AL", "AK")) / 2.0;
        assert!((norm - expected).abs() < 1e-12);
        assert_eq!(cache.normalized_record_distance(&pool, &[], &[]), 0.0);
    }

    #[test]
    fn empty_stats_hit_rate_is_one() {
        let cache = DistanceCache::new(Metric::Levenshtein);
        assert_eq!(cache.stats().hit_rate(), 1.0);
        let mut s = CacheStats::default();
        s.absorb(CacheStats { hits: 3, misses: 1 });
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }
}
