//! Typed mutation streams: the one ingest vocabulary of the incremental
//! engine.
//!
//! A [`ChangeSet`] is an ordered list of [`Mutation`]s — row insertions, cell
//! updates and row deletions — applied atomically by
//! [`crate::CleaningSession::apply`].  Mutations execute **in order**, and
//! tuple ids are interpreted against the session state *at the point of the
//! sequence where the mutation applies*: a `Delete(t)` shifts every later row
//! down by one, so a subsequent mutation naming `TupleId(t)` addresses the
//! row that followed the deleted one.  This is exactly the numbering a batch
//! rebuild over the surviving rows would assign, which is what makes the
//! session byte-identical to a one-shot clean of the net data.

use dataset::{AttrId, TupleId};
use serde::{Deserialize, Serialize};

/// One typed mutation of the session's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Append a batch of string rows (each row in schema order).
    Insert(Vec<Vec<String>>),
    /// Overwrite one cell of an existing tuple with a new string value.
    Update(TupleId, AttrId, String),
    /// Remove one tuple; all later tuple ids shift down by one.
    Delete(TupleId),
}

/// An ordered, atomically-applied sequence of [`Mutation`]s.
///
/// Build one with the fluent methods and hand it to
/// [`crate::CleaningSession::apply`]:
///
/// ```
/// use dataset::{AttrId, TupleId};
/// use mlnclean::ChangeSet;
///
/// let changes = ChangeSet::new()
///     .insert(vec![vec!["ELIZA".into(), "BOAZ".into()]])
///     .update(TupleId(0), AttrId(1), "DOTHAN")
///     .delete(TupleId(0));
/// assert_eq!(changes.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChangeSet {
    mutations: Vec<Mutation>,
}

impl ChangeSet {
    /// An empty change set.
    pub fn new() -> Self {
        ChangeSet::default()
    }

    /// A change set holding one batch insertion — the shape
    /// [`crate::CleaningSession::ingest_batch`] desugars to.
    pub fn inserting(rows: Vec<Vec<String>>) -> Self {
        ChangeSet::new().insert(rows)
    }

    /// Append a batch insertion.
    pub fn insert(mut self, rows: Vec<Vec<String>>) -> Self {
        self.mutations.push(Mutation::Insert(rows));
        self
    }

    /// Append a single-row insertion.
    pub fn insert_row(self, row: Vec<String>) -> Self {
        self.insert(vec![row])
    }

    /// Append a cell update.
    pub fn update(mut self, tuple: TupleId, attr: AttrId, value: impl Into<String>) -> Self {
        self.mutations
            .push(Mutation::Update(tuple, attr, value.into()));
        self
    }

    /// Append a row deletion.
    pub fn delete(mut self, tuple: TupleId) -> Self {
        self.mutations.push(Mutation::Delete(tuple));
        self
    }

    /// Append an arbitrary mutation.
    pub fn push(&mut self, mutation: Mutation) {
        self.mutations.push(mutation);
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Whether the change set holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// Iterate over the mutations in application order.
    pub fn iter(&self) -> impl Iterator<Item = &Mutation> {
        self.mutations.iter()
    }

    /// Consume the change set into its mutations.
    pub fn into_mutations(self) -> Vec<Mutation> {
        self.mutations
    }
}

impl FromIterator<Mutation> for ChangeSet {
    fn from_iter<I: IntoIterator<Item = Mutation>>(iter: I) -> Self {
        ChangeSet {
            mutations: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for ChangeSet {
    type Item = Mutation;
    type IntoIter = std::vec::IntoIter<Mutation>;

    fn into_iter(self) -> Self::IntoIter {
        self.mutations.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_construction_preserves_order() {
        let cs = ChangeSet::new()
            .insert_row(vec!["a".into()])
            .update(TupleId(0), AttrId(0), "b")
            .delete(TupleId(0));
        let kinds: Vec<&'static str> = cs
            .iter()
            .map(|m| match m {
                Mutation::Insert(_) => "insert",
                Mutation::Update(..) => "update",
                Mutation::Delete(_) => "delete",
            })
            .collect();
        assert_eq!(kinds, vec!["insert", "update", "delete"]);
        assert!(!cs.is_empty());
        assert_eq!(cs.into_mutations().len(), 3);
    }

    #[test]
    fn inserting_is_one_insert_mutation() {
        let cs = ChangeSet::inserting(vec![vec!["x".into()], vec!["y".into()]]);
        assert_eq!(cs.len(), 1);
        assert!(matches!(cs.iter().next(), Some(Mutation::Insert(rows)) if rows.len() == 2));
    }
}
