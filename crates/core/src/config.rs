//! Configuration of the MLNClean pipeline.

use distance::Metric;
use mln::LearningConfig;
use serde::{Deserialize, Serialize};

/// All tunables of a cleaning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanConfig {
    /// AGP threshold τ: a group whose tuples number at most τ is treated as
    /// abnormal and merged into its nearest normal group.  The paper finds
    /// τ = 1 optimal for CAR and τ = 10 for HAI (Figure 11).
    pub tau: usize,
    /// Distance metric used by AGP (group distance) and RSC (reliability
    /// score).  Levenshtein is the paper default (Table 5).
    pub metric: Metric,
    /// Weight-learning configuration (diagonal Newton, Tuffy-style).
    pub learning: LearningConfig,
    /// Maximum number of per-tuple data versions for which FSCR explores
    /// every fusion order exhaustively (`m!` orders).  Beyond this, a greedy
    /// weight-descending order is used instead — the paper's complexity
    /// analysis (O(|T|·m!·m)) assumes m is small because m ≤ |rules|.
    pub max_exhaustive_fusion: usize,
    /// Optional guard on AGP merges (an extension over the paper): an
    /// abnormal group is only merged when the *normalized* distance between
    /// its dominant γ and the nearest normal group's dominant γ is at most
    /// this value.  The paper's AGP always merges, which on data with many
    /// legitimately rare reason values lets a small-but-correct group be
    /// absorbed by an unrelated group.  `None` (the default) reproduces the
    /// paper's behaviour exactly; the ablation bench measures the effect.
    pub agp_distance_guard: Option<f64>,
    /// Whether the final output should also drop exact duplicate tuples
    /// (MLNClean does; keep `true` unless you need one row per input tuple).
    pub deduplicate: bool,
    /// Optional bound, in bytes, on the session's **evictable working
    /// state**: the per-block γ clean caches (with their distance memos)
    /// and the per-tuple fusion memo.  When the estimated resident size of
    /// that pool exceeds the budget, the session spills cold clean block
    /// caches to disk-backed segments (faulted back in transparently when a
    /// block goes dirty) and then windows the fusion memo, evicting the
    /// oldest memoised fusions first.  Outputs are byte-identical either
    /// way — eviction only trades memory for recompute time.  `None` (the
    /// default) keeps everything resident.
    pub memory_budget: Option<usize>,
    /// Whether the per-block Stage-I loops (AGP and RSC) run on the rayon
    /// thread pool.  Blocks are independent, and the parallel path reassembles
    /// per-block results in block order, so the cleaned output is identical
    /// either way — `false` forces the serial reference path (used by the
    /// equivalence tests and for single-core profiling).
    pub parallel: bool,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            tau: 1,
            metric: Metric::Levenshtein,
            learning: LearningConfig::default(),
            max_exhaustive_fusion: 6,
            agp_distance_guard: None,
            deduplicate: true,
            memory_budget: None,
            parallel: true,
        }
    }
}

impl CleanConfig {
    /// Set the AGP threshold τ.
    pub fn with_tau(mut self, tau: usize) -> Self {
        self.tau = tau;
        self
    }

    /// Set the distance metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Set the weight-learning configuration.
    pub fn with_learning(mut self, learning: LearningConfig) -> Self {
        self.learning = learning;
        self
    }

    /// Enable or disable final deduplication.
    pub fn with_deduplicate(mut self, deduplicate: bool) -> Self {
        self.deduplicate = deduplicate;
        self
    }

    /// Set the AGP distance guard (see [`CleanConfig::agp_distance_guard`]).
    pub fn with_agp_distance_guard(mut self, guard: f64) -> Self {
        self.agp_distance_guard = Some(guard);
        self
    }

    /// Bound the session's evictable working state to `bytes` (see
    /// [`CleanConfig::memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Enable or disable the parallel Stage-I block loops (see
    /// [`CleanConfig::parallel`]).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let c = CleanConfig::default();
        assert_eq!(c.tau, 1);
        assert_eq!(c.metric, Metric::Levenshtein);
        assert!(c.deduplicate);
    }

    #[test]
    fn builder_methods() {
        let c = CleanConfig::default()
            .with_tau(10)
            .with_metric(Metric::Cosine)
            .with_deduplicate(false);
        assert_eq!(c.tau, 10);
        assert_eq!(c.metric, Metric::Cosine);
        assert!(!c.deduplicate);
    }
}
