//! The unified [`Engine`] abstraction: one front door over the batch,
//! incremental and distributed execution plans.
//!
//! Every driver consumes a dirty [`Dataset`] plus a [`RuleSet`] and produces
//! the same [`Report`] (repaired + deduplicated data, provenance, one merged
//! [`Timings`]) or the same [`crate::CleanError`].  Code that only cares
//! about *cleaning data* can hold a `&dyn Engine` and swap execution plans
//! freely:
//!
//! ```
//! use dataset::sample_hospital_dataset;
//! use mlnclean::{CleanConfig, Engine, IncrementalMlnClean, MlnClean};
//! use rules::sample_hospital_rules;
//!
//! let dirty = sample_hospital_dataset();
//! let rules = sample_hospital_rules();
//! let engines: [&dyn Engine; 2] = [
//!     &MlnClean::new(CleanConfig::default().with_tau(1)),
//!     &IncrementalMlnClean::new(CleanConfig::default().with_tau(1)).with_batch_rows(2),
//! ];
//! for engine in engines {
//!     let report = engine.run(&dirty, &rules).expect("rules match the schema");
//!     assert_eq!(report.deduplicated().len(), 2);
//! }
//! ```

use crate::agp::AgpRecord;
use crate::changeset::ChangeSet;
use crate::config::CleanConfig;
use crate::error::CleanError;
use crate::fscr::FscrRecord;
use crate::index::MlnIndex;
use crate::rsc::RscRecord;
use crate::session::CleaningSession;
use dataset::{Dataset, TupleId};
use rules::RuleSet;
use serde::de::SeqAccess;
use serde::ser::SerializeTuple;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::sync::Arc;
use std::time::Duration;

/// Wall-clock timings of a cleaning run — one struct subsuming the historical
/// per-driver pair (`StageTimings` for the single-node pipeline,
/// `PhaseTimings` for the distributed one).
///
/// The six stage fields are filled by every driver.  For the distributed
/// driver they sum the per-worker stage clocks (workers run concurrently, so
/// the sum reads as aggregate worker time rather than elapsed wall time),
/// while the three coordinator fields — [`Timings::partition`],
/// [`Timings::weight_merge`], [`Timings::gather`] — are true wall clock and
/// stay zero on the single-node drivers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Timings {
    /// MLN index construction (incl. incremental splices).
    pub index: Duration,
    /// Abnormal group processing.
    pub agp: Duration,
    /// MLN weight learning.
    pub weight_learning: Duration,
    /// Reliability-score cleaning.
    pub rsc: Duration,
    /// Fusion-score conflict resolution.
    pub fscr: Duration,
    /// Exact-duplicate removal (zero when deduplication is disabled).
    pub dedup: Duration,
    /// Data partitioning (distributed driver only).
    pub partition: Duration,
    /// Cross-partition Eq. 6 weight merging (distributed driver only).
    pub weight_merge: Duration,
    /// Gathering per-part repairs back into one dataset (distributed driver
    /// only).
    pub gather: Duration,
    /// Number of coordinator merge rounds accumulated into
    /// [`Timings::weight_merge`] and [`Timings::gather`]: the streaming
    /// distributed driver merges every K batches and bumps this per round
    /// (so per-round averages are derivable), the batch distributed driver
    /// performs exactly one merge, and the single-node drivers none.
    pub merge_rounds: usize,
}

impl Timings {
    /// Total time across all stages and coordinator phases.
    pub fn total(&self) -> Duration {
        self.index
            + self.agp
            + self.weight_learning
            + self.rsc
            + self.fscr
            + self.dedup
            + self.partition
            + self.weight_merge
            + self.gather
    }
}

/// Distributed extras of a [`Report`]: how the rows were split across
/// workers, and how much cross-partition evidence the weight merge found.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PartitionReport {
    /// Global tuple ids of each partition, in worker order — the
    /// local-to-global mapping the provenance records were remapped with.
    pub parts: Vec<Vec<TupleId>>,
    /// Number of γs whose weight was adjusted with cross-partition evidence.
    pub shared_gammas: usize,
}

impl PartitionReport {
    /// Rows per partition, in worker order.
    pub fn sizes(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Largest part divided by smallest part — the skew factor the
    /// partitioner bounds.
    pub fn skew(&self) -> f64 {
        let sizes = self.sizes();
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let min = sizes.iter().copied().min().unwrap_or(0).max(1) as f64;
        max / min
    }
}

/// The result of a cleaning run, shared by every [`Engine`].
///
/// Provenance records are always in **global** tuple coordinates — the
/// distributed driver remaps its per-part records before reporting, so
/// [`Report::agp`]/[`Report::rsc`]/[`Report::fscr`] read the same whichever
/// engine produced them.
#[derive(Debug, Clone)]
pub struct Report {
    /// The repaired dataset with one row per input tuple (use this for
    /// cell-level evaluation).
    pub repaired: Dataset,
    /// The repaired dataset after removing exact duplicates, or `None` when
    /// deduplication is disabled (access through [`Report::deduplicated`],
    /// which falls back to `repaired` without cloning).
    pub(crate) deduplicated: Option<Dataset>,
    /// The MLN index in its final (post-RSC) state, shared with the engine
    /// that produced it (`Arc` so an incremental session can hand out
    /// repeated outcome snapshots without cloning the index each time).
    /// `None` for the distributed driver, which keeps one index per
    /// partition.
    pub index: Option<Arc<MlnIndex>>,
    /// What AGP did (concatenated across partitions for the distributed
    /// driver, in worker order).
    pub agp: AgpRecord,
    /// What RSC did.
    pub rsc: RscRecord,
    /// What FSCR did.
    pub fscr: FscrRecord,
    /// Merged per-stage / per-phase wall-clock timings.
    pub timings: Timings,
    /// Partitioning details — `Some` only for the distributed driver.
    pub partitions: Option<PartitionReport>,
}

impl Report {
    /// Assemble a report — the constructor out-of-crate [`Engine`]
    /// implementations (e.g. the distributed driver) use.  Pass
    /// `deduplicated: None` when deduplication is disabled;
    /// [`Report::deduplicated`] then falls back to the repaired dataset.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        repaired: Dataset,
        deduplicated: Option<Dataset>,
        index: Option<Arc<MlnIndex>>,
        agp: AgpRecord,
        rsc: RscRecord,
        fscr: FscrRecord,
        timings: Timings,
        partitions: Option<PartitionReport>,
    ) -> Self {
        Report {
            repaired,
            deduplicated,
            index,
            agp,
            rsc,
            fscr,
            timings,
            partitions,
        }
    }

    /// The final output: the repaired dataset after exact-duplicate removal.
    /// When deduplication is disabled this is the repaired dataset itself (no
    /// copy is made).
    pub fn deduplicated(&self) -> &Dataset {
        self.deduplicated.as_ref().unwrap_or(&self.repaired)
    }

    /// Consume the report, keeping only the final (deduplicated) dataset.
    pub fn into_deduplicated(self) -> Dataset {
        self.deduplicated.unwrap_or(self.repaired)
    }

    /// The final cleaned index.
    ///
    /// # Panics
    /// Panics for reports of drivers that keep one index per partition (the
    /// distributed engine); check [`Report::index`] directly when the driver
    /// is not statically known.
    pub fn index(&self) -> &MlnIndex {
        self.index
            .as_ref()
            .expect("this driver keeps one index per partition; read Report::index instead")
    }
}

// A report crosses the wire when a transport worker answers an `Outcome`
// request, so it needs serde — manual because `index` is behind an `Arc`
// (serialized through the deref, re-wrapped on decode; sharing is a process
// property, not a wire one).  Encoded positionally as an 8-tuple, matching
// the compact sequence framing every binary codec in this workspace uses.
impl Serialize for Report {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(8)?;
        tup.serialize_element(&self.repaired)?;
        tup.serialize_element(&self.deduplicated)?;
        tup.serialize_element(&self.index.as_deref())?;
        tup.serialize_element(&self.agp)?;
        tup.serialize_element(&self.rsc)?;
        tup.serialize_element(&self.fscr)?;
        tup.serialize_element(&self.timings)?;
        tup.serialize_element(&self.partitions)?;
        tup.end()
    }
}

impl<'de> Deserialize<'de> for Report {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ReportVisitor;
        impl<'de> serde::de::Visitor<'de> for ReportVisitor {
            type Value = Report;
            fn expecting(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
                write!(f, "an 8-field report tuple")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                macro_rules! take {
                    ($at:expr) => {
                        seq.next_element()?.ok_or_else(|| {
                            serde::de::Error::invalid_length($at, &"an 8-field report tuple")
                        })?
                    };
                }
                let repaired: Dataset = take!(0);
                let deduplicated: Option<Dataset> = take!(1);
                let index: Option<MlnIndex> = take!(2);
                let agp: AgpRecord = take!(3);
                let rsc: RscRecord = take!(4);
                let fscr: FscrRecord = take!(5);
                let timings: Timings = take!(6);
                let partitions: Option<PartitionReport> = take!(7);
                Ok(Report::new(
                    repaired,
                    deduplicated,
                    index.map(Arc::new),
                    agp,
                    rsc,
                    fscr,
                    timings,
                    partitions,
                ))
            }
        }
        deserializer.deserialize_tuple(8, ReportVisitor)
    }
}

/// A cleaning execution plan: anything that can turn a dirty dataset and a
/// rule set into a [`Report`].
///
/// Implemented by [`crate::MlnClean`] (one-shot batch),
/// [`IncrementalMlnClean`] (micro-batch streaming through a
/// [`CleaningSession`]) and the distributed driver in the `distributed`
/// crate.
pub trait Engine {
    /// Short driver name for logs and experiment artifacts.
    fn name(&self) -> &'static str;

    /// Clean `dirty` against `rules`.
    fn run(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError>;
}

/// The incremental driver behind the [`Engine`] front door: streams the
/// dataset through a [`CleaningSession`] in fixed-size micro-batches (each
/// one a typed [`ChangeSet`] insertion) and finishes the session.
///
/// By session/batch equivalence the result is byte-identical to
/// [`crate::MlnClean`] on the same input; what changes is the execution plan
/// (and, for a live stream, the ability to interleave updates and deletes —
/// see [`CleaningSession::apply`]).
#[derive(Debug, Clone)]
pub struct IncrementalMlnClean {
    config: CleanConfig,
    batch_rows: usize,
}

impl Default for IncrementalMlnClean {
    /// The default configuration with the default micro-batch size — NOT a
    /// zeroed `batch_rows` (which `run` would clamp to one-row ingests).
    fn default() -> Self {
        IncrementalMlnClean::new(CleanConfig::default())
    }
}

impl IncrementalMlnClean {
    /// Create an incremental driver with the given configuration and the
    /// default micro-batch size (128 rows).
    pub fn new(config: CleanConfig) -> Self {
        IncrementalMlnClean {
            config,
            batch_rows: 128,
        }
    }

    /// Set the micro-batch size (clamped to at least one row).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }
}

impl Engine for IncrementalMlnClean {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn run(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError> {
        let batch_rows = self.batch_rows.max(1);
        let mut session =
            CleaningSession::new(self.config.clone(), dirty.schema().clone(), rules.clone())?;
        let mut at = 0usize;
        while at < dirty.len() {
            let upto = (at + batch_rows).min(dirty.len());
            let rows: Vec<Vec<String>> = (at..upto)
                .map(|t| dirty.tuple(TupleId(t)).owned_values())
                .collect();
            session.apply(ChangeSet::inserting(rows))?;
            at = upto;
        }
        Ok(session.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MlnClean;
    use dataset::{csv, sample_hospital_dataset};
    use rules::sample_hospital_rules;

    #[test]
    fn batch_and_incremental_engines_agree_byte_for_byte() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let config = CleanConfig::default().with_tau(1);
        let batch = MlnClean::new(config.clone()).run(&dirty, &rules).unwrap();
        let incremental = IncrementalMlnClean::new(config)
            .with_batch_rows(2)
            .run(&dirty, &rules)
            .unwrap();
        assert_eq!(
            csv::to_csv(&batch.repaired),
            csv::to_csv(&incremental.repaired)
        );
        assert_eq!(batch.agp, incremental.agp);
        assert_eq!(batch.rsc, incremental.rsc);
        assert_eq!(batch.fscr, incremental.fscr);
        // Engine names identify the drivers.
        assert_eq!(MlnClean::default().name(), "batch");
        assert_eq!(IncrementalMlnClean::default().name(), "incremental");
    }

    #[test]
    fn engine_errors_use_the_unified_vocabulary() {
        let dirty = sample_hospital_dataset();
        let err = IncrementalMlnClean::new(CleanConfig::default())
            .run(&dirty, &RuleSet::default())
            .unwrap_err();
        assert_eq!(err, CleanError::NoRules);
    }

    #[test]
    fn timings_total_sums_stage_and_coordinator_phases() {
        let t = Timings {
            index: Duration::from_secs(1),
            partition: Duration::from_secs(2),
            gather: Duration::from_secs(3),
            merge_rounds: 4, // a count, not a duration: never part of total()
            ..Timings::default()
        };
        assert_eq!(t.total(), Duration::from_secs(6));
    }

    #[test]
    fn partition_report_sizes_and_skew() {
        // Skewed partitions: 3 rows vs 1 row.
        let skewed = PartitionReport {
            parts: vec![vec![TupleId(0), TupleId(2), TupleId(3)], vec![TupleId(1)]],
            shared_gammas: 2,
        };
        assert_eq!(skewed.sizes(), vec![3, 1]);
        assert!((skewed.skew() - 3.0).abs() < f64::EPSILON);

        // An empty partition must not divide by zero.
        let with_empty = PartitionReport {
            parts: vec![vec![TupleId(0), TupleId(1)], Vec::new()],
            shared_gammas: 0,
        };
        assert_eq!(with_empty.sizes(), vec![2, 0]);
        assert!((with_empty.skew() - 2.0).abs() < f64::EPSILON);

        // No partitions at all: sizes empty, skew 0.
        let empty = PartitionReport::default();
        assert!(empty.sizes().is_empty());
        assert!(empty.skew().abs() < f64::EPSILON);

        // Perfectly balanced partitions have skew 1.
        let balanced = PartitionReport {
            parts: vec![vec![TupleId(0)], vec![TupleId(1)]],
            shared_gammas: 1,
        };
        assert!((balanced.skew() - 1.0).abs() < f64::EPSILON);
    }
}
