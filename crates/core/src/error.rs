//! The one error vocabulary of the cleaning engines.
//!
//! Historically every front door grew its own enum — `CleaningError` on the
//! batch pipeline, `IngestError` on the incremental session — and the
//! distributed runner borrowed the batch one.  [`CleanError`] replaces all of
//! them: every driver behind the [`crate::Engine`] trait and every
//! [`crate::CleaningSession`] entry point returns it, so callers match one
//! enum no matter which execution plan produced the failure.

use crate::index::IndexError;
use dataset::{ArityMismatch, AttrId, SchemaMismatch, TupleId};
use std::fmt;

/// Any error a cleaning engine or session can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CleanError {
    /// The rule set does not match the dataset schema (a rule references an
    /// unknown attribute), so the MLN index cannot be built.
    Index(IndexError),
    /// An ingested row's arity does not match the session schema.
    Arity(ArityMismatch),
    /// An ingested dataset's schema differs from the session schema.
    Schema(SchemaMismatch),
    /// The rule set is empty — there is nothing to clean against.
    NoRules,
    /// A mutation referenced a tuple that does not exist (at the point of the
    /// change-set sequence where the mutation applies).
    UnknownTuple {
        /// The offending tuple id.
        tuple: TupleId,
        /// Number of rows the target held at that point.
        rows: usize,
    },
    /// A mutation referenced an attribute outside the schema.
    UnknownAttribute {
        /// The offending attribute id.
        attr: AttrId,
        /// The schema arity.
        arity: usize,
    },
    /// The distributed driver was configured with an unusable partitioning
    /// (e.g. zero workers).
    Partition {
        /// The configured worker count.
        workers: usize,
    },
}

impl fmt::Display for CleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleanError::Index(e) => write!(f, "cannot build the MLN index: {e}"),
            CleanError::Arity(e) => write!(f, "cannot apply the change set: {e}"),
            CleanError::Schema(e) => write!(f, "cannot apply the change set: {e}"),
            CleanError::NoRules => write!(f, "the rule set is empty"),
            CleanError::UnknownTuple { tuple, rows } => {
                write!(
                    f,
                    "mutation references tuple {tuple} but the data has {rows} rows at that point"
                )
            }
            CleanError::UnknownAttribute { attr, arity } => {
                write!(
                    f,
                    "mutation references attribute {attr:?} but the schema has {arity} attributes"
                )
            }
            CleanError::Partition { workers } => {
                write!(f, "cannot partition the data over {workers} workers")
            }
        }
    }
}

impl std::error::Error for CleanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CleanError::Index(e) => Some(e),
            CleanError::Arity(e) => Some(e),
            CleanError::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexError> for CleanError {
    fn from(e: IndexError) -> Self {
        CleanError::Index(e)
    }
}

impl From<ArityMismatch> for CleanError {
    fn from(e: ArityMismatch) -> Self {
        CleanError::Arity(e)
    }
}

impl From<SchemaMismatch> for CleanError {
    fn from(e: SchemaMismatch) -> Self {
        CleanError::Schema(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    /// One instance of every variant — keep in sync with the enum so the
    /// Display/source tests below stay exhaustive.
    fn every_variant() -> Vec<CleanError> {
        vec![
            CleanError::Index(IndexError::UnknownAttribute {
                rule: rules::RuleId(0),
                attribute: "X".into(),
            }),
            CleanError::Arity(ArityMismatch {
                expected: 3,
                actual: 2,
            }),
            CleanError::Schema(SchemaMismatch),
            CleanError::NoRules,
            CleanError::UnknownTuple {
                tuple: TupleId(7),
                rows: 3,
            },
            CleanError::UnknownAttribute {
                attr: AttrId(9),
                arity: 4,
            },
            CleanError::Partition { workers: 0 },
        ]
    }

    #[test]
    fn displays_cover_every_variant() {
        // Every Display names the offending detail, not just a static label.
        let expected_fragments = [
            "X",
            "schema has 3 attributes",
            "different schemas",
            "empty",
            "t8", // TupleId(7) renders 1-based, like the paper's tuples
            "AttrId(9)",
            "0 workers",
        ];
        let variants = every_variant();
        assert_eq!(
            variants.len(),
            expected_fragments.len(),
            "a variant was added without a Display expectation (zip would \
             silently skip it)"
        );
        for (e, fragment) in variants.into_iter().zip(expected_fragments) {
            let rendered = e.to_string();
            assert!(!rendered.is_empty());
            assert!(
                rendered.contains(fragment),
                "{rendered:?} should mention {fragment:?}"
            );
        }
    }

    #[test]
    fn sources_chain_to_the_underlying_errors() {
        // Exactly the wrapper variants chain a source; the leaf variants
        // are self-contained.
        for e in every_variant() {
            match &e {
                CleanError::Index(_) | CleanError::Arity(_) | CleanError::Schema(_) => {
                    let source = e.source().unwrap_or_else(|| {
                        panic!("{e} must chain its underlying error");
                    });
                    // The chained source renders on its own, too.
                    assert!(!source.to_string().is_empty());
                }
                _ => assert!(e.source().is_none(), "{e} is a leaf variant"),
            }
        }
    }

    #[test]
    fn from_conversions_pick_the_right_variant() {
        assert!(matches!(
            CleanError::from(SchemaMismatch),
            CleanError::Schema(_)
        ));
        let idx = IndexError::UnknownAttribute {
            rule: rules::RuleId(1),
            attribute: "Z".into(),
        };
        assert!(matches!(CleanError::from(idx), CleanError::Index(_)));
    }
}
