//! Component-level evaluation (Section 7.3 of the paper).
//!
//! Besides the end-to-end F1-score (computed by
//! [`dataset::RepairEvaluation`]), the paper evaluates each component of
//! MLNClean separately:
//!
//! * **Precision-A / Recall-A** — correctly merged abnormal groups over
//!   detected / truly abnormal groups (AGP, Figures 8 and 12);
//! * **Precision-R / Recall-R** — correctly repaired γs over repaired /
//!   erroneous γs (RSC, Figures 9 and 13);
//! * **Precision-F / Recall-F** — correctly repaired attribute values over
//!   erroneous values with detected conflicts / all erroneous values
//!   (FSCR, Figures 10 and 14).
//!
//! These evaluators need the injection ground truth, so they take the
//! [`dataset::DirtyDataset`] produced by the error injector.

use crate::agp::AgpRecord;
use crate::fscr::FscrRecord;
use crate::index::MlnIndex;
use crate::rsc::RscRecord;
use dataset::{ComponentMetrics, DirtyDataset, TupleId};
use rules::RuleSet;
use std::collections::{BTreeMap, BTreeSet};

/// Alias used by the public API: every component evaluation reduces to a
/// precision/recall/F1 triple over counts.
pub type ComponentEvaluation = ComponentMetrics;

/// Ground-truth reason values of a tuple under a rule.
fn truth_reason_values(
    dirty: &DirtyDataset,
    rules: &RuleSet,
    rule: rules::RuleId,
    t: TupleId,
) -> Vec<String> {
    let rule = rules.rule(rule);
    rule.reason_values(dirty.clean.schema(), &dirty.clean.tuple(t))
}

/// Ground-truth full (reason + result) values of a tuple under a rule.
fn truth_full_values(
    dirty: &DirtyDataset,
    rules: &RuleSet,
    rule: rules::RuleId,
    t: TupleId,
) -> Vec<String> {
    let rule = rules.rule(rule);
    let mut v = rule.reason_values(dirty.clean.schema(), &dirty.clean.tuple(t));
    v.extend(rule.result_values(dirty.clean.schema(), &dirty.clean.tuple(t)));
    v
}

/// The majority element of an iterator of value vectors.
fn majority(values: impl Iterator<Item = Vec<String>>) -> Option<Vec<String>> {
    let mut counts: BTreeMap<Vec<String>, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts.into_iter().max_by_key(|(_, c)| *c).map(|(v, _)| v)
}

/// Evaluate AGP: a detected abnormal group counts as correctly merged when it
/// is truly abnormal (its key matches no member tuple's ground-truth reason
/// values) and it was merged into the group matching the majority
/// ground-truth reason values of its tuples.
pub fn evaluate_agp(
    dirty: &DirtyDataset,
    rules: &RuleSet,
    record: &AgpRecord,
) -> ComponentEvaluation {
    // Rebuild the pre-AGP index over the dirty data to know the real set of
    // abnormal groups.
    let index = MlnIndex::build(&dirty.dirty, rules).expect("rules were already validated");
    let mut real_abnormal = 0usize;
    let mut real_abnormal_keys: BTreeSet<(usize, Vec<String>)> = BTreeSet::new();
    for block in &index.blocks {
        for group in &block.groups {
            let tuples = group.all_tuples();
            let key: Vec<String> = group
                .resolve_key(index.pool())
                .into_iter()
                .map(str::to_string)
                .collect();
            let truly_abnormal = !tuples
                .iter()
                .any(|&t| truth_reason_values(dirty, rules, block.rule, t) == key);
            if truly_abnormal && !tuples.is_empty() {
                real_abnormal += 1;
                real_abnormal_keys.insert((block.rule.index(), key));
            }
        }
    }

    let mut correct = 0usize;
    for merge in &record.merges {
        let truly_abnormal =
            real_abnormal_keys.contains(&(merge.rule.index(), merge.abnormal_key.clone()));
        if !truly_abnormal {
            continue;
        }
        let expected_target = majority(
            merge
                .tuples
                .iter()
                .map(|&t| truth_reason_values(dirty, rules, merge.rule, t)),
        );
        if let (Some(expected), Some(actual)) = (expected_target, merge.target_key.as_ref()) {
            if &expected == actual {
                correct += 1;
            }
        }
    }

    ComponentMetrics::from_counts(correct, record.detected_count(), real_abnormal)
}

/// Evaluate RSC: a repaired γ counts as correct when its new values match the
/// ground truth for the majority of its tuples; the recall denominator is the
/// number of γs (in the dirty index) whose values disagree with the ground
/// truth of at least one supporting tuple.
pub fn evaluate_rsc(
    dirty: &DirtyDataset,
    rules: &RuleSet,
    record: &RscRecord,
) -> ComponentEvaluation {
    let index = MlnIndex::build(&dirty.dirty, rules).expect("rules were already validated");
    let mut erroneous_gammas = 0usize;
    for block in &index.blocks {
        for gamma in block.gammas() {
            let values: Vec<String> = gamma
                .resolve_values(index.pool())
                .into_iter()
                .map(str::to_string)
                .collect();
            let has_error = gamma
                .tuples
                .iter()
                .any(|&t| truth_full_values(dirty, rules, block.rule, t) != values);
            if has_error {
                erroneous_gammas += 1;
            }
        }
    }

    let mut correct = 0usize;
    for repair in &record.repairs {
        let expected = majority(
            repair
                .tuples
                .iter()
                .map(|&t| truth_full_values(dirty, rules, repair.rule, t)),
        );
        if expected.as_ref() == Some(&repair.to_values) {
            correct += 1;
        }
    }

    ComponentMetrics::from_counts(correct, record.repaired_count(), erroneous_gammas)
}

/// Evaluate FSCR, the stage that materializes the final repairs.
///
/// * `correct` — erroneous cells whose fused value equals the ground truth;
/// * `attempted` (precision denominator) — every cell the fusion stage
///   rewrote;
/// * `relevant` (recall denominator) — every erroneous cell.
///
/// The paper scopes the precision denominator to "erroneous attribute values
/// that include detected conflicts"; since FSCR is also the stage that writes
/// out the conflict-free Stage-I repairs, we use the set of cells it actually
/// rewrote, which coincides with the paper's intent (few detected conflicts
/// are wrongly repaired → high precision) while staying well-defined when a
/// repair happens without a cross-version conflict.
pub fn evaluate_fscr(dirty: &DirtyDataset, record: &FscrRecord) -> ComponentEvaluation {
    let erroneous = dirty.erroneous_cells();
    let _conflict_tuples: BTreeSet<TupleId> = record.tuples_with_conflicts().into_iter().collect();

    let mut correct = 0usize;
    for change in &record.changes {
        if !erroneous.contains(&change.cell) {
            continue;
        }
        if change.new == dirty.clean.cell(change.cell) {
            correct += 1;
        }
    }

    ComponentMetrics::from_counts(correct, record.changed_cell_count(), erroneous.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CleanConfig;
    use crate::pipeline::MlnClean;
    use dataset::{ErrorInjector, ErrorSpec};
    use rules::sample_hospital_rules;

    /// Hand-built DirtyDataset for the Table 1 sample (the "injected errors"
    /// are the four wrong cells of the running example).
    fn sample_dirty() -> DirtyDataset {
        let clean = dataset::sample_hospital_truth();
        let dirty = dataset::sample_hospital_dataset();
        let mut errors = Vec::new();
        for cell in dirty.diff_cells(&clean) {
            errors.push(dataset::InjectedError {
                cell,
                error_type: dataset::ErrorType::Typo,
                original: clean.cell(cell).to_string(),
                dirty: dirty.cell(cell).to_string(),
            });
        }
        DirtyDataset {
            dirty,
            clean,
            errors,
        }
    }

    #[test]
    fn perfect_run_on_the_paper_sample() {
        let dirty = sample_dirty();
        let rules = sample_hospital_rules();
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
        let outcome = cleaner.clean(&dirty.dirty, &rules).unwrap();

        let agp = evaluate_agp(&dirty, &rules, &outcome.agp);
        assert_eq!(agp.precision(), 1.0, "{agp}");
        assert_eq!(agp.recall(), 1.0, "{agp}");

        let rsc = evaluate_rsc(&dirty, &rules, &outcome.rsc);
        assert_eq!(rsc.precision(), 1.0, "{rsc}");
        assert!(rsc.recall() > 0.0);

        let fscr = evaluate_fscr(&dirty, &outcome.fscr);
        assert_eq!(fscr.recall(), 1.0, "{fscr}");
    }

    #[test]
    fn tau_zero_detects_no_abnormal_groups() {
        let dirty = sample_dirty();
        let rules = sample_hospital_rules();
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(0));
        let outcome = cleaner.clean(&dirty.dirty, &rules).unwrap();
        let agp = evaluate_agp(&dirty, &rules, &outcome.agp);
        // Nothing detected → nothing correct → recall 0 (there are real
        // abnormal groups), precision vacuously 1.
        assert_eq!(agp.correct, 0);
        assert_eq!(agp.attempted, 0);
        assert!(agp.relevant > 0);
        assert_eq!(agp.recall(), 0.0);
    }

    #[test]
    fn component_metrics_on_injected_errors() {
        // A slightly larger synthetic check: inject errors into a clean
        // dataset with a known FD and verify the metrics stay in range.
        use dataset::{Dataset, Schema};
        let mut clean = Dataset::new(Schema::new(&["city", "state"]));
        let cities = [
            ("SEATTLE", "WA"),
            ("PORTLAND", "OR"),
            ("AUSTIN", "TX"),
            ("DENVER", "CO"),
        ];
        for i in 0..200 {
            let (c, s) = cities[i % cities.len()];
            clean.push_row(vec![c.to_string(), s.to_string()]).unwrap();
        }
        let rules = rules::parse_rules("FD: city -> state").unwrap();
        let dirty = ErrorInjector::new(ErrorSpec::new(0.05, 11)).inject(&clean);
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(3));
        let outcome = cleaner.clean(&dirty.dirty, &rules).unwrap();

        for metrics in [
            evaluate_agp(&dirty, &rules, &outcome.agp),
            evaluate_rsc(&dirty, &rules, &outcome.rsc),
            evaluate_fscr(&dirty, &outcome.fscr),
        ] {
            assert!((0.0..=1.0).contains(&metrics.precision()));
            assert!((0.0..=1.0).contains(&metrics.recall()));
        }
    }
}
