//! FSCR — Fusion-Score-based Conflict Resolution (Section 5.2, Algorithm 2).
//!
//! After Stage I each block holds one clean γ per group, giving every tuple
//! up to |blocks| cleaned "versions".  Versions can disagree on shared
//! attributes (the paper's t3 has CT = "DOTHAN" in version 1 but CT = "BOAZ"
//! in version 3).  FSCR fuses the versions of each tuple into the single most
//! likely consistent combination:
//!
//! * the **fusion score** of a fused tuple is the product of the
//!   probabilities of the γs used (Eq. 5);
//! * when two versions conflict, the conflicting version may be swapped for
//!   the highest-probability γ of its block that does not conflict with the
//!   fusion built so far;
//! * if no consistent fusion exists the tuple keeps its current values.
//!
//! Fusion order matters, so all `m!` orders are explored (m ≤ number of
//! rules; a greedy order is used beyond a configurable bound).
//!
//! The whole stage runs on `(AttrId, ValueId)` pairs: conflict tests are
//! integer comparisons and the winning assignment is written back into the
//! repaired dataset as ids (the index pool is a snapshot of the dataset
//! pool, so ids transfer directly).  Strings materialize only in the
//! provenance records.

use crate::gamma::Gamma;
use crate::index::MlnIndex;
use dataset::{AttrId, CellRef, Dataset, TupleId, ValueId};
use rayon::prelude::*;
use rules::{Rule, RuleId, RuleSet};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A successful fusion: the fused `(attribute, value)` assignment, its fusion
/// score, and how many versions were substituted with block-level candidates.
type Fusion = (Vec<(AttrId, ValueId)>, f64, usize);

/// A single cell rewritten by the fusion stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellChange {
    /// The rewritten cell.
    pub cell: CellRef,
    /// Its value before fusion (the dirty value).
    pub old: String,
    /// Its value after fusion.
    pub new: String,
}

/// Per-tuple outcome of the fusion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionOutcome {
    /// The tuple.
    pub tuple: TupleId,
    /// The fused attribute assignment actually applied (resolved strings).
    pub fused: Vec<(String, String)>,
    /// The fusion score of the applied assignment (0 when fusion failed).
    pub f_score: f64,
    /// Whether any pair of this tuple's versions conflicted.
    pub conflict_detected: bool,
    /// Whether every fusion order failed (the tuple was left unchanged).
    pub fusion_failed: bool,
}

/// The full FSCR record of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FscrRecord {
    /// Per-tuple fusion outcomes.
    pub outcomes: Vec<FusionOutcome>,
    /// Every cell rewritten by the fusion stage, relative to the input data.
    pub changes: Vec<CellChange>,
}

impl FscrRecord {
    /// Tuples for which a conflict between data versions was detected.
    pub fn tuples_with_conflicts(&self) -> Vec<TupleId> {
        self.outcomes
            .iter()
            .filter(|o| o.conflict_detected)
            .map(|o| o.tuple)
            .collect()
    }

    /// Number of rewritten cells.
    pub fn changed_cell_count(&self) -> usize {
        self.changes.len()
    }
}

/// The fused assignment chosen for one tuple — the cacheable per-tuple result
/// of the fusion stage.  [`crate::CleaningSession`] memoises these across
/// micro-batches and replays them for tuples whose blocks stayed clean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleFusion {
    /// The fused `(attribute, value)` assignment (empty when the tuple has no
    /// versions or every fusion order failed).
    pub fused: Vec<(AttrId, ValueId)>,
    /// The fusion score of the applied assignment (0 when fusion failed or
    /// there was nothing to fuse).
    pub f_score: f64,
    /// Whether any pair of the tuple's versions conflicted.
    pub conflict_detected: bool,
    /// Whether every fusion order failed (the tuple is left unchanged).
    pub fusion_failed: bool,
}

/// Precomputed fusion inputs over a Stage-I-cleaned index: per tuple the γs
/// covering it (its data versions), and per block the substitution
/// candidates sorted by descending probability.
pub struct FusionPlan<'a> {
    tuple_versions: HashMap<TupleId, Vec<&'a Gamma>>,
    block_candidates: HashMap<RuleId, Vec<&'a Gamma>>,
}

/// The FSCR strategy.
#[derive(Debug, Clone)]
pub struct ConflictResolver {
    /// Maximum number of versions for which all `m!` fusion orders are
    /// explored; above this a greedy probability-descending order is used.
    pub max_exhaustive: usize,
}

impl ConflictResolver {
    /// Create a resolver.
    pub fn new(max_exhaustive: usize) -> Self {
        ConflictResolver { max_exhaustive }
    }

    /// Precompute the fusion inputs for a cleaned index.
    pub fn plan<'a>(&self, index: &'a MlnIndex) -> FusionPlan<'a> {
        let mut tuple_versions: HashMap<TupleId, Vec<&Gamma>> = HashMap::new();
        let mut block_candidates: HashMap<RuleId, Vec<&Gamma>> = HashMap::new();
        for block in &index.blocks {
            let mut candidates: Vec<&Gamma> = block.gammas().collect();
            candidates.sort_by(|a, b| {
                b.probability
                    .partial_cmp(&a.probability)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            block_candidates.insert(block.rule, candidates);
            for group in &block.groups {
                for gamma in &group.gammas {
                    for &t in &gamma.tuples {
                        tuple_versions.entry(t).or_default().push(gamma);
                    }
                }
            }
        }
        FusionPlan {
            tuple_versions,
            block_candidates,
        }
    }

    /// Precompute fusion inputs restricted to the blocks that cover at least
    /// one tuple of `tuples` (a rule's block covers exactly the tuples its
    /// rule is relevant to).  For every tuple in `tuples` the restricted plan
    /// is byte-identical to the full [`Self::plan`]: a tuple's versions come
    /// only from covering blocks, and substitution candidates are per block.
    /// Blocks covering none of the tuples are skipped entirely — this is
    /// what makes the incremental session's re-fusion cost proportional to
    /// the invalidated set instead of the whole index.
    pub fn plan_for<'a>(
        &self,
        index: &'a MlnIndex,
        dirty: &Dataset,
        rules: &RuleSet,
        tuples: &HashSet<TupleId>,
    ) -> FusionPlan<'a> {
        let rule_list: Vec<&Rule> = rules.iter().collect();
        let schema = dirty.schema();
        let mut tuple_versions: HashMap<TupleId, Vec<&Gamma>> = HashMap::new();
        let mut block_candidates: HashMap<RuleId, Vec<&Gamma>> = HashMap::new();
        for block in &index.blocks {
            let rule = rule_list[block.rule.index()];
            let covers = tuples
                .iter()
                .any(|&t| rule.is_relevant(schema, &dirty.tuple(t)));
            if !covers {
                continue;
            }
            let mut candidates: Vec<&Gamma> = block.gammas().collect();
            candidates.sort_by(|a, b| {
                b.probability
                    .partial_cmp(&a.probability)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            block_candidates.insert(block.rule, candidates);
            for group in &block.groups {
                for gamma in &group.gammas {
                    for &t in &gamma.tuples {
                        if tuples.contains(&t) {
                            tuple_versions.entry(t).or_default().push(gamma);
                        }
                    }
                }
            }
        }
        FusionPlan {
            tuple_versions,
            block_candidates,
        }
    }

    /// Fuse one tuple's data versions into its best consistent assignment
    /// (lines 3–27 of Algorithm 2 for a single tuple).
    pub fn fuse_tuple(&self, plan: &FusionPlan<'_>, t: TupleId) -> TupleFusion {
        let versions = match plan.tuple_versions.get(&t) {
            Some(v) if !v.is_empty() => v,
            // The tuple participates in no block (no rule is relevant to
            // it): nothing to fuse, keep it as is.
            _ => {
                return TupleFusion {
                    fused: Vec::new(),
                    f_score: 0.0,
                    conflict_detected: false,
                    fusion_failed: false,
                }
            }
        };

        let conflict_detected = versions
            .iter()
            .enumerate()
            .any(|(i, a)| versions.iter().skip(i + 1).any(|b| a.conflicts_with(b)));

        let (best_fusion, best_score) = self.best_fusion(versions, &plan.block_candidates);

        let fusion_failed = best_fusion.is_none();
        TupleFusion {
            fused: best_fusion.unwrap_or_default(),
            f_score: if fusion_failed { 0.0 } else { best_score },
            conflict_detected,
            fusion_failed,
        }
    }

    /// Fuse every tuple of `dirty` using the Stage-I-cleaned `index` and
    /// return the repaired dataset (same shape as the input) plus the record.
    pub fn resolve(&self, dirty: &Dataset, index: &MlnIndex) -> (Dataset, FscrRecord) {
        let mut repaired = dirty.clone();
        let mut record = FscrRecord::default();
        let plan = self.plan(index);
        for t in dirty.tuple_ids() {
            let fusion = self.fuse_tuple(&plan, t);
            apply_tuple_fusion(&mut repaired, index.pool(), t, &fusion, &mut record);
        }
        (repaired, record)
    }

    /// Parallel variant of [`Self::resolve`]: fusion decisions are computed
    /// across tuples in parallel (each tuple's decision only reads the shared
    /// plan) and applied serially in tuple order, so the repaired dataset and
    /// the record are byte-identical to the serial reference path.
    pub fn resolve_parallel(&self, dirty: &Dataset, index: &MlnIndex) -> (Dataset, FscrRecord) {
        let mut repaired = dirty.clone();
        let mut record = FscrRecord::default();
        let plan = self.plan(index);
        let tuples: Vec<TupleId> = dirty.tuple_ids().collect();
        let fusions: Vec<TupleFusion> = tuples
            .par_iter()
            .map(|&t| self.fuse_tuple(&plan, t))
            .collect();
        for (t, fusion) in tuples.iter().zip(&fusions) {
            apply_tuple_fusion(&mut repaired, index.pool(), *t, fusion, &mut record);
        }
        (repaired, record)
    }

    /// Explore fusion orders of `versions` and return the best consistent
    /// attribute assignment with its fusion score.
    ///
    /// Fusions are ranked first by how many of the *tuple's own* versions
    /// they retain (substituting a version for a block-level candidate is a
    /// bigger change to the tuple — the principle of minimality the paper
    /// bakes into its reliability score), and only then by the fusion score
    /// of Eq. 5.  Without the minimality tie-break, a fusion that keeps one
    /// dirty version and substitutes away several correct ones can win on
    /// raw probability product alone.
    fn best_fusion(
        &self,
        versions: &[&Gamma],
        block_candidates: &HashMap<RuleId, Vec<&Gamma>>,
    ) -> (Option<Vec<(AttrId, ValueId)>>, f64) {
        let m = versions.len();
        let orders: Vec<Vec<usize>> = if m <= self.max_exhaustive {
            permutations(m)
        } else {
            // Beyond the exhaustive bound: consensus ordering (versions that
            // conflict with fewer of their peers first, ties by probability),
            // rotated so every version gets a chance to lead.  This keeps the
            // cost at O(m²) orders instead of m!.
            let mut consensus: Vec<usize> = (0..m).collect();
            let conflict_count = |i: usize| -> usize {
                versions
                    .iter()
                    .enumerate()
                    .filter(|(j, v)| *j != i && versions[i].conflicts_with(v))
                    .count()
            };
            consensus.sort_by(|&a, &b| {
                conflict_count(a).cmp(&conflict_count(b)).then(
                    versions[b]
                        .probability
                        .partial_cmp(&versions[a].probability)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
            let mut orders = vec![consensus.clone()];
            for lead in 0..m {
                let mut order = vec![consensus[lead]];
                order.extend(consensus.iter().copied().filter(|&x| x != consensus[lead]));
                orders.push(order);
            }
            orders
        };

        let mut best: Option<Vec<(AttrId, ValueId)>> = None;
        let mut best_score = 0.0f64;
        let mut best_substitutions = usize::MAX;
        for order in orders {
            if let Some((fused, score, substitutions)) =
                self.fuse_in_order(versions, &order, block_candidates)
            {
                let better = substitutions < best_substitutions
                    || (substitutions == best_substitutions && score > best_score)
                    || best.is_none();
                if better {
                    best_score = score;
                    best_substitutions = substitutions;
                    best = Some(fused);
                }
            }
        }
        (best, best_score)
    }

    /// Fuse the versions in the given order; returns `None` if the fusion
    /// fails (an unresolvable conflict is hit), otherwise the fused
    /// assignment, its fusion score, and how many versions had to be
    /// substituted with block-level candidates.
    fn fuse_in_order(
        &self,
        versions: &[&Gamma],
        order: &[usize],
        block_candidates: &HashMap<RuleId, Vec<&Gamma>>,
    ) -> Option<Fusion> {
        let mut fused: Vec<(AttrId, ValueId)> = Vec::new();
        let mut score = 1.0f64;
        let mut substitutions = 0usize;

        for &idx in order {
            let version = versions[idx];
            let chosen: &Gamma = if conflicts_with_fusion(version, &fused) {
                // Find the highest-probability candidate of the same block
                // that does not conflict with the fusion built so far
                // (lines 18–22 of Algorithm 2).
                let candidates = block_candidates
                    .get(&version.rule)
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                match candidates
                    .iter()
                    .find(|c| !conflicts_with_fusion(c, &fused))
                {
                    Some(c) => {
                        substitutions += 1;
                        c
                    }
                    None => return None, // fusion fails for this order
                }
            } else {
                version
            };

            for (attr, value) in chosen.attr_value_pairs() {
                if !fused.iter().any(|(a, _)| *a == attr) {
                    fused.push((attr, value));
                }
            }
            score *= chosen.probability.max(f64::MIN_POSITIVE);
        }
        Some((fused, score, substitutions))
    }
}

/// Write one tuple's fusion into `repaired` in place (its cells still hold
/// the dirty values for this tuple — each cell is read before it is
/// overwritten, and a fusion never writes the same attribute twice) and
/// append the provenance (cell changes + outcome) to the record.  `pool`
/// must resolve every id of both the fusion and the tuple's dirty cells
/// (the dataset pool, or the index's snapshot of it).  Public so external
/// engine builders (e.g. the distributed streaming driver) can replay
/// memoised [`TupleFusion`]s exactly like [`crate::CleaningSession`] does.
pub fn apply_tuple_fusion(
    repaired: &mut Dataset,
    pool: &dataset::ValuePool,
    t: TupleId,
    fusion: &TupleFusion,
    record: &mut FscrRecord,
) {
    for &(attr, value) in &fusion.fused {
        // The pool is (a snapshot of) the dirty dataset's pool, so γ ids
        // write straight into the repaired dataset.
        let old = repaired.value_id(t, attr);
        if old != value {
            record.changes.push(CellChange {
                cell: CellRef::new(t, attr),
                old: pool.resolve(old).to_string(),
                new: pool.resolve(value).to_string(),
            });
        }
        repaired.set_value_id(t, attr, value);
    }
    record.outcomes.push(FusionOutcome {
        tuple: t,
        fused: fusion
            .fused
            .iter()
            .map(|&(a, v)| {
                (
                    repaired.schema().attr_name(a).to_string(),
                    pool.resolve(v).to_string(),
                )
            })
            .collect(),
        f_score: fusion.f_score,
        conflict_detected: fusion.conflict_detected,
        fusion_failed: fusion.fusion_failed,
    });
}

/// Append the provenance of a memoised fusion to `record` without touching
/// any dataset.  `dirty` must still hold the tuple's pre-fusion values: this
/// produces exactly the `CellChange`s and `FusionOutcome` that
/// [`apply_tuple_fusion`] would while applying the fusion to a fresh clone of
/// `dirty`.  The incremental session uses it to rebuild the FSCR record from
/// its memoised fusions at `outcome()` time instead of re-fusing the world.
pub fn record_tuple_fusion(
    dirty: &Dataset,
    pool: &dataset::ValuePool,
    t: TupleId,
    fusion: &TupleFusion,
    record: &mut FscrRecord,
) {
    for &(attr, value) in &fusion.fused {
        let old = dirty.value_id(t, attr);
        if old != value {
            record.changes.push(CellChange {
                cell: CellRef::new(t, attr),
                old: pool.resolve(old).to_string(),
                new: pool.resolve(value).to_string(),
            });
        }
    }
    record.outcomes.push(FusionOutcome {
        tuple: t,
        fused: fusion
            .fused
            .iter()
            .map(|&(a, v)| {
                (
                    dirty.schema().attr_name(a).to_string(),
                    pool.resolve(v).to_string(),
                )
            })
            .collect(),
        f_score: fusion.f_score,
        conflict_detected: fusion.conflict_detected,
        fusion_failed: fusion.fusion_failed,
    });
}

/// Whether a γ disagrees with the attribute assignment built so far.
fn conflicts_with_fusion(gamma: &Gamma, fused: &[(AttrId, ValueId)]) -> bool {
    gamma
        .attr_value_pairs()
        .into_iter()
        .any(|(attr, value)| fused.iter().any(|&(a, v)| a == attr && v != value))
}

/// All permutations of `0..n` (Heap's algorithm).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agp::AbnormalGroupProcessor;
    use crate::index::MlnIndex;
    use crate::rsc::ReliabilityCleaner;
    use crate::weights::assign_weights;
    use dataset::sample_hospital_dataset;
    use distance::Metric;
    use rules::sample_hospital_rules;

    fn stage1_index(ds: &Dataset) -> MlnIndex {
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(ds, &rules).unwrap();
        AbnormalGroupProcessor::new(1, Metric::Levenshtein).process(&mut index);
        assign_weights(&mut index);
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        index
    }

    #[test]
    fn example3_t3_is_fully_repaired() {
        // Example 3: the final fusion of t3 is
        // {HN: ELIZA, CT: BOAZ, ST: AL, PN: 2567688400}.
        let dirty = sample_hospital_dataset();
        let index = stage1_index(&dirty);
        let resolver = ConflictResolver::new(6);
        let (repaired, record) = resolver.resolve(&dirty, &index);

        let t3 = TupleId(2);
        let schema = repaired.schema();
        assert_eq!(repaired.value(t3, schema.attr_id("HN").unwrap()), "ELIZA");
        assert_eq!(repaired.value(t3, schema.attr_id("CT").unwrap()), "BOAZ");
        assert_eq!(repaired.value(t3, schema.attr_id("ST").unwrap()), "AL");
        assert_eq!(
            repaired.value(t3, schema.attr_id("PN").unwrap()),
            "2567688400"
        );

        // The conflict on t3.CT between version 1 and version 3 was detected.
        let outcome = record.outcomes.iter().find(|o| o.tuple == t3).unwrap();
        assert!(outcome.conflict_detected);
        assert!(!outcome.fusion_failed);
        assert!(outcome.f_score > 0.0);
    }

    #[test]
    fn whole_sample_is_repaired_to_ground_truth() {
        let dirty = sample_hospital_dataset();
        let truth = dataset::sample_hospital_truth();
        let index = stage1_index(&dirty);
        let (repaired, _) = ConflictResolver::new(6).resolve(&dirty, &index);
        assert_eq!(
            repaired, truth,
            "the running example should be cleaned perfectly"
        );
    }

    #[test]
    fn tuples_without_conflicts_are_fused_directly() {
        let dirty = sample_hospital_dataset();
        let index = stage1_index(&dirty);
        let (_, record) = ConflictResolver::new(6).resolve(&dirty, &index);
        // t1 has consistent versions (no conflicts).
        let t1 = record
            .outcomes
            .iter()
            .find(|o| o.tuple == TupleId(0))
            .unwrap();
        assert!(!t1.conflict_detected);
        assert!(!t1.fusion_failed);
    }

    #[test]
    fn changes_are_recorded_per_cell() {
        let dirty = sample_hospital_dataset();
        let index = stage1_index(&dirty);
        let (repaired, record) = ConflictResolver::new(6).resolve(&dirty, &index);
        // Every recorded change corresponds to an actual difference.
        for change in &record.changes {
            assert_eq!(repaired.cell(change.cell), change.new);
            assert_eq!(dirty.cell(change.cell), change.old);
            assert_ne!(change.old, change.new);
        }
        // Table 1 has 4 erroneous cells; all are rewritten.
        assert_eq!(record.changed_cell_count(), 4);
    }

    #[test]
    fn parallel_resolve_matches_serial_byte_for_byte() {
        let dirty = sample_hospital_dataset();
        let index = stage1_index(&dirty);
        let resolver = ConflictResolver::new(6);
        let (serial_ds, serial_rec) = resolver.resolve(&dirty, &index);
        let (par_ds, par_rec) = resolver.resolve_parallel(&dirty, &index);
        assert_eq!(serial_ds, par_ds);
        assert_eq!(serial_rec, par_rec);
    }

    #[test]
    fn restricted_plan_matches_the_full_plan_for_its_tuples() {
        let dirty = sample_hospital_dataset();
        let index = stage1_index(&dirty);
        let resolver = ConflictResolver::new(6);
        let full = resolver.plan(&index);
        let subset: HashSet<TupleId> = [TupleId(2), TupleId(4)].into_iter().collect();
        let restricted = resolver.plan_for(&index, &dirty, &sample_hospital_rules(), &subset);
        for &t in &subset {
            assert_eq!(
                resolver.fuse_tuple(&full, t),
                resolver.fuse_tuple(&restricted, t),
                "restricted plan diverged for {t:?}"
            );
        }
    }

    #[test]
    fn permutations_cover_factorial() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // All permutations are distinct.
        let mut p = permutations(4);
        p.sort();
        p.dedup();
        assert_eq!(p.len(), 24);
    }

    #[test]
    fn greedy_fallback_used_beyond_bound() {
        let dirty = sample_hospital_dataset();
        let index = stage1_index(&dirty);
        // Force the greedy path by setting the bound to zero — the sample
        // should still be repaired to the ground truth because conflicts are
        // resolvable in the probability-descending order here.
        let (repaired, _) = ConflictResolver::new(0).resolve(&dirty, &index);
        assert_eq!(repaired, dataset::sample_hospital_truth());
    }
}
