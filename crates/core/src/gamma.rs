//! Pieces of data (γ): the unit of cleaning in MLNClean.
//!
//! A γ is the projection of one or more tuples onto the attributes of one
//! rule — its reason-part values plus its result-part values.  All tuples
//! carrying exactly the same projected values share one γ, and the number of
//! such tuples is the γ's *support* `c(γ)` (the prior-weight numerator of
//! Eq. 4 in the paper).

use dataset::TupleId;
use rules::RuleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A piece of data: one distinct (reason values, result values) combination
/// within a block, together with its supporting tuples and learned weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    /// The rule whose block this γ belongs to.
    pub rule: RuleId,
    /// Attribute names of the reason part, in rule order.
    pub reason_attrs: Vec<String>,
    /// Values of the reason part.
    pub reason_values: Vec<String>,
    /// Attribute names of the result part, in rule order.
    pub result_attrs: Vec<String>,
    /// Values of the result part.
    pub result_values: Vec<String>,
    /// Tuples carrying exactly these values (the support `c(γ)`).
    pub tuples: Vec<TupleId>,
    /// Raw weight learned by the block's MLN weight learning.
    pub weight: f64,
    /// `Pr(γ)` — the weight mapped through the block softmax (Eq. 3): a
    /// positive, block-normalized probability used by the reliability and
    /// fusion scores.
    pub probability: f64,
}

impl Gamma {
    /// Create a γ with no learned weight yet (weight learning fills the
    /// `weight`/`probability` fields later).
    pub fn new(
        rule: RuleId,
        reason_attrs: Vec<String>,
        reason_values: Vec<String>,
        result_attrs: Vec<String>,
        result_values: Vec<String>,
    ) -> Self {
        debug_assert_eq!(reason_attrs.len(), reason_values.len());
        debug_assert_eq!(result_attrs.len(), result_values.len());
        Gamma {
            rule,
            reason_attrs,
            reason_values,
            result_attrs,
            result_values,
            tuples: Vec::new(),
            weight: 0.0,
            probability: 0.0,
        }
    }

    /// Number of tuples supporting this γ (`c(γ)`).
    pub fn support(&self) -> usize {
        self.tuples.len()
    }

    /// All values of the γ, reason part first — the record compared by the
    /// distance metric in AGP and RSC.
    pub fn values(&self) -> Vec<&str> {
        self.reason_values
            .iter()
            .chain(self.result_values.iter())
            .map(|s| s.as_str())
            .collect()
    }

    /// `(attribute, value)` pairs of the whole γ, reason part first.  If an
    /// attribute appears in both parts (possible for some DCs) the reason
    /// occurrence wins.
    pub fn attr_value_pairs(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = Vec::new();
        for (a, v) in self.reason_attrs.iter().zip(&self.reason_values) {
            if !out.iter().any(|(x, _)| *x == a.as_str()) {
                out.push((a.as_str(), v.as_str()));
            }
        }
        for (a, v) in self.result_attrs.iter().zip(&self.result_values) {
            if !out.iter().any(|(x, _)| *x == a.as_str()) {
                out.push((a.as_str(), v.as_str()));
            }
        }
        out
    }

    /// The value this γ assigns to `attr`, if the γ covers that attribute.
    pub fn value_of(&self, attr: &str) -> Option<&str> {
        self.attr_value_pairs()
            .into_iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| v)
    }

    /// Whether two γs conflict: they share at least one attribute and
    /// disagree on at least one shared attribute (the conflict test of
    /// Algorithm 2).
    pub fn conflicts_with(&self, other: &Gamma) -> bool {
        let mut share_any = false;
        for (attr, value) in self.attr_value_pairs() {
            if let Some(other_value) = other.value_of(attr) {
                share_any = true;
                if other_value != value {
                    return true;
                }
            }
        }
        let _ = share_any;
        false
    }
}

impl fmt::Display for Gamma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pairs: Vec<String> = self
            .attr_value_pairs()
            .into_iter()
            .map(|(a, v)| format!("{a}: {v}"))
            .collect();
        write!(f, "{{{}}}", pairs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma(reason: &[(&str, &str)], result: &[(&str, &str)]) -> Gamma {
        Gamma::new(
            RuleId(0),
            reason.iter().map(|(a, _)| a.to_string()).collect(),
            reason.iter().map(|(_, v)| v.to_string()).collect(),
            result.iter().map(|(a, _)| a.to_string()).collect(),
            result.iter().map(|(_, v)| v.to_string()).collect(),
        )
    }

    #[test]
    fn values_and_pairs() {
        let g = gamma(&[("CT", "BOAZ")], &[("ST", "AL")]);
        assert_eq!(g.values(), vec!["BOAZ", "AL"]);
        assert_eq!(g.attr_value_pairs(), vec![("CT", "BOAZ"), ("ST", "AL")]);
        assert_eq!(g.value_of("ST"), Some("AL"));
        assert_eq!(g.value_of("PN"), None);
    }

    #[test]
    fn conflict_detection_matches_example3() {
        // γ1 from B1, γ2 from B2, γ3 from B3 of the paper's Example 3.
        let g1 = gamma(&[("CT", "DOTHAN")], &[("ST", "AL")]);
        let g2 = gamma(&[("PN", "2567688400")], &[("ST", "AL")]);
        let g3 = gamma(&[("HN", "ELIZA"), ("CT", "BOAZ")], &[("PN", "2567688400")]);
        assert!(!g1.conflicts_with(&g2), "no shared attribute disagrees");
        assert!(!g2.conflicts_with(&g3), "PN agrees");
        assert!(g1.conflicts_with(&g3), "CT: DOTHAN vs BOAZ");
        assert!(g3.conflicts_with(&g1), "conflict is symmetric");
    }

    #[test]
    fn no_shared_attributes_means_no_conflict() {
        let a = gamma(&[("A", "1")], &[("B", "2")]);
        let b = gamma(&[("C", "3")], &[("D", "4")]);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn display_matches_paper_notation() {
        let g = gamma(&[("CT", "BOAZ")], &[("ST", "AL")]);
        assert_eq!(g.to_string(), "{CT: BOAZ, ST: AL}");
    }

    #[test]
    fn support_counts_tuples() {
        let mut g = gamma(&[("CT", "BOAZ")], &[("ST", "AL")]);
        assert_eq!(g.support(), 0);
        g.tuples.push(TupleId(4));
        g.tuples.push(TupleId(5));
        assert_eq!(g.support(), 2);
    }
}
