//! Pieces of data (γ): the unit of cleaning in MLNClean.
//!
//! A γ is the projection of one or more tuples onto the attributes of one
//! rule — its reason-part values plus its result-part values.  All tuples
//! carrying exactly the same projected values share one γ, and the number of
//! such tuples is the γ's *support* `c(γ)` (the prior-weight numerator of
//! Eq. 4 in the paper).
//!
//! Values are stored as interned [`ValueId`]s and attributes as [`AttrId`]s,
//! so γ-to-γ equality and conflict checks are pure integer comparisons; the
//! strings only materialize when a distance must be computed (through the
//! index's [`ValuePool`]) or when provenance records are emitted.

use dataset::{AttrId, Schema, TupleId, ValueId, ValuePool};
use rules::RuleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A piece of data: one distinct (reason values, result values) combination
/// within a block, together with its supporting tuples and learned weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    /// The rule whose block this γ belongs to.
    pub rule: RuleId,
    /// Attributes of the reason part, in rule order.
    pub reason_attrs: Vec<AttrId>,
    /// Interned values of the reason part.
    pub reason_values: Vec<ValueId>,
    /// Attributes of the result part, in rule order.
    pub result_attrs: Vec<AttrId>,
    /// Interned values of the result part.
    pub result_values: Vec<ValueId>,
    /// Tuples carrying exactly these values (the support `c(γ)`).
    pub tuples: Vec<TupleId>,
    /// Raw weight learned by the block's MLN weight learning.
    pub weight: f64,
    /// `Pr(γ)` — the weight mapped through the block softmax (Eq. 3): a
    /// positive, block-normalized probability used by the reliability and
    /// fusion scores.
    pub probability: f64,
}

impl Gamma {
    /// Create a γ with no learned weight yet (weight learning fills the
    /// `weight`/`probability` fields later).
    pub fn new(
        rule: RuleId,
        reason_attrs: Vec<AttrId>,
        reason_values: Vec<ValueId>,
        result_attrs: Vec<AttrId>,
        result_values: Vec<ValueId>,
    ) -> Self {
        debug_assert_eq!(reason_attrs.len(), reason_values.len());
        debug_assert_eq!(result_attrs.len(), result_values.len());
        Gamma {
            rule,
            reason_attrs,
            reason_values,
            result_attrs,
            result_values,
            tuples: Vec::new(),
            weight: 0.0,
            probability: 0.0,
        }
    }

    /// Number of tuples supporting this γ (`c(γ)`).
    pub fn support(&self) -> usize {
        self.tuples.len()
    }

    /// All value ids of the γ, reason part first — the record compared by the
    /// distance cache in AGP and RSC.
    pub fn value_ids(&self) -> Vec<ValueId> {
        self.reason_values
            .iter()
            .chain(self.result_values.iter())
            .copied()
            .collect()
    }

    /// All values of the γ resolved through `pool`, reason part first.
    pub fn resolve_values<'p>(&self, pool: &'p ValuePool) -> Vec<&'p str> {
        self.reason_values
            .iter()
            .chain(self.result_values.iter())
            .map(|&v| pool.resolve(v))
            .collect()
    }

    /// Resolve only the reason-part values.
    pub fn resolve_reason_values<'p>(&self, pool: &'p ValuePool) -> Vec<&'p str> {
        pool.resolve_all(&self.reason_values)
    }

    /// Resolve only the result-part values.
    pub fn resolve_result_values<'p>(&self, pool: &'p ValuePool) -> Vec<&'p str> {
        pool.resolve_all(&self.result_values)
    }

    /// `(attribute, value)` id pairs of the whole γ, reason part first.  If
    /// an attribute appears in both parts (possible for some DCs) the reason
    /// occurrence wins.
    pub fn attr_value_pairs(&self) -> Vec<(AttrId, ValueId)> {
        let mut out: Vec<(AttrId, ValueId)> = Vec::new();
        for (&a, &v) in self.reason_attrs.iter().zip(&self.reason_values) {
            if !out.iter().any(|(x, _)| *x == a) {
                out.push((a, v));
            }
        }
        for (&a, &v) in self.result_attrs.iter().zip(&self.result_values) {
            if !out.iter().any(|(x, _)| *x == a) {
                out.push((a, v));
            }
        }
        out
    }

    /// The value id this γ assigns to `attr`, if the γ covers that attribute.
    pub fn value_of(&self, attr: AttrId) -> Option<ValueId> {
        self.attr_value_pairs()
            .into_iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| v)
    }

    /// Whether two γs conflict: they share at least one attribute and
    /// disagree on at least one shared attribute (the conflict test of
    /// Algorithm 2).  Pure integer comparisons — no strings are resolved.
    pub fn conflicts_with(&self, other: &Gamma) -> bool {
        for (attr, value) in self.attr_value_pairs() {
            if let Some(other_value) = other.value_of(attr) {
                if other_value != value {
                    return true;
                }
            }
        }
        false
    }

    /// Render the γ in the paper's `{CT: BOAZ, ST: AL}` notation, resolving
    /// attribute names and values through the given schema and pool.
    pub fn display_in(&self, schema: &Schema, pool: &ValuePool) -> String {
        let pairs: Vec<String> = self
            .attr_value_pairs()
            .into_iter()
            .map(|(a, v)| format!("{}: {}", schema.attr_name(a), pool.resolve(v)))
            .collect();
        format!("{{{}}}", pairs.join(", "))
    }
}

impl fmt::Display for Gamma {
    /// Pool-free rendering with raw ids (`{A1: v3, A2: v0}`); use
    /// [`Gamma::display_in`] for resolved output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pairs: Vec<String> = self
            .attr_value_pairs()
            .into_iter()
            .map(|(a, v)| format!("{a}: {v}"))
            .collect();
        write!(f, "{{{}}}", pairs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::Schema;

    /// Test pool over the running example's constants plus a helper building
    /// γs the way the index does.
    fn pool() -> (Schema, ValuePool) {
        let schema = Schema::new(&["HN", "CT", "ST", "PN"]);
        let mut pool = ValuePool::new();
        pool.intern_all(["ELIZA", "DOTHAN", "BOAZ", "AL", "AK", "2567688400"]);
        (schema, pool)
    }

    fn gamma(
        schema: &Schema,
        pool: &mut ValuePool,
        reason: &[(&str, &str)],
        result: &[(&str, &str)],
    ) -> Gamma {
        Gamma::new(
            RuleId(0),
            reason
                .iter()
                .map(|(a, _)| schema.attr_id(a).unwrap())
                .collect(),
            reason.iter().map(|(_, v)| pool.intern(v)).collect(),
            result
                .iter()
                .map(|(a, _)| schema.attr_id(a).unwrap())
                .collect(),
            result.iter().map(|(_, v)| pool.intern(v)).collect(),
        )
    }

    #[test]
    fn values_and_pairs() {
        let (schema, mut pool) = pool();
        let g = gamma(&schema, &mut pool, &[("CT", "BOAZ")], &[("ST", "AL")]);
        assert_eq!(g.resolve_values(&pool), vec!["BOAZ", "AL"]);
        let ct = schema.attr_id("CT").unwrap();
        let st = schema.attr_id("ST").unwrap();
        let pn = schema.attr_id("PN").unwrap();
        assert_eq!(
            g.attr_value_pairs(),
            vec![
                (ct, pool.lookup("BOAZ").unwrap()),
                (st, pool.lookup("AL").unwrap())
            ]
        );
        assert_eq!(g.value_of(st), pool.lookup("AL"));
        assert_eq!(g.value_of(pn), None);
        assert_eq!(g.value_ids().len(), 2);
    }

    #[test]
    fn conflict_detection_matches_example3() {
        // γ1 from B1, γ2 from B2, γ3 from B3 of the paper's Example 3.
        let (schema, mut pool) = pool();
        let g1 = gamma(&schema, &mut pool, &[("CT", "DOTHAN")], &[("ST", "AL")]);
        let g2 = gamma(&schema, &mut pool, &[("PN", "2567688400")], &[("ST", "AL")]);
        let g3 = gamma(
            &schema,
            &mut pool,
            &[("HN", "ELIZA"), ("CT", "BOAZ")],
            &[("PN", "2567688400")],
        );
        assert!(!g1.conflicts_with(&g2), "no shared attribute disagrees");
        assert!(!g2.conflicts_with(&g3), "PN agrees");
        assert!(g1.conflicts_with(&g3), "CT: DOTHAN vs BOAZ");
        assert!(g3.conflicts_with(&g1), "conflict is symmetric");
    }

    #[test]
    fn no_shared_attributes_means_no_conflict() {
        let schema = Schema::new(&["A", "B", "C", "D"]);
        let mut pool = ValuePool::new();
        let a = gamma(&schema, &mut pool, &[("A", "1")], &[("B", "2")]);
        let b = gamma(&schema, &mut pool, &[("C", "3")], &[("D", "4")]);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn display_matches_paper_notation() {
        let (schema, mut pool) = pool();
        let g = gamma(&schema, &mut pool, &[("CT", "BOAZ")], &[("ST", "AL")]);
        assert_eq!(g.display_in(&schema, &pool), "{CT: BOAZ, ST: AL}");
    }

    #[test]
    fn support_counts_tuples() {
        let (schema, mut pool) = pool();
        let mut g = gamma(&schema, &mut pool, &[("CT", "BOAZ")], &[("ST", "AL")]);
        assert_eq!(g.support(), 0);
        g.tuples.push(TupleId(4));
        g.tuples.push(TupleId(5));
        assert_eq!(g.support(), 2);
    }
}
