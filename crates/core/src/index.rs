//! The two-layer **MLN index** (Section 4 of the paper).
//!
//! The first layer has one [`Block`] per rule; the second layer partitions a
//! block's pieces of data into [`Group`]s sharing the same reason-part
//! values.  Cleaning then proceeds block by block, group by group, never
//! needing information from outside the block — this is what shrinks the
//! search space of repair candidates.
//!
//! Group keys are interned `Vec<ValueId>`s: per-tuple grouping is hash work
//! over `u32`s, with a single string-ordered sort at the end of construction
//! so block/group ordering (and therefore all downstream tie-breaking) is
//! identical to the historical string-keyed index.  The index carries a
//! snapshot of the dataset's [`ValuePool`], so every consumer (AGP, RSC,
//! FSCR, weight merging, reporting) can resolve ids without re-touching the
//! dataset.
//!
//! Construction cost is `O(|rules| × |tuples|)` as analysed in the paper.

use crate::gamma::Gamma;
use dataset::{AttrId, Dataset, TupleId, ValueId, ValuePool};
use rules::{RuleId, RuleSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A second-layer group: all γs sharing the same reason-part values within a
/// block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// The shared reason-part values (interned).
    pub key: Vec<ValueId>,
    /// The distinct pieces of data in the group (same reason part, possibly
    /// different result parts — more than one γ means the group is dirty).
    pub gammas: Vec<Gamma>,
}

impl Group {
    /// Create a group from its key.
    pub fn new(key: Vec<ValueId>) -> Self {
        Group {
            key,
            gammas: Vec::new(),
        }
    }

    /// Total number of tuples related to the group's γs — the quantity AGP
    /// compares against the threshold τ.
    pub fn tuple_count(&self) -> usize {
        self.gammas.iter().map(|g| g.support()).sum()
    }

    /// Number of distinct γs.
    pub fn gamma_count(&self) -> usize {
        self.gammas.len()
    }

    /// The γ* related to the most tuples — the group representative used for
    /// inter-group distances in AGP.
    pub fn dominant_gamma(&self) -> Option<&Gamma> {
        self.gammas.iter().max_by_key(|g| g.support())
    }

    /// All tuple ids covered by the group.
    pub fn all_tuples(&self) -> Vec<TupleId> {
        let mut out: Vec<TupleId> = self.gammas.iter().flat_map(|g| g.tuples.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Whether the group is already in the ideal clean state (exactly one γ).
    pub fn is_clean(&self) -> bool {
        self.gammas.len() == 1
    }

    /// The group key resolved through a pool.
    pub fn resolve_key<'p>(&self, pool: &'p ValuePool) -> Vec<&'p str> {
        pool.resolve_all(&self.key)
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let key: Vec<String> = self.key.iter().map(|v| v.to_string()).collect();
        writeln!(
            f,
            "group[{}] ({} tuples)",
            key.join("|"),
            self.tuple_count()
        )?;
        for g in &self.gammas {
            writeln!(f, "  {g} x{}", g.support())?;
        }
        Ok(())
    }
}

/// A first-layer block: every piece of data of one rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The rule this block corresponds to.
    pub rule: RuleId,
    /// Reason-part attributes of the rule (schema ids, rule order).
    pub reason_attrs: Vec<AttrId>,
    /// Result-part attributes of the rule (schema ids, rule order).
    pub result_attrs: Vec<AttrId>,
    /// The block's groups, ordered by their string-resolved keys.
    pub groups: Vec<Group>,
}

impl Block {
    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Find the group with the given (interned) reason-part key.
    pub fn group_by_key_ids(&self, key: &[ValueId]) -> Option<&Group> {
        self.groups.iter().find(|g| g.key == key)
    }

    /// Iterate over every γ in the block.
    pub fn gammas(&self) -> impl Iterator<Item = &Gamma> {
        self.groups.iter().flat_map(|g| g.gammas.iter())
    }

    /// Total number of distinct γs in the block (the `M` of Eq. 4).
    pub fn gamma_count(&self) -> usize {
        self.groups.iter().map(|g| g.gamma_count()).sum()
    }
}

/// Error returned when the index cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A rule references an attribute that is not in the dataset schema.
    UnknownAttribute {
        /// The offending rule.
        rule: RuleId,
        /// The missing attribute name.
        attribute: String,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::UnknownAttribute { rule, attribute } => {
                write!(f, "rule {rule} references unknown attribute {attribute:?}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// The full two-layer MLN index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlnIndex {
    /// One block per rule, in rule order.
    pub blocks: Vec<Block>,
    /// Snapshot of the indexed dataset's value pool: every id stored in the
    /// blocks resolves here.
    pool: ValuePool,
}

impl MlnIndex {
    /// Build the index for `ds` under `rules` (lines 1–13 of Algorithm 1).
    pub fn build(ds: &Dataset, rules: &RuleSet) -> Result<Self, IndexError> {
        // Validate every rule against the schema first, so later projections
        // cannot panic.
        for (rule_id, rule) in rules.iter_with_ids() {
            for attr in rule.all_attrs() {
                if ds.schema().attr_id(&attr).is_none() {
                    return Err(IndexError::UnknownAttribute {
                        rule: rule_id,
                        attribute: attr,
                    });
                }
            }
        }

        let schema = ds.schema();
        let pool = ds.pool().clone();
        let mut blocks = Vec::with_capacity(rules.len());
        for (rule_id, rule) in rules.iter_with_ids() {
            let reason_attrs: Vec<AttrId> = rule
                .reason_attrs()
                .iter()
                .map(|a| schema.attr_id(a).expect("validated above"))
                .collect();
            let result_attrs: Vec<AttrId> = rule
                .result_attrs()
                .iter()
                .map(|a| schema.attr_id(a).expect("validated above"))
                .collect();

            // group key -> (full γ key -> gamma); all keys are id vectors, so
            // the per-tuple work is integer hashing — no string is cloned,
            // hashed or compared while scanning the data.
            let mut groups: HashMap<Vec<ValueId>, HashMap<Vec<ValueId>, Gamma>> = HashMap::new();
            for t in ds.tuples() {
                if !rule.is_relevant(schema, &t) {
                    continue;
                }
                let vl = t.project_ids(&reason_attrs);
                let vr = t.project_ids(&result_attrs);
                let mut full_key = vl.clone();
                full_key.extend(vr.iter().copied());

                let gamma = groups
                    .entry(vl.clone())
                    .or_default()
                    .entry(full_key)
                    .or_insert_with(|| {
                        Gamma::new(rule_id, reason_attrs.clone(), vl, result_attrs.clone(), vr)
                    });
                gamma.tuples.push(t.id());
            }

            // Restore the historical deterministic ordering: groups sorted by
            // their string-resolved keys, γs within a group by their resolved
            // full value vector (exactly the old BTreeMap-over-Vec<String>
            // iteration order).
            let mut groups: Vec<Group> = groups
                .into_iter()
                .map(|(key, gammas)| {
                    let mut gammas: Vec<Gamma> = gammas.into_values().collect();
                    gammas.sort_by(|a, b| {
                        let ka = a
                            .reason_values
                            .iter()
                            .chain(&a.result_values)
                            .map(|&v| pool.resolve(v));
                        let kb = b
                            .reason_values
                            .iter()
                            .chain(&b.result_values)
                            .map(|&v| pool.resolve(v));
                        ka.cmp(kb)
                    });
                    Group { key, gammas }
                })
                .collect();
            groups.sort_by(|a, b| {
                let ka = a.key.iter().map(|&v| pool.resolve(v));
                let kb = b.key.iter().map(|&v| pool.resolve(v));
                ka.cmp(kb)
            });
            blocks.push(Block {
                rule: rule_id,
                reason_attrs,
                result_attrs,
                groups,
            });
        }
        Ok(MlnIndex { blocks, pool })
    }

    /// The pool snapshot every block id resolves through.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Simultaneous mutable access to the blocks and shared access to the
    /// pool (the borrow shape AGP/RSC need to rewrite blocks while resolving
    /// strings).
    pub fn split_mut(&mut self) -> (&mut Vec<Block>, &ValuePool) {
        (&mut self.blocks, &self.pool)
    }

    /// The block of a rule.
    pub fn block(&self, rule: RuleId) -> &Block {
        &self.blocks[rule.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, rule: RuleId) -> &mut Block {
        &mut self.blocks[rule.index()]
    }

    /// Number of blocks (= number of rules).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Find a group by its string key within a rule's block (resolves through
    /// the pool snapshot; mostly a test/debug convenience).
    pub fn group_by_key(&self, rule: RuleId, key: &[&str]) -> Option<&Group> {
        let ids: Option<Vec<ValueId>> = key.iter().map(|v| self.pool.lookup(v)).collect();
        let ids = ids?;
        self.block(rule).group_by_key_ids(&ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;
    use rules::sample_hospital_rules;

    fn build_sample_index() -> MlnIndex {
        MlnIndex::build(&sample_hospital_dataset(), &sample_hospital_rules()).unwrap()
    }

    #[test]
    fn figure2_block_and_group_counts() {
        // Figure 2: blocks B1, B2, B3 have 3, 3, 2 groups respectively.
        let index = build_sample_index();
        assert_eq!(index.block_count(), 3);
        let counts: Vec<usize> = index.blocks.iter().map(|b| b.group_count()).collect();
        assert_eq!(counts, vec![3, 3, 2]);
    }

    #[test]
    fn block1_group_keys_match_figure2() {
        let index = build_sample_index();
        let b1 = index.block(RuleId(0));
        let keys: Vec<Vec<&str>> = b1
            .groups
            .iter()
            .map(|g| g.resolve_key(index.pool()))
            .collect();
        assert!(keys.contains(&vec!["DOTHAN"]));
        assert!(keys.contains(&vec!["DOTH"]));
        assert!(keys.contains(&vec!["BOAZ"]));
    }

    #[test]
    fn groups_are_ordered_by_string_key() {
        // The interned index must preserve the historical BTreeMap-over-
        // strings group order, not id (first-appearance) order.
        let index = build_sample_index();
        for block in &index.blocks {
            let keys: Vec<Vec<&str>> = block
                .groups
                .iter()
                .map(|g| g.resolve_key(index.pool()))
                .collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "block {:?} groups out of order", block.rule);
        }
    }

    #[test]
    fn boaz_group_has_two_gammas_with_expected_support() {
        let index = build_sample_index();
        let boaz = index.group_by_key(RuleId(0), &["BOAZ"]).unwrap();
        assert_eq!(boaz.gamma_count(), 2);
        assert_eq!(boaz.tuple_count(), 3);
        let dominant = boaz.dominant_gamma().unwrap();
        assert_eq!(dominant.resolve_result_values(index.pool()), vec!["AL"]);
        assert_eq!(dominant.support(), 2);
        assert!(!boaz.is_clean());
    }

    #[test]
    fn cfd_block_only_contains_relevant_tuples() {
        let index = build_sample_index();
        let b3 = index.block(RuleId(2));
        let all_tuples: Vec<TupleId> = b3.groups.iter().flat_map(|g| g.all_tuples()).collect();
        assert!(!all_tuples.contains(&TupleId(0)));
        assert!(!all_tuples.contains(&TupleId(1)));
        assert_eq!(all_tuples.len(), 4);
    }

    #[test]
    fn dc_block_groups_by_phone_number() {
        let ds = sample_hospital_dataset();
        let index = build_sample_index();
        let b2 = index.block(RuleId(1));
        assert_eq!(b2.reason_attrs, vec![ds.schema().attr_id("PN").unwrap()]);
        assert_eq!(b2.result_attrs, vec![ds.schema().attr_id("ST").unwrap()]);
        let g = index.group_by_key(RuleId(1), &["2567688400"]).unwrap();
        assert_eq!(g.gamma_count(), 2, "AK and AL versions");
        assert_eq!(g.tuple_count(), 3);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let ds = sample_hospital_dataset();
        let mut rules = rules::RuleSet::default();
        rules.push(rules::Rule::Fd(rules::FunctionalDependency::new(
            vec!["CT"],
            vec!["MISSING"],
        )));
        let err = MlnIndex::build(&ds, &rules).unwrap_err();
        assert_eq!(
            err,
            IndexError::UnknownAttribute {
                rule: RuleId(0),
                attribute: "MISSING".to_string()
            }
        );
    }

    #[test]
    fn clean_data_produces_singleton_groups() {
        let truth = dataset::sample_hospital_truth();
        let index = MlnIndex::build(&truth, &sample_hospital_rules()).unwrap();
        for block in &index.blocks {
            for group in &block.groups {
                assert!(
                    group.is_clean(),
                    "clean data must give one γ per group: {group}"
                );
            }
        }
    }

    #[test]
    fn index_pool_matches_dataset_pool() {
        let ds = sample_hospital_dataset();
        let index = MlnIndex::build(&ds, &sample_hospital_rules()).unwrap();
        assert_eq!(index.pool(), ds.pool());
        // Every id the index stores resolves in the snapshot.
        for block in &index.blocks {
            for gamma in block.gammas() {
                for &v in gamma.reason_values.iter().chain(&gamma.result_values) {
                    assert!(index.pool().contains(v));
                }
            }
        }
    }
}
