//! The two-layer **MLN index** (Section 4 of the paper).
//!
//! The first layer has one [`Block`] per rule; the second layer partitions a
//! block's pieces of data into [`Group`]s sharing the same reason-part
//! values.  Cleaning then proceeds block by block, group by group, never
//! needing information from outside the block — this is what shrinks the
//! search space of repair candidates.
//!
//! Construction cost is `O(|rules| × |tuples|)` as analysed in the paper.

use crate::gamma::Gamma;
use dataset::{Dataset, TupleId};
use rules::{RuleId, RuleSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A second-layer group: all γs sharing the same reason-part values within a
/// block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// The shared reason-part values.
    pub key: Vec<String>,
    /// The distinct pieces of data in the group (same reason part, possibly
    /// different result parts — more than one γ means the group is dirty).
    pub gammas: Vec<Gamma>,
}

impl Group {
    /// Create a group from its key.
    pub fn new(key: Vec<String>) -> Self {
        Group {
            key,
            gammas: Vec::new(),
        }
    }

    /// Total number of tuples related to the group's γs — the quantity AGP
    /// compares against the threshold τ.
    pub fn tuple_count(&self) -> usize {
        self.gammas.iter().map(|g| g.support()).sum()
    }

    /// Number of distinct γs.
    pub fn gamma_count(&self) -> usize {
        self.gammas.len()
    }

    /// The γ* related to the most tuples — the group representative used for
    /// inter-group distances in AGP.
    pub fn dominant_gamma(&self) -> Option<&Gamma> {
        self.gammas.iter().max_by_key(|g| g.support())
    }

    /// All tuple ids covered by the group.
    pub fn all_tuples(&self) -> Vec<TupleId> {
        let mut out: Vec<TupleId> = self.gammas.iter().flat_map(|g| g.tuples.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Whether the group is already in the ideal clean state (exactly one γ).
    pub fn is_clean(&self) -> bool {
        self.gammas.len() == 1
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "group[{}] ({} tuples)",
            self.key.join("|"),
            self.tuple_count()
        )?;
        for g in &self.gammas {
            writeln!(f, "  {g} x{}", g.support())?;
        }
        Ok(())
    }
}

/// A first-layer block: every piece of data of one rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The rule this block corresponds to.
    pub rule: RuleId,
    /// Reason-part attribute names of the rule.
    pub reason_attrs: Vec<String>,
    /// Result-part attribute names of the rule.
    pub result_attrs: Vec<String>,
    /// The block's groups.
    pub groups: Vec<Group>,
}

impl Block {
    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Find the group with the given reason-part key.
    pub fn group_by_key(&self, key: &[String]) -> Option<&Group> {
        self.groups.iter().find(|g| g.key == key)
    }

    /// Iterate over every γ in the block.
    pub fn gammas(&self) -> impl Iterator<Item = &Gamma> {
        self.groups.iter().flat_map(|g| g.gammas.iter())
    }

    /// Total number of distinct γs in the block (the `M` of Eq. 4).
    pub fn gamma_count(&self) -> usize {
        self.groups.iter().map(|g| g.gamma_count()).sum()
    }
}

/// Error returned when the index cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A rule references an attribute that is not in the dataset schema.
    UnknownAttribute {
        /// The offending rule.
        rule: RuleId,
        /// The missing attribute name.
        attribute: String,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::UnknownAttribute { rule, attribute } => {
                write!(f, "rule {rule} references unknown attribute {attribute:?}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// The full two-layer MLN index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlnIndex {
    /// One block per rule, in rule order.
    pub blocks: Vec<Block>,
}

impl MlnIndex {
    /// Build the index for `ds` under `rules` (lines 1–13 of Algorithm 1).
    pub fn build(ds: &Dataset, rules: &RuleSet) -> Result<Self, IndexError> {
        // Validate every rule against the schema first, so later projections
        // cannot panic.
        for (rule_id, rule) in rules.iter_with_ids() {
            for attr in rule.all_attrs() {
                if ds.schema().attr_id(&attr).is_none() {
                    return Err(IndexError::UnknownAttribute {
                        rule: rule_id,
                        attribute: attr,
                    });
                }
            }
        }

        let schema = ds.schema();
        let mut blocks = Vec::with_capacity(rules.len());
        for (rule_id, rule) in rules.iter_with_ids() {
            let reason_attrs = rule.reason_attrs();
            let result_attrs = rule.result_attrs();

            // group key -> (full γ key -> gamma)
            let mut groups: BTreeMap<Vec<String>, BTreeMap<Vec<String>, Gamma>> = BTreeMap::new();
            for t in ds.tuples() {
                if !rule.is_relevant(schema, t) {
                    continue;
                }
                let vl = rule.reason_values(schema, t);
                let vr = rule.result_values(schema, t);
                let mut full_key = vl.clone();
                full_key.extend(vr.iter().cloned());

                let gamma = groups
                    .entry(vl.clone())
                    .or_default()
                    .entry(full_key)
                    .or_insert_with(|| {
                        Gamma::new(
                            rule_id,
                            reason_attrs.clone(),
                            vl.clone(),
                            result_attrs.clone(),
                            vr.clone(),
                        )
                    });
                gamma.tuples.push(t.id());
            }

            let groups: Vec<Group> = groups
                .into_iter()
                .map(|(key, gammas)| Group {
                    key,
                    gammas: gammas.into_values().collect(),
                })
                .collect();
            blocks.push(Block {
                rule: rule_id,
                reason_attrs,
                result_attrs,
                groups,
            });
        }
        Ok(MlnIndex { blocks })
    }

    /// The block of a rule.
    pub fn block(&self, rule: RuleId) -> &Block {
        &self.blocks[rule.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, rule: RuleId) -> &mut Block {
        &mut self.blocks[rule.index()]
    }

    /// Number of blocks (= number of rules).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;
    use rules::sample_hospital_rules;

    fn build_sample_index() -> MlnIndex {
        MlnIndex::build(&sample_hospital_dataset(), &sample_hospital_rules()).unwrap()
    }

    #[test]
    fn figure2_block_and_group_counts() {
        // Figure 2: blocks B1, B2, B3 have 3, 3, 2 groups respectively.
        let index = build_sample_index();
        assert_eq!(index.block_count(), 3);
        let counts: Vec<usize> = index.blocks.iter().map(|b| b.group_count()).collect();
        assert_eq!(counts, vec![3, 3, 2]);
    }

    #[test]
    fn block1_group_keys_match_figure2() {
        let index = build_sample_index();
        let b1 = index.block(RuleId(0));
        let keys: Vec<Vec<String>> = b1.groups.iter().map(|g| g.key.clone()).collect();
        assert!(keys.contains(&vec!["DOTHAN".to_string()]));
        assert!(keys.contains(&vec!["DOTH".to_string()]));
        assert!(keys.contains(&vec!["BOAZ".to_string()]));
    }

    #[test]
    fn boaz_group_has_two_gammas_with_expected_support() {
        let index = build_sample_index();
        let b1 = index.block(RuleId(0));
        let boaz = b1.group_by_key(&["BOAZ".to_string()]).unwrap();
        assert_eq!(boaz.gamma_count(), 2);
        assert_eq!(boaz.tuple_count(), 3);
        let dominant = boaz.dominant_gamma().unwrap();
        assert_eq!(dominant.result_values, vec!["AL"]);
        assert_eq!(dominant.support(), 2);
        assert!(!boaz.is_clean());
    }

    #[test]
    fn cfd_block_only_contains_relevant_tuples() {
        let index = build_sample_index();
        let b3 = index.block(RuleId(2));
        let all_tuples: Vec<TupleId> = b3.groups.iter().flat_map(|g| g.all_tuples()).collect();
        assert!(!all_tuples.contains(&TupleId(0)));
        assert!(!all_tuples.contains(&TupleId(1)));
        assert_eq!(all_tuples.len(), 4);
    }

    #[test]
    fn dc_block_groups_by_phone_number() {
        let index = build_sample_index();
        let b2 = index.block(RuleId(1));
        assert_eq!(b2.reason_attrs, vec!["PN"]);
        assert_eq!(b2.result_attrs, vec!["ST"]);
        let g = b2.group_by_key(&["2567688400".to_string()]).unwrap();
        assert_eq!(g.gamma_count(), 2, "AK and AL versions");
        assert_eq!(g.tuple_count(), 3);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let ds = sample_hospital_dataset();
        let mut rules = rules::RuleSet::default();
        rules.push(rules::Rule::Fd(rules::FunctionalDependency::new(
            vec!["CT"],
            vec!["MISSING"],
        )));
        let err = MlnIndex::build(&ds, &rules).unwrap_err();
        assert_eq!(
            err,
            IndexError::UnknownAttribute {
                rule: RuleId(0),
                attribute: "MISSING".to_string()
            }
        );
    }

    #[test]
    fn clean_data_produces_singleton_groups() {
        let truth = dataset::sample_hospital_truth();
        let index = MlnIndex::build(&truth, &sample_hospital_rules()).unwrap();
        for block in &index.blocks {
            for group in &block.groups {
                assert!(
                    group.is_clean(),
                    "clean data must give one γ per group: {group}"
                );
            }
        }
    }
}
