//! The two-layer **MLN index** (Section 4 of the paper).
//!
//! The first layer has one [`Block`] per rule; the second layer partitions a
//! block's pieces of data into [`Group`]s sharing the same reason-part
//! values.  Cleaning then proceeds block by block, group by group, never
//! needing information from outside the block — this is what shrinks the
//! search space of repair candidates.
//!
//! Group keys are interned `Vec<ValueId>`s: per-tuple grouping is hash work
//! over `u32`s, with a single string-ordered sort at the end of construction
//! so block/group ordering (and therefore all downstream tie-breaking) is
//! identical to the historical string-keyed index.  The index carries a
//! snapshot of the dataset's [`ValuePool`], so every consumer (AGP, RSC,
//! FSCR, weight merging, reporting) can resolve ids without re-touching the
//! dataset.
//!
//! Construction cost is `O(|rules| × |tuples|)` as analysed in the paper.

use crate::gamma::Gamma;
use dataset::{AttrId, Dataset, TupleId, ValueId, ValuePool};
use rayon::prelude::*;
use rules::{Rule, RuleId, RuleSet};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A second-layer group: all γs sharing the same reason-part values within a
/// block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// The shared reason-part values (interned).
    pub key: Vec<ValueId>,
    /// The distinct pieces of data in the group (same reason part, possibly
    /// different result parts — more than one γ means the group is dirty).
    pub gammas: Vec<Gamma>,
}

impl Group {
    /// Create a group from its key.
    pub fn new(key: Vec<ValueId>) -> Self {
        Group {
            key,
            gammas: Vec::new(),
        }
    }

    /// Total number of tuples related to the group's γs — the quantity AGP
    /// compares against the threshold τ.
    pub fn tuple_count(&self) -> usize {
        self.gammas.iter().map(|g| g.support()).sum()
    }

    /// Number of distinct γs.
    pub fn gamma_count(&self) -> usize {
        self.gammas.len()
    }

    /// The γ* related to the most tuples — the group representative used for
    /// inter-group distances in AGP.
    pub fn dominant_gamma(&self) -> Option<&Gamma> {
        self.gammas.iter().max_by_key(|g| g.support())
    }

    /// All tuple ids covered by the group.
    pub fn all_tuples(&self) -> Vec<TupleId> {
        let mut out: Vec<TupleId> = self.gammas.iter().flat_map(|g| g.tuples.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Whether the group is already in the ideal clean state (exactly one γ).
    pub fn is_clean(&self) -> bool {
        self.gammas.len() == 1
    }

    /// The group key resolved through a pool.
    pub fn resolve_key<'p>(&self, pool: &'p ValuePool) -> Vec<&'p str> {
        pool.resolve_all(&self.key)
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let key: Vec<String> = self.key.iter().map(|v| v.to_string()).collect();
        writeln!(
            f,
            "group[{}] ({} tuples)",
            key.join("|"),
            self.tuple_count()
        )?;
        for g in &self.gammas {
            writeln!(f, "  {g} x{}", g.support())?;
        }
        Ok(())
    }
}

/// A first-layer block: every piece of data of one rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The rule this block corresponds to.
    pub rule: RuleId,
    /// Reason-part attributes of the rule (schema ids, rule order).
    pub reason_attrs: Vec<AttrId>,
    /// Result-part attributes of the rule (schema ids, rule order).
    pub result_attrs: Vec<AttrId>,
    /// The block's groups, ordered by their string-resolved keys.
    pub groups: Vec<Group>,
}

impl Block {
    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Find the group with the given (interned) reason-part key.
    pub fn group_by_key_ids(&self, key: &[ValueId]) -> Option<&Group> {
        self.groups.iter().find(|g| g.key == key)
    }

    /// Iterate over every γ in the block.
    pub fn gammas(&self) -> impl Iterator<Item = &Gamma> {
        self.groups.iter().flat_map(|g| g.gammas.iter())
    }

    /// Total number of distinct γs in the block (the `M` of Eq. 4).
    pub fn gamma_count(&self) -> usize {
        self.groups.iter().map(|g| g.gamma_count()).sum()
    }
}

/// Error returned when the index cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A rule references an attribute that is not in the dataset schema.
    UnknownAttribute {
        /// The offending rule.
        rule: RuleId,
        /// The missing attribute name.
        attribute: String,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::UnknownAttribute { rule, attribute } => {
                write!(f, "rule {rule} references unknown attribute {attribute:?}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// What one [`MlnIndex::insert_tuples`] call changed, per block — the
/// dirtiness information the incremental [`crate::CleaningSession`] uses to
/// decide which blocks must re-run the cleaning stages.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertReport {
    /// Number of dataset rows scanned by the insertion.
    pub rows: usize,
    /// Per block (rule order): distinct groups that gained a tuple or a γ,
    /// or were newly created.
    pub touched_groups: Vec<usize>,
    /// Per block (rule order): groups newly created by the insertion.
    pub created_groups: Vec<usize>,
}

impl InsertReport {
    /// Whether block `i` was touched at all.
    pub fn block_is_touched(&self, i: usize) -> bool {
        self.touched_groups.get(i).is_some_and(|&n| n > 0)
    }

    /// Number of blocks touched by the insertion.
    pub fn touched_block_count(&self) -> usize {
        self.touched_groups.iter().filter(|&&n| n > 0).count()
    }

    /// Total distinct groups touched across all blocks.
    pub fn total_touched_groups(&self) -> usize {
        self.touched_groups.iter().sum()
    }
}

/// What one [`MlnIndex::remove_tuples`] call changed, per block — the
/// mirror image of [`InsertReport`] for deletions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoveReport {
    /// Number of tuples removed from the index.
    pub rows: usize,
    /// Per block (rule order): distinct groups that lost a tuple, a γ, or
    /// were dropped entirely.
    pub touched_groups: Vec<usize>,
    /// Per block (rule order): groups dropped because the removal emptied
    /// them.
    pub removed_groups: Vec<usize>,
}

impl RemoveReport {
    /// Whether block `i` was touched at all.
    pub fn block_is_touched(&self, i: usize) -> bool {
        self.touched_groups.get(i).is_some_and(|&n| n > 0)
    }

    /// Number of blocks touched by the removal.
    pub fn touched_block_count(&self) -> usize {
        self.touched_groups.iter().filter(|&&n| n > 0).count()
    }
}

/// The full two-layer MLN index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlnIndex {
    /// One block per rule, in rule order.
    pub blocks: Vec<Block>,
    /// Snapshot of the indexed dataset's value pool: every id stored in the
    /// blocks resolves here.
    pool: ValuePool,
}

/// Compare two id vectors by their string-resolved values — the ordering the
/// historical string-keyed index used for groups and γs, preserved so every
/// downstream tie-break stays byte-identical.  Public because external
/// coordinators that assemble blocks (e.g. the distributed streaming merge)
/// must restore exactly this ordering; do not reimplement it.
pub fn cmp_resolved(pool: &ValuePool, a: &[ValueId], b: &[ValueId]) -> Ordering {
    let ka = a.iter().map(|&v| pool.resolve(v));
    let kb = b.iter().map(|&v| pool.resolve(v));
    ka.cmp(kb)
}

impl MlnIndex {
    /// Build the index for `ds` under `rules` (lines 1–13 of Algorithm 1),
    /// constructing the per-rule blocks in parallel.  Blocks are independent
    /// and reassembled in rule order, so the result is byte-identical to
    /// [`MlnIndex::build_serial`].
    pub fn build(ds: &Dataset, rules: &RuleSet) -> Result<Self, IndexError> {
        Self::build_with(ds, rules, true)
    }

    /// Serial reference implementation of [`MlnIndex::build`], kept for the
    /// parallel-equivalence tests and single-core profiling.
    pub fn build_serial(ds: &Dataset, rules: &RuleSet) -> Result<Self, IndexError> {
        Self::build_with(ds, rules, false)
    }

    /// Build the index, choosing the parallel or the serial per-rule-block
    /// path (the [`crate::CleanConfig::parallel`] toggle).
    pub fn build_with(ds: &Dataset, rules: &RuleSet, parallel: bool) -> Result<Self, IndexError> {
        Self::validate(ds, rules)?;
        let pool = ds.pool().clone();
        let pairs: Vec<(RuleId, &Rule)> = rules.iter_with_ids().collect();
        let blocks: Vec<Block> = if parallel {
            pairs
                .into_par_iter()
                .map(|(rule_id, rule)| build_block(ds, &pool, rule_id, rule))
                .collect()
        } else {
            pairs
                .into_iter()
                .map(|(rule_id, rule)| build_block(ds, &pool, rule_id, rule))
                .collect()
        };
        Ok(MlnIndex { blocks, pool })
    }

    /// Check every rule against the dataset schema, so later projections
    /// cannot panic.
    fn validate(ds: &Dataset, rules: &RuleSet) -> Result<(), IndexError> {
        for (rule_id, rule) in rules.iter_with_ids() {
            for attr in rule.all_attrs() {
                if ds.schema().attr_id(&attr).is_none() {
                    return Err(IndexError::UnknownAttribute {
                        rule: rule_id,
                        attribute: attr,
                    });
                }
            }
        }
        Ok(())
    }

    /// Incrementally insert the dataset rows `from..ds.len()` into the
    /// existing blocks/groups.
    ///
    /// `self` must have been built (or incrementally grown) from exactly the
    /// first `from` rows of `ds` under the same `rules`; the call then makes
    /// it byte-identical to `MlnIndex::build(ds, rules)` — new γs and groups
    /// are spliced in at their string-sorted positions, and tuple ids append
    /// in dataset order.  The pool snapshot is refreshed from `ds`, which is
    /// sound because [`ValuePool`] ids are append-only stable.
    ///
    /// Blocks are processed in parallel when `parallel` is set (byte-identical
    /// to the serial path).  The returned [`InsertReport`] says which groups
    /// and blocks were touched.
    pub fn insert_tuples(
        &mut self,
        ds: &Dataset,
        rules: &RuleSet,
        from: usize,
        parallel: bool,
    ) -> InsertReport {
        // A hard assert, not a debug one: a mismatched rule set would make
        // the zip below silently drop blocks from the index in release
        // builds.
        assert_eq!(
            self.blocks.len(),
            rules.len(),
            "insert_tuples requires the rule set the index was built from"
        );
        if ds.pool().len() != self.pool.len() {
            self.set_pool(ds.pool().clone());
        }
        let rows = ds.len().saturating_sub(from);
        if rows == 0 {
            return InsertReport {
                rows: 0,
                touched_groups: vec![0; self.blocks.len()],
                created_groups: vec![0; self.blocks.len()],
            };
        }

        let (blocks, pool) = self.split_mut();
        let pairs: Vec<(Block, &Rule)> = std::mem::take(blocks)
            .into_iter()
            .zip(rules.iter_with_ids().map(|(_, rule)| rule))
            .collect();
        let inserted: Vec<(Block, usize, usize)> = if parallel {
            pairs
                .into_par_iter()
                .map(|(mut block, rule)| {
                    let (touched, created) =
                        insert_range_into_block(&mut block, ds, pool, rule, from);
                    (block, touched, created)
                })
                .collect()
        } else {
            pairs
                .into_iter()
                .map(|(mut block, rule)| {
                    let (touched, created) =
                        insert_range_into_block(&mut block, ds, pool, rule, from);
                    (block, touched, created)
                })
                .collect()
        };

        let mut report = InsertReport {
            rows,
            touched_groups: Vec::with_capacity(inserted.len()),
            created_groups: Vec::with_capacity(inserted.len()),
        };
        for (block, touched, created) in inserted {
            blocks.push(block);
            report.touched_groups.push(touched);
            report.created_groups.push(created);
        }
        report
    }

    /// Incrementally remove tuples from the blocks/groups — the splice-out
    /// mirror of [`MlnIndex::insert_tuples`].
    ///
    /// `ds` must be the dataset the index was built from **still containing**
    /// the rows (the caller compacts the dataset afterwards); `ids` are
    /// interpreted against that pre-removal numbering.  After the call the
    /// index is byte-identical to `MlnIndex::build` over the surviving rows
    /// (with their post-compaction ids): each tuple is spliced out of its
    /// sorted γ position, γs and groups emptied by the removal are dropped,
    /// and every surviving id greater than a removed one shifts down.
    ///
    /// Blocks are processed in parallel when `parallel` is set
    /// (byte-identical to the serial path).  The returned [`RemoveReport`]
    /// says which groups and blocks were touched.
    pub fn remove_tuples(
        &mut self,
        ds: &Dataset,
        rules: &RuleSet,
        ids: &[TupleId],
        parallel: bool,
    ) -> RemoveReport {
        assert_eq!(
            self.blocks.len(),
            rules.len(),
            "remove_tuples requires the rule set the index was built from"
        );
        let mut removed: Vec<usize> = ids.iter().map(|t| t.0).collect();
        removed.sort_unstable();
        removed.dedup();
        if removed.is_empty() {
            return RemoveReport {
                rows: 0,
                touched_groups: vec![0; self.blocks.len()],
                removed_groups: vec![0; self.blocks.len()],
            };
        }
        assert!(
            *removed.last().expect("non-empty") < ds.len(),
            "remove_tuples with an out-of-range tuple id"
        );

        let (blocks, pool) = self.split_mut();
        let removed = &removed;
        let pairs: Vec<(Block, &Rule)> = std::mem::take(blocks)
            .into_iter()
            .zip(rules.iter_with_ids().map(|(_, rule)| rule))
            .collect();
        let run = |(mut block, rule): (Block, &Rule)| {
            let (touched, dropped) = remove_ids_from_block(&mut block, ds, pool, rule, removed);
            remap_block_after_removal(&mut block, removed);
            (block, touched, dropped)
        };
        let spliced: Vec<(Block, usize, usize)> = if parallel {
            pairs.into_par_iter().map(run).collect()
        } else {
            pairs.into_iter().map(run).collect()
        };

        let mut report = RemoveReport {
            rows: removed.len(),
            touched_groups: Vec::with_capacity(spliced.len()),
            removed_groups: Vec::with_capacity(spliced.len()),
        };
        for (block, touched, dropped) in spliced {
            blocks.push(block);
            report.touched_groups.push(touched);
            report.removed_groups.push(dropped);
        }
        report
    }

    /// Incrementally re-home one tuple after a cell update.
    ///
    /// `ds` must already hold the **new** value; `old_row` is the tuple's
    /// full pre-update id row (schema order, resolving in `ds`'s pool, whose
    /// interned values are append-only).  For every block whose membership
    /// or projection changed, the tuple is spliced out of its old γ position
    /// and into its new one (both string-sorted, so the block stays
    /// byte-identical to a rebuild over the updated dataset).  Blocks whose
    /// rule does not see the change are untouched.
    ///
    /// Returns, per block (rule order), the interned keys of the distinct
    /// groups touched — the tuple's pre-update group, its post-update group,
    /// or both (empty = block untouched).  The keys are what the incremental
    /// [`crate::CleaningSession`] marks dirty for its group-scoped refresh.
    pub fn update_tuple(
        &mut self,
        ds: &Dataset,
        rules: &RuleSet,
        t: TupleId,
        old_row: &[ValueId],
        parallel: bool,
    ) -> Vec<Vec<Vec<ValueId>>> {
        assert_eq!(
            self.blocks.len(),
            rules.len(),
            "update_tuple requires the rule set the index was built from"
        );
        // The update may have interned a brand-new value; pools are
        // append-only, so a length check spots that without cloning on the
        // (common) all-values-known path.
        if ds.pool().len() != self.pool.len() {
            self.set_pool(ds.pool().clone());
        }
        let (blocks, pool) = self.split_mut();
        let pairs: Vec<(Block, &Rule)> = std::mem::take(blocks)
            .into_iter()
            .zip(rules.iter_with_ids().map(|(_, rule)| rule))
            .collect();
        let run = |(mut block, rule): (Block, &Rule)| {
            let touched = rehome_tuple_in_block(&mut block, ds, pool, rule, t, old_row);
            (block, touched)
        };
        let rehomed: Vec<(Block, Vec<Vec<ValueId>>)> = if parallel {
            pairs.into_par_iter().map(run).collect()
        } else {
            pairs.into_iter().map(run).collect()
        };
        let mut touched_groups = Vec::with_capacity(rehomed.len());
        for (block, touched) in rehomed {
            blocks.push(block);
            touched_groups.push(touched);
        }
        touched_groups
    }

    /// Assemble an index from externally built blocks and the pool their
    /// value ids resolve through — the constructor external coordinators
    /// (e.g. the distributed streaming driver, which merges per-partition
    /// pristine blocks into global ones) use.  The caller is responsible
    /// for the blocks' invariants: groups sorted by string-resolved key, γs
    /// by resolved value vector, tuple lists ascending.
    pub fn from_parts(blocks: Vec<Block>, pool: ValuePool) -> Self {
        MlnIndex { blocks, pool }
    }

    /// Splice removed tuple ids out of every γ tuple list and shift the
    /// surviving ids down, **without** restructuring groups or γs.
    ///
    /// This keeps cached post-Stage-I block state (where AGP may have merged
    /// groups and RSC rewritten γs) consistent after a dataset compaction:
    /// blocks the removal never touched only need the id shift, and blocks
    /// it did touch are about to be re-cleaned from pristine state anyway.
    /// `removed` must be sorted, deduplicated pre-removal row indices.
    pub fn remap_removed(&mut self, removed: &[usize]) {
        if removed.is_empty() {
            return;
        }
        for block in &mut self.blocks {
            remap_block_after_removal(block, removed);
        }
    }

    /// Replace the pool snapshot (the new pool must be an append-only
    /// descendant of the old one, so every stored id keeps resolving to the
    /// same string).
    pub(crate) fn set_pool(&mut self, pool: ValuePool) {
        debug_assert!(pool.len() >= self.pool.len(), "pools only ever grow");
        self.pool = pool;
    }

    /// Catch the pool snapshot up to an append-only descendant by copying
    /// only its tail of new values (see [`ValuePool::sync_from`]) — the
    /// cheap alternative to [`MlnIndex::set_pool`]'s whole-pool clone on the
    /// incremental paths.
    pub(crate) fn sync_pool_from(&mut self, descendant: &ValuePool) {
        self.pool.sync_from(descendant);
    }

    /// The pool snapshot every block id resolves through.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Simultaneous mutable access to the blocks and shared access to the
    /// pool (the borrow shape AGP/RSC need to rewrite blocks while resolving
    /// strings).
    pub fn split_mut(&mut self) -> (&mut Vec<Block>, &ValuePool) {
        (&mut self.blocks, &self.pool)
    }

    /// The block of a rule.
    pub fn block(&self, rule: RuleId) -> &Block {
        &self.blocks[rule.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, rule: RuleId) -> &mut Block {
        &mut self.blocks[rule.index()]
    }

    /// Number of blocks (= number of rules).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Find a group by its string key within a rule's block (resolves through
    /// the pool snapshot; mostly a test/debug convenience).
    pub fn group_by_key(&self, rule: RuleId, key: &[&str]) -> Option<&Group> {
        let ids: Option<Vec<ValueId>> = key.iter().map(|v| self.pool.lookup(v)).collect();
        let ids = ids?;
        self.block(rule).group_by_key_ids(&ids)
    }
}

/// Build one rule's block from scratch (the per-rule body of Algorithm 1,
/// lines 1–13) — the unit of work of the parallel index construction.
fn build_block(ds: &Dataset, pool: &ValuePool, rule_id: RuleId, rule: &Rule) -> Block {
    let schema = ds.schema();
    let reason_attrs: Vec<AttrId> = rule
        .reason_attrs()
        .iter()
        .map(|a| {
            schema
                .attr_id(a)
                .expect("rules validated against the schema")
        })
        .collect();
    let result_attrs: Vec<AttrId> = rule
        .result_attrs()
        .iter()
        .map(|a| {
            schema
                .attr_id(a)
                .expect("rules validated against the schema")
        })
        .collect();

    // group key -> (full γ key -> gamma); all keys are id vectors, so the
    // per-tuple work is integer hashing — no string is cloned, hashed or
    // compared while scanning the data.
    let mut groups: HashMap<Vec<ValueId>, HashMap<Vec<ValueId>, Gamma>> = HashMap::new();
    for t in ds.tuples() {
        if !rule.is_relevant(schema, &t) {
            continue;
        }
        let vl = t.project_ids(&reason_attrs);
        let vr = t.project_ids(&result_attrs);
        let mut full_key = vl.clone();
        full_key.extend(vr.iter().copied());

        let gamma = groups
            .entry(vl.clone())
            .or_default()
            .entry(full_key)
            .or_insert_with(|| {
                Gamma::new(rule_id, reason_attrs.clone(), vl, result_attrs.clone(), vr)
            });
        gamma.tuples.push(t.id());
    }

    // Restore the historical deterministic ordering: groups sorted by their
    // string-resolved keys, γs within a group by their resolved full value
    // vector (exactly the old BTreeMap-over-Vec<String> iteration order).
    let mut groups: Vec<Group> = groups
        .into_iter()
        .map(|(key, gammas)| {
            let mut gammas: Vec<Gamma> = gammas.into_values().collect();
            gammas.sort_by(|a, b| cmp_resolved_gammas(pool, a, b));
            Group { key, gammas }
        })
        .collect();
    groups.sort_by(|a, b| cmp_resolved(pool, &a.key, &b.key));
    Block {
        rule: rule_id,
        reason_attrs,
        result_attrs,
        groups,
    }
}

/// Compare two γs by their string-resolved full value vector (reason part
/// then result part) — the within-group ordering of the index.  Public for
/// the same reason as [`cmp_resolved`].
pub fn cmp_resolved_gammas(pool: &ValuePool, a: &Gamma, b: &Gamma) -> Ordering {
    let ka = a
        .reason_values
        .iter()
        .chain(&a.result_values)
        .map(|&v| pool.resolve(v));
    let kb = b
        .reason_values
        .iter()
        .chain(&b.result_values)
        .map(|&v| pool.resolve(v));
    ka.cmp(kb)
}

/// Insert the rows `from..ds.len()` into one block, keeping the block
/// byte-identical to a full rebuild: new groups and γs go to their
/// string-sorted positions, tuple ids append in dataset order.  Returns
/// `(touched groups, created groups)`.
fn insert_range_into_block(
    block: &mut Block,
    ds: &Dataset,
    pool: &ValuePool,
    rule: &Rule,
    from: usize,
) -> (usize, usize) {
    let schema = ds.schema();
    let mut touched: HashSet<Vec<ValueId>> = HashSet::new();
    let mut created = 0usize;
    for t in (from..ds.len()).map(TupleId) {
        let tuple = ds.tuple(t);
        if !rule.is_relevant(schema, &tuple) {
            continue;
        }
        let vl = tuple.project_ids(&block.reason_attrs);
        let vr = tuple.project_ids(&block.result_attrs);

        match block
            .groups
            .binary_search_by(|g| cmp_resolved(pool, &g.key, &vl))
        {
            Ok(i) => {
                let group = &mut block.groups[i];
                let probe = Gamma::new(
                    block.rule,
                    block.reason_attrs.clone(),
                    vl.clone(),
                    block.result_attrs.clone(),
                    vr,
                );
                match group
                    .gammas
                    .binary_search_by(|g| cmp_resolved_gammas(pool, g, &probe))
                {
                    Ok(j) => group.gammas[j].tuples.push(t),
                    Err(j) => {
                        let mut gamma = probe;
                        gamma.tuples.push(t);
                        group.gammas.insert(j, gamma);
                    }
                }
            }
            Err(i) => {
                let mut gamma = Gamma::new(
                    block.rule,
                    block.reason_attrs.clone(),
                    vl.clone(),
                    block.result_attrs.clone(),
                    vr,
                );
                gamma.tuples.push(t);
                block.groups.insert(
                    i,
                    Group {
                        key: vl.clone(),
                        gammas: vec![gamma],
                    },
                );
                created += 1;
            }
        }
        touched.insert(vl);
    }
    (touched.len(), created)
}

/// Splice the (sorted, deduplicated, pre-removal) row indices `removed` out
/// of one block: each removed tuple leaves its γ, and γs/groups emptied by
/// the removal are dropped — exactly what a rebuild over the survivors would
/// omit.  Ids are NOT shifted here (see [`remap_block_after_removal`]).
/// Returns `(touched groups, dropped groups)`.
fn remove_ids_from_block(
    block: &mut Block,
    ds: &Dataset,
    pool: &ValuePool,
    rule: &Rule,
    removed: &[usize],
) -> (usize, usize) {
    let schema = ds.schema();
    let mut touched: HashSet<Vec<ValueId>> = HashSet::new();
    let mut dropped = 0usize;
    for &r in removed {
        let t = TupleId(r);
        let tuple = ds.tuple(t);
        if !rule.is_relevant(schema, &tuple) {
            continue;
        }
        let vl = tuple.project_ids(&block.reason_attrs);
        let vr = tuple.project_ids(&block.result_attrs);
        let i = block
            .groups
            .binary_search_by(|g| cmp_resolved(pool, &g.key, &vl))
            .expect("removed tuple's group is in the index");
        let group = &mut block.groups[i];
        let probe = Gamma::new(
            block.rule,
            block.reason_attrs.clone(),
            vl.clone(),
            block.result_attrs.clone(),
            vr,
        );
        let j = group
            .gammas
            .binary_search_by(|g| cmp_resolved_gammas(pool, g, &probe))
            .expect("removed tuple's γ is in the index");
        let gamma = &mut group.gammas[j];
        let k = gamma
            .tuples
            .binary_search(&t)
            .expect("removed tuple id is in its γ");
        gamma.tuples.remove(k);
        if gamma.tuples.is_empty() {
            group.gammas.remove(j);
        }
        if group.gammas.is_empty() {
            block.groups.remove(i);
            dropped += 1;
        }
        touched.insert(vl);
    }
    (touched.len(), dropped)
}

/// Shift every γ tuple id down by the number of (sorted, deduplicated)
/// `removed` indices below it, dropping exact matches — the id-space
/// compaction that follows a dataset row removal.
fn remap_block_after_removal(block: &mut Block, removed: &[usize]) {
    for group in &mut block.groups {
        for gamma in &mut group.gammas {
            dataset::remap_ids_after_removal(&mut gamma.tuples, removed);
        }
    }
}

/// Move tuple `t` from its pre-update γ to its post-update γ within one
/// block, splicing both ends at their string-sorted positions.  Returns the
/// interned keys of the distinct groups touched — old first, then new when
/// they differ (empty when the rule cannot see the update).
fn rehome_tuple_in_block(
    block: &mut Block,
    ds: &Dataset,
    pool: &ValuePool,
    rule: &Rule,
    t: TupleId,
    old_row: &[ValueId],
) -> Vec<Vec<ValueId>> {
    let schema = ds.schema();
    let tuple = ds.tuple(t);
    let old_relevant = rule.is_relevant_ids(schema, pool, old_row);
    let new_relevant = rule.is_relevant(schema, &tuple);
    let project_old =
        |attrs: &[AttrId]| -> Vec<ValueId> { attrs.iter().map(|a| old_row[a.index()]).collect() };
    let old_vl = project_old(&block.reason_attrs);
    let old_vr = project_old(&block.result_attrs);
    let new_vl = tuple.project_ids(&block.reason_attrs);
    let new_vr = tuple.project_ids(&block.result_attrs);
    if old_relevant == new_relevant && (!old_relevant || (old_vl == new_vl && old_vr == new_vr)) {
        return Vec::new(); // the rule cannot tell the old and new rows apart
    }

    let mut touched: Vec<Vec<ValueId>> = Vec::with_capacity(2);
    if old_relevant {
        let i = block
            .groups
            .binary_search_by(|g| cmp_resolved(pool, &g.key, &old_vl))
            .expect("updated tuple's old group is in the index");
        let group = &mut block.groups[i];
        let probe = Gamma::new(
            block.rule,
            block.reason_attrs.clone(),
            old_vl.clone(),
            block.result_attrs.clone(),
            old_vr,
        );
        let j = group
            .gammas
            .binary_search_by(|g| cmp_resolved_gammas(pool, g, &probe))
            .expect("updated tuple's old γ is in the index");
        let gamma = &mut group.gammas[j];
        let k = gamma
            .tuples
            .binary_search(&t)
            .expect("updated tuple id is in its old γ");
        gamma.tuples.remove(k);
        if gamma.tuples.is_empty() {
            group.gammas.remove(j);
        }
        if group.gammas.is_empty() {
            block.groups.remove(i);
        }
        touched.push(old_vl);
    }
    if new_relevant {
        let mut gamma = Gamma::new(
            block.rule,
            block.reason_attrs.clone(),
            new_vl.clone(),
            block.result_attrs.clone(),
            new_vr,
        );
        match block
            .groups
            .binary_search_by(|g| cmp_resolved(pool, &g.key, &new_vl))
        {
            Ok(i) => {
                let group = &mut block.groups[i];
                match group
                    .gammas
                    .binary_search_by(|g| cmp_resolved_gammas(pool, g, &gamma))
                {
                    Ok(j) => {
                        let tuples = &mut group.gammas[j].tuples;
                        let k = tuples.binary_search(&t).unwrap_err();
                        tuples.insert(k, t);
                    }
                    Err(j) => {
                        gamma.tuples.push(t);
                        group.gammas.insert(j, gamma);
                    }
                }
            }
            Err(i) => {
                gamma.tuples.push(t);
                block.groups.insert(
                    i,
                    Group {
                        key: new_vl.clone(),
                        gammas: vec![gamma],
                    },
                );
            }
        }
        if !touched.contains(&new_vl) {
            touched.push(new_vl);
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;
    use rules::sample_hospital_rules;

    fn build_sample_index() -> MlnIndex {
        MlnIndex::build(&sample_hospital_dataset(), &sample_hospital_rules()).unwrap()
    }

    #[test]
    fn figure2_block_and_group_counts() {
        // Figure 2: blocks B1, B2, B3 have 3, 3, 2 groups respectively.
        let index = build_sample_index();
        assert_eq!(index.block_count(), 3);
        let counts: Vec<usize> = index.blocks.iter().map(|b| b.group_count()).collect();
        assert_eq!(counts, vec![3, 3, 2]);
    }

    #[test]
    fn block1_group_keys_match_figure2() {
        let index = build_sample_index();
        let b1 = index.block(RuleId(0));
        let keys: Vec<Vec<&str>> = b1
            .groups
            .iter()
            .map(|g| g.resolve_key(index.pool()))
            .collect();
        assert!(keys.contains(&vec!["DOTHAN"]));
        assert!(keys.contains(&vec!["DOTH"]));
        assert!(keys.contains(&vec!["BOAZ"]));
    }

    #[test]
    fn groups_are_ordered_by_string_key() {
        // The interned index must preserve the historical BTreeMap-over-
        // strings group order, not id (first-appearance) order.
        let index = build_sample_index();
        for block in &index.blocks {
            let keys: Vec<Vec<&str>> = block
                .groups
                .iter()
                .map(|g| g.resolve_key(index.pool()))
                .collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "block {:?} groups out of order", block.rule);
        }
    }

    #[test]
    fn boaz_group_has_two_gammas_with_expected_support() {
        let index = build_sample_index();
        let boaz = index.group_by_key(RuleId(0), &["BOAZ"]).unwrap();
        assert_eq!(boaz.gamma_count(), 2);
        assert_eq!(boaz.tuple_count(), 3);
        let dominant = boaz.dominant_gamma().unwrap();
        assert_eq!(dominant.resolve_result_values(index.pool()), vec!["AL"]);
        assert_eq!(dominant.support(), 2);
        assert!(!boaz.is_clean());
    }

    #[test]
    fn cfd_block_only_contains_relevant_tuples() {
        let index = build_sample_index();
        let b3 = index.block(RuleId(2));
        let all_tuples: Vec<TupleId> = b3.groups.iter().flat_map(|g| g.all_tuples()).collect();
        assert!(!all_tuples.contains(&TupleId(0)));
        assert!(!all_tuples.contains(&TupleId(1)));
        assert_eq!(all_tuples.len(), 4);
    }

    #[test]
    fn dc_block_groups_by_phone_number() {
        let ds = sample_hospital_dataset();
        let index = build_sample_index();
        let b2 = index.block(RuleId(1));
        assert_eq!(b2.reason_attrs, vec![ds.schema().attr_id("PN").unwrap()]);
        assert_eq!(b2.result_attrs, vec![ds.schema().attr_id("ST").unwrap()]);
        let g = index.group_by_key(RuleId(1), &["2567688400"]).unwrap();
        assert_eq!(g.gamma_count(), 2, "AK and AL versions");
        assert_eq!(g.tuple_count(), 3);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let ds = sample_hospital_dataset();
        let mut rules = rules::RuleSet::default();
        rules.push(rules::Rule::Fd(rules::FunctionalDependency::new(
            vec!["CT"],
            vec!["MISSING"],
        )));
        let err = MlnIndex::build(&ds, &rules).unwrap_err();
        assert_eq!(
            err,
            IndexError::UnknownAttribute {
                rule: RuleId(0),
                attribute: "MISSING".to_string()
            }
        );
    }

    #[test]
    fn clean_data_produces_singleton_groups() {
        let truth = dataset::sample_hospital_truth();
        let index = MlnIndex::build(&truth, &sample_hospital_rules()).unwrap();
        for block in &index.blocks {
            for group in &block.groups {
                assert!(
                    group.is_clean(),
                    "clean data must give one γ per group: {group}"
                );
            }
        }
    }

    #[test]
    fn parallel_and_serial_build_are_byte_identical() {
        let cases = [
            sample_hospital_dataset(),
            datagen::HaiGenerator::default()
                .with_rows(300)
                .with_providers(12)
                .dirty(0.08, 0.5, 11)
                .dirty,
        ];
        for (ds, rules) in [
            (&cases[0], sample_hospital_rules()),
            (&cases[1], datagen::HaiGenerator::rules()),
        ] {
            let par = MlnIndex::build(ds, &rules).unwrap();
            let ser = MlnIndex::build_serial(ds, &rules).unwrap();
            assert_eq!(par, ser);
            assert_eq!(format!("{par:?}"), format!("{ser:?}"));
        }
    }

    #[test]
    fn incremental_insert_matches_full_build() {
        // For every split point: build on the prefix, insert the rest, and
        // the index must be byte-identical to a full build — serial and
        // parallel insertion alike.
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let full = MlnIndex::build(&ds, &rules).unwrap();
        for split in 0..=ds.len() {
            for parallel in [false, true] {
                let prefix = ds.project_rows(&(0..split).map(TupleId).collect::<Vec<_>>());
                let mut index = MlnIndex::build_serial(&prefix, &rules).unwrap();
                let report = index.insert_tuples(&ds, &rules, split, parallel);
                assert_eq!(report.rows, ds.len() - split);
                assert_eq!(
                    format!("{index:?}"),
                    format!("{full:?}"),
                    "split {split} (parallel={parallel}) diverged from the full build"
                );
            }
        }
    }

    #[test]
    fn incremental_insert_matches_full_build_on_hai() {
        let dirty = datagen::HaiGenerator::default()
            .with_rows(240)
            .with_providers(10)
            .dirty(0.08, 0.5, 7)
            .dirty;
        let rules = datagen::HaiGenerator::rules();
        let full = MlnIndex::build(&dirty, &rules).unwrap();
        // Grow in uneven micro-batches from an empty index.
        let empty = Dataset::new(dirty.schema().clone());
        let mut index = MlnIndex::build(&empty, &rules).unwrap();
        let mut at = 0usize;
        while at < dirty.len() {
            let upto = (at + 37).min(dirty.len());
            let prefix = dirty.project_rows(&(0..upto).map(TupleId).collect::<Vec<_>>());
            index.insert_tuples(&prefix, &rules, at, true);
            at = upto;
        }
        assert_eq!(format!("{index:?}"), format!("{full:?}"));
    }

    #[test]
    fn insert_report_tracks_touched_and_created_groups() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        // Build on the first four rows, then insert the last two (t5/t6 are
        // BOAZ duplicates of existing groups).
        let prefix = ds.project_rows(&[TupleId(0), TupleId(1), TupleId(2), TupleId(3)]);
        let mut index = MlnIndex::build(&prefix, &rules).unwrap();
        let report = index.insert_tuples(&ds, &rules, 4, false);
        assert_eq!(report.rows, 2);
        assert_eq!(report.touched_groups.len(), rules.len());
        assert!(report.touched_block_count() > 0);
        assert!(report.total_touched_groups() > 0);
        // The BOAZ rows join existing groups in block B1: nothing created
        // there.
        assert_eq!(report.created_groups[0], 0);
        assert!(report.block_is_touched(0));
    }

    #[test]
    fn incremental_remove_matches_rebuild_on_survivors() {
        // For every subset size: remove a spread of tuples and compare with a
        // fresh build over the surviving rows (sharing the pool snapshot so
        // ids are directly comparable) — serial and parallel alike.
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let cases: Vec<Vec<TupleId>> = vec![
            vec![TupleId(0)],
            vec![TupleId(5)],
            vec![TupleId(2), TupleId(4)],
            vec![TupleId(1), TupleId(2), TupleId(3)],
            (0..ds.len()).map(TupleId).collect(),
        ];
        for removed in cases {
            for parallel in [false, true] {
                let mut index = MlnIndex::build(&ds, &rules).unwrap();
                let report = index.remove_tuples(&ds, &rules, &removed, parallel);
                assert_eq!(report.rows, removed.len());
                let survivors: Vec<TupleId> =
                    ds.tuple_ids().filter(|t| !removed.contains(t)).collect();
                let rebuilt = MlnIndex::build_serial(&ds.project_rows(&survivors), &rules).unwrap();
                assert_eq!(
                    format!("{index:?}"),
                    format!("{rebuilt:?}"),
                    "removing {removed:?} (parallel={parallel}) diverged from a rebuild"
                );
            }
        }
    }

    #[test]
    fn remove_report_counts_touched_and_dropped_groups() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        // t2 is the only DOTH tuple: its B1 group disappears entirely.
        let report = index.remove_tuples(&ds, &rules, &[TupleId(1)], false);
        assert_eq!(report.rows, 1);
        assert!(report.block_is_touched(0));
        assert!(report.touched_block_count() >= 1);
        assert!(report.removed_groups[0] >= 1, "the DOTH group must drop");
        // Removing nothing is a no-op.
        let untouched = index.clone();
        let report = index.remove_tuples(&ds, &rules, &[], true);
        assert_eq!(report.rows, 0);
        assert_eq!(format!("{index:?}"), format!("{untouched:?}"));
    }

    #[test]
    fn incremental_update_matches_rebuild_on_updated_data() {
        // Rewrite single cells (including ones that flip CFD relevance and
        // ones no rule can see) and compare with a fresh build over the
        // updated dataset.
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let schema = ds.schema().clone();
        let cases: Vec<(usize, &str, &str)> = vec![
            (3, "ST", "AL"),      // the paper's t4 repair
            (1, "CT", "DOTHAN"),  // heals the typo group
            (2, "HN", "ALABAMA"), // flips t3 out of the CFD block
            (0, "HN", "ELIZA"),   // flips t1 into the CFD block
            (4, "PN", "999"),     // brand-new value, new γ
            (5, "ST", "AL"),      // no-op update (same value)
        ];
        for (row, attr, value) in cases {
            for parallel in [false, true] {
                let mut updated = ds.clone();
                let mut index = MlnIndex::build(&ds, &rules).unwrap();
                let t = TupleId(row);
                let a = schema.attr_id(attr).unwrap();
                let old_row = updated.row_ids(t);
                updated.set_value(t, a, value);
                let touched = index.update_tuple(&updated, &rules, t, &old_row, parallel);
                let rebuilt = MlnIndex::build_serial(&updated, &rules).unwrap();
                assert_eq!(
                    format!("{index:?}"),
                    format!("{rebuilt:?}"),
                    "updating t{row}.{attr}={value} (parallel={parallel}) diverged from a rebuild"
                );
                if updated.value(t, a) == ds.value(t, a) {
                    assert!(
                        touched.iter().all(|keys| keys.is_empty()),
                        "no-op update must not touch"
                    );
                }
            }
        }
    }

    #[test]
    fn update_leaves_unrelated_blocks_untouched() {
        // An update to an attribute only rule r1 (CT -> ST) can see must not
        // touch the DC or CFD blocks... unless relevance flips.  Updating ST
        // touches B1 (result part) and B2 (result part) but never B3.
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut updated = ds.clone();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        let t = TupleId(3);
        let st = ds.schema().attr_id("ST").unwrap();
        let old_row = updated.row_ids(t);
        updated.set_value(t, st, "AL");
        let touched = index.update_tuple(&updated, &rules, t, &old_row, false);
        assert!(!touched[0].is_empty(), "B1's result part changed");
        assert!(!touched[1].is_empty(), "B2's result part changed");
        assert!(touched[2].is_empty(), "B3 (HN,CT => PN) cannot see ST");
        // ST is a result-part attribute in B1 and B2: the tuple stays in the
        // same group, so exactly one key is reported per touched block.
        assert_eq!(touched[0].len(), 1);
        assert_eq!(touched[1].len(), 1);
    }

    #[test]
    fn index_pool_matches_dataset_pool() {
        let ds = sample_hospital_dataset();
        let index = MlnIndex::build(&ds, &sample_hospital_rules()).unwrap();
        assert_eq!(index.pool(), ds.pool());
        // Every id the index stores resolves in the snapshot.
        for block in &index.blocks {
            for gamma in block.gammas() {
                for &v in gamma.reason_values.iter().chain(&gamma.result_values) {
                    assert!(index.pool().contains(v));
                }
            }
        }
    }
}
