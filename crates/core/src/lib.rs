//! **MLNClean** — a hybrid data-cleaning framework on top of Markov logic
//! networks, reproducing Gao et al., *A Hybrid Data Cleaning Framework Using
//! Markov Logic Networks* (ICDE 2021 / arXiv:1903.05826).
//!
//! MLNClean combines qualitative cleaning (integrity constraints: FDs, CFDs,
//! DCs) with quantitative cleaning (MLN weight learning) and proceeds in two
//! stages over a two-layer **MLN index**:
//!
//! 1. **Stage I — clean multiple data versions**, one version per rule/block:
//!    * [`agp`] — Abnormal Group Processing merges suspiciously small groups
//!      into their nearest normal group;
//!    * [`rsc`] — Reliability-Score-based Cleaning keeps, within each group,
//!      the piece of data (γ) with the highest reliability score and rewrites
//!      the others.
//! 2. **Stage II — derive the unified clean data**:
//!    * [`fscr`] — Fusion-Score-based Conflict Resolution fuses, per tuple,
//!      the per-block γs into the most probable consistent combination, then
//!      exact duplicates are removed.
//!
//! # Quick start
//!
//! ```
//! use dataset::sample_hospital_dataset;
//! use rules::sample_hospital_rules;
//! use mlnclean::{CleanConfig, MlnClean};
//!
//! let dirty = sample_hospital_dataset();
//! let rules = sample_hospital_rules();
//! let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
//! let outcome = cleaner.clean(&dirty, &rules).expect("rules match the schema");
//!
//! // t4's state is repaired from AK to AL, as in the paper's Example 2.
//! let st = dirty.schema().attr_id("ST").unwrap();
//! assert_eq!(outcome.repaired.value(dataset::TupleId(3), st), "AL");
//! // After deduplication only two distinct hospital entities remain.
//! assert_eq!(outcome.deduplicated().len(), 2);
//! ```
//!
//! # Streaming / incremental cleaning
//!
//! [`MlnClean::clean`] is the one-batch special case of the incremental
//! engine.  For live data, open a [`CleaningSession`] and feed it typed
//! [`ChangeSet`]s — inserts, cell updates and row deletions; every
//! [`CleaningSession::outcome`] re-cleans only the blocks the mutations
//! since the last call touched, yet is byte-identical to a batch run over
//! the net surviving rows:
//!
//! ```
//! use dataset::{sample_hospital_dataset, TupleId};
//! use rules::sample_hospital_rules;
//! use mlnclean::{ChangeSet, CleanConfig, CleaningSession};
//!
//! let dirty = sample_hospital_dataset();
//! let config = CleanConfig::default().with_tau(1);
//! let mut session =
//!     CleaningSession::new(config, dirty.schema().clone(), sample_hospital_rules()).unwrap();
//! // Ingest the six sample rows in micro-batches of two.
//! for chunk in (0..dirty.len()).step_by(2) {
//!     let rows: Vec<Vec<String>> = (chunk..(chunk + 2).min(dirty.len()))
//!         .map(|t| dirty.tuple(TupleId(t)).owned_values())
//!         .collect();
//!     let report = session.apply(ChangeSet::inserting(rows)).unwrap();
//!     assert!(report.dirty_blocks <= report.total_blocks);
//! }
//! // A later change set can mix kinds: fix a cell, drop a row.
//! let st = dirty.schema().attr_id("ST").unwrap();
//! session
//!     .apply(ChangeSet::new().update(TupleId(3), st, "AL").delete(TupleId(5)))
//!     .unwrap();
//! let outcome = session.finish();
//! assert_eq!(outcome.deduplicated().len(), 2);
//! ```
//!
//! # Engines
//!
//! The batch pipeline, the incremental session and the distributed runner
//! are three execution plans for the same computation.  The [`Engine`] trait
//! is their shared front door: `run(&Dataset, &RuleSet) -> Result<Report,
//! CleanError>`, with one [`Report`] (repaired/deduplicated data + merged
//! [`Timings`]) and one [`CleanError`] across all drivers.

#![deny(missing_docs)]

pub mod agp;
pub mod cache;
pub mod changeset;
pub mod config;
pub mod engine;
pub mod error;
pub mod evaluation;
pub mod fscr;
pub mod gamma;
pub mod index;
pub mod pipeline;
pub mod rsc;
pub mod session;
pub mod stage;
pub mod weights;

pub use agp::{AbnormalGroupProcessor, AgpMerge, AgpRecord};
pub use cache::{CacheStats, DistanceCache};
pub use changeset::{ChangeSet, Mutation};
pub use config::CleanConfig;
pub use engine::{Engine, IncrementalMlnClean, PartitionReport, Report, Timings};
pub use error::CleanError;
pub use evaluation::{evaluate_agp, evaluate_fscr, evaluate_rsc, ComponentEvaluation};
pub use fscr::{
    apply_tuple_fusion, ConflictResolver, FscrRecord, FusionOutcome, FusionPlan, TupleFusion,
};
pub use gamma::Gamma;
pub use index::{Block, Group, InsertReport, MlnIndex, RemoveReport};
pub use pipeline::MlnClean;
pub use rsc::{ReliabilityCleaner, RscRecord, RscRepair};
pub use session::{BatchReport, CleaningSession, MemoryStats, SessionSnapshot};
pub use stage::{
    AgpStage, DedupStage, FscrStage, PipelineStage, RscStage, StageContext, StageRecords,
    WeightLearningStage,
};
pub use weights::{GammaSignature, SessionWeights};
