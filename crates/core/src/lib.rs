//! **MLNClean** — a hybrid data-cleaning framework on top of Markov logic
//! networks, reproducing Gao et al., *A Hybrid Data Cleaning Framework Using
//! Markov Logic Networks* (ICDE 2021 / arXiv:1903.05826).
//!
//! MLNClean combines qualitative cleaning (integrity constraints: FDs, CFDs,
//! DCs) with quantitative cleaning (MLN weight learning) and proceeds in two
//! stages over a two-layer **MLN index**:
//!
//! 1. **Stage I — clean multiple data versions**, one version per rule/block:
//!    * [`agp`] — Abnormal Group Processing merges suspiciously small groups
//!      into their nearest normal group;
//!    * [`rsc`] — Reliability-Score-based Cleaning keeps, within each group,
//!      the piece of data (γ) with the highest reliability score and rewrites
//!      the others.
//! 2. **Stage II — derive the unified clean data**:
//!    * [`fscr`] — Fusion-Score-based Conflict Resolution fuses, per tuple,
//!      the per-block γs into the most probable consistent combination, then
//!      exact duplicates are removed.
//!
//! # Quick start
//!
//! ```
//! use dataset::sample_hospital_dataset;
//! use rules::sample_hospital_rules;
//! use mlnclean::{CleanConfig, MlnClean};
//!
//! let dirty = sample_hospital_dataset();
//! let rules = sample_hospital_rules();
//! let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
//! let outcome = cleaner.clean(&dirty, &rules).expect("rules match the schema");
//!
//! // t4's state is repaired from AK to AL, as in the paper's Example 2.
//! let st = dirty.schema().attr_id("ST").unwrap();
//! assert_eq!(outcome.repaired.value(dataset::TupleId(3), st), "AL");
//! // After deduplication only two distinct hospital entities remain.
//! assert_eq!(outcome.deduplicated.len(), 2);
//! ```

pub mod agp;
pub mod cache;
pub mod config;
pub mod evaluation;
pub mod fscr;
pub mod gamma;
pub mod index;
pub mod pipeline;
pub mod rsc;
pub mod weights;

pub use agp::{AbnormalGroupProcessor, AgpMerge, AgpRecord};
pub use cache::{CacheStats, DistanceCache};
pub use config::CleanConfig;
pub use evaluation::{evaluate_agp, evaluate_fscr, evaluate_rsc, ComponentEvaluation};
pub use fscr::{ConflictResolver, FscrRecord, FusionOutcome};
pub use gamma::Gamma;
pub use index::{Block, Group, MlnIndex};
pub use pipeline::{CleaningError, CleaningOutcome, MlnClean, StageTimings};
pub use rsc::{ReliabilityCleaner, RscRecord, RscRepair};
