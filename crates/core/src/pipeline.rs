//! The end-to-end MLNClean pipeline (Algorithm 1 of the paper):
//! index construction → AGP → weight learning → RSC → FSCR → deduplication.

use crate::agp::{AbnormalGroupProcessor, AgpRecord};
use crate::config::CleanConfig;
use crate::fscr::{ConflictResolver, FscrRecord};
use crate::index::{IndexError, MlnIndex};
use crate::rsc::{ReliabilityCleaner, RscRecord};
use crate::weights::assign_weights;
use dataset::Dataset;
use rules::RuleSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors that abort a cleaning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CleaningError {
    /// The rule set does not match the dataset schema.
    Index(IndexError),
    /// The rule set is empty — there is nothing to clean against.
    NoRules,
}

impl fmt::Display for CleaningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleaningError::Index(e) => write!(f, "cannot build the MLN index: {e}"),
            CleaningError::NoRules => write!(f, "the rule set is empty"),
        }
    }
}

impl std::error::Error for CleaningError {}

impl From<IndexError> for CleaningError {
    fn from(e: IndexError) -> Self {
        CleaningError::Index(e)
    }
}

/// Wall-clock timings of each pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// MLN index construction.
    pub index: Duration,
    /// Abnormal group processing.
    pub agp: Duration,
    /// MLN weight learning.
    pub weight_learning: Duration,
    /// Reliability-score cleaning.
    pub rsc: Duration,
    /// Fusion-score conflict resolution (and duplicate removal).
    pub fscr: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.index + self.agp + self.weight_learning + self.rsc + self.fscr
    }
}

/// The result of a cleaning run.
#[derive(Debug, Clone)]
pub struct CleaningOutcome {
    /// The repaired dataset with one row per input tuple (use this for
    /// cell-level evaluation).
    pub repaired: Dataset,
    /// The repaired dataset after removing exact duplicates (MLNClean's final
    /// output); equals `repaired` when deduplication is disabled.
    pub deduplicated: Dataset,
    /// The MLN index in its final (post-RSC) state.
    pub index: MlnIndex,
    /// What AGP did.
    pub agp: AgpRecord,
    /// What RSC did.
    pub rsc: RscRecord,
    /// What FSCR did.
    pub fscr: FscrRecord,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

/// The MLNClean cleaner.
#[derive(Debug, Clone, Default)]
pub struct MlnClean {
    config: CleanConfig,
}

impl MlnClean {
    /// Create a cleaner with the given configuration.
    pub fn new(config: CleanConfig) -> Self {
        MlnClean { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// Clean `dirty` against `rules`.
    ///
    /// Both error detection and error repair happen here: the index/group
    /// structure localizes suspicious data, and the two cleaning stages
    /// rewrite it.  The returned [`CleaningOutcome`] keeps full provenance of
    /// every decision for evaluation and debugging.
    pub fn clean(
        &self,
        dirty: &Dataset,
        rules: &RuleSet,
    ) -> Result<CleaningOutcome, CleaningError> {
        if rules.is_empty() {
            return Err(CleaningError::NoRules);
        }

        let mut timings = StageTimings::default();

        // MLN index construction (Algorithm 1, lines 1–13).
        let start = Instant::now();
        let mut index = MlnIndex::build(dirty, rules)?;
        timings.index = start.elapsed();

        // Stage I: abnormal group processing — the per-block hot loop, run on
        // the rayon pool unless `config.parallel` forces the serial path …
        let start = Instant::now();
        let mut agp_processor = AbnormalGroupProcessor::new(self.config.tau, self.config.metric);
        if let Some(guard) = self.config.agp_distance_guard {
            agp_processor = agp_processor.with_distance_guard(guard);
        }
        let agp = if self.config.parallel {
            agp_processor.process(&mut index)
        } else {
            agp_processor.process_serial(&mut index)
        };
        timings.agp = start.elapsed();

        // … Markov weight learning (the dominant cost in the paper) …
        let start = Instant::now();
        assign_weights(&mut index, &self.config.learning);
        timings.weight_learning = start.elapsed();

        // … and reliability-score cleaning within each group (also per-block
        // parallel).
        let start = Instant::now();
        let rsc_cleaner = ReliabilityCleaner::new(self.config.metric);
        let rsc = if self.config.parallel {
            rsc_cleaner.clean(&mut index)
        } else {
            rsc_cleaner.clean_serial(&mut index)
        };
        timings.rsc = start.elapsed();

        // Stage II: fusion-score conflict resolution + duplicate elimination.
        let start = Instant::now();
        let resolver = ConflictResolver::new(self.config.max_exhaustive_fusion);
        let (repaired, fscr) = resolver.resolve(dirty, &index);
        let deduplicated = if self.config.deduplicate {
            repaired.deduplicated()
        } else {
            repaired.clone()
        };
        timings.fscr = start.elapsed();

        Ok(CleaningOutcome {
            repaired,
            deduplicated,
            index,
            agp,
            rsc,
            fscr,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, sample_hospital_truth, RepairEvaluation, TupleId};
    use rules::sample_hospital_rules;

    #[test]
    fn end_to_end_on_the_paper_sample() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
        let outcome = cleaner.clean(&dirty, &rules).unwrap();

        assert_eq!(outcome.repaired, sample_hospital_truth());
        // t1/t2 collapse to one row, t3..t6 to another.
        assert_eq!(outcome.deduplicated.len(), 2);
        assert_eq!(outcome.agp.detected_count(), 3);
        assert!(outcome.timings.total() > Duration::ZERO);
    }

    #[test]
    fn repaired_keeps_one_row_per_tuple() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default())
            .clean(&dirty, &rules)
            .unwrap();
        assert_eq!(outcome.repaired.len(), dirty.len());
        for t in dirty.tuple_ids() {
            assert_eq!(outcome.repaired.tuple(t).id(), t);
        }
    }

    #[test]
    fn empty_rules_are_rejected() {
        let dirty = sample_hospital_dataset();
        let err = MlnClean::default()
            .clean(&dirty, &RuleSet::default())
            .unwrap_err();
        assert_eq!(err, CleaningError::NoRules);
    }

    #[test]
    fn mismatched_rules_are_rejected() {
        let dirty = sample_hospital_dataset();
        let rules = rules::parse_rules("FD: nope -> ST").unwrap();
        let err = MlnClean::default().clean(&dirty, &rules).unwrap_err();
        assert!(matches!(err, CleaningError::Index(_)));
    }

    #[test]
    fn deduplication_can_be_disabled() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default().with_deduplicate(false))
            .clean(&dirty, &rules)
            .unwrap();
        assert_eq!(outcome.deduplicated.len(), dirty.len());
    }

    #[test]
    fn f1_is_perfect_on_the_sample() {
        // Build the DirtyDataset wrapper so the standard evaluation applies.
        let clean = sample_hospital_truth();
        let dirty_data = sample_hospital_dataset();
        let errors: Vec<dataset::InjectedError> = dirty_data
            .diff_cells(&clean)
            .into_iter()
            .map(|cell| dataset::InjectedError {
                cell,
                error_type: dataset::ErrorType::Replacement,
                original: clean.cell(cell).to_string(),
                dirty: dirty_data.cell(cell).to_string(),
            })
            .collect();
        let dirty = dataset::DirtyDataset {
            dirty: dirty_data,
            clean,
            errors,
        };

        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
        assert_eq!(report.f1(), 1.0, "{report}");
    }

    #[test]
    fn parallel_and_serial_stage1_are_byte_identical_on_the_sample() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let par = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(1).with_parallel(false))
            .clean(&dirty, &rules)
            .unwrap();

        // Cleaned output must be byte-identical, not merely equal in quality.
        assert_eq!(
            dataset::csv::to_csv(&par.repaired),
            dataset::csv::to_csv(&ser.repaired)
        );
        assert_eq!(
            dataset::csv::to_csv(&par.deduplicated),
            dataset::csv::to_csv(&ser.deduplicated)
        );
        // Full provenance must match too: same merges, repairs and fusions in
        // the same order.
        assert_eq!(par.agp, ser.agp);
        assert_eq!(par.rsc, ser.rsc);
        assert_eq!(par.fscr, ser.fscr);
    }

    #[test]
    fn parallel_and_serial_stage1_report_identical_evaluation() {
        // Same check through the RepairEvaluation lens on the Table 1 sample.
        let clean = sample_hospital_truth();
        let dirty_data = sample_hospital_dataset();
        let errors: Vec<dataset::InjectedError> = dirty_data
            .diff_cells(&clean)
            .into_iter()
            .map(|cell| dataset::InjectedError {
                cell,
                error_type: dataset::ErrorType::Replacement,
                original: clean.cell(cell).to_string(),
                dirty: dirty_data.cell(cell).to_string(),
            })
            .collect();
        let dirty = dataset::DirtyDataset {
            dirty: dirty_data,
            clean,
            errors,
        };
        let rules = sample_hospital_rules();

        let par = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(1).with_parallel(false))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let par_report = RepairEvaluation::evaluate(&dirty, &par.repaired);
        let ser_report = RepairEvaluation::evaluate(&dirty, &ser.repaired);
        assert_eq!(par_report, ser_report);
    }

    #[test]
    fn parallel_and_serial_stage1_are_identical_on_a_larger_workload() {
        // Many blocks and groups (synthetic HAI) so the parallel path really
        // splits work across more than one chunk.
        let gen = datagen::HaiGenerator::default()
            .with_rows(300)
            .with_providers(12);
        let rules = datagen::HaiGenerator::rules();
        let dirty = gen.dirty(0.08, 0.5, 11);
        let par = MlnClean::new(CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(2).with_parallel(false))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        assert_eq!(
            dataset::csv::to_csv(&par.repaired),
            dataset::csv::to_csv(&ser.repaired)
        );
        assert_eq!(par.agp, ser.agp);
        assert_eq!(par.rsc, ser.rsc);
    }

    #[test]
    fn uncovered_attributes_are_left_alone() {
        // An attribute no rule mentions must never be modified.
        let dirty = sample_hospital_dataset();
        let rules = rules::parse_rules("FD: CT -> ST").unwrap();
        let outcome = MlnClean::new(CleanConfig::default())
            .clean(&dirty, &rules)
            .unwrap();
        let hn = dirty.schema().attr_id("HN").unwrap();
        let pn = dirty.schema().attr_id("PN").unwrap();
        for t in dirty.tuple_ids() {
            assert_eq!(outcome.repaired.value(t, hn), dirty.value(t, hn));
            assert_eq!(outcome.repaired.value(t, pn), dirty.value(t, pn));
        }
        let _ = TupleId(0);
    }
}
