//! The end-to-end MLNClean pipeline (Algorithm 1 of the paper):
//! index construction → AGP → weight learning → RSC → FSCR → deduplication.
//!
//! [`MlnClean`] is the batch entry point.  Since the incremental engine
//! landed it is a thin wrapper over [`crate::CleaningSession`]: one bulk
//! ingest of the whole dataset followed by
//! [`crate::CleaningSession::finish`] — the batch pipeline is literally the
//! one-batch special case of the streaming one.

use crate::agp::AgpRecord;
use crate::config::CleanConfig;
use crate::fscr::FscrRecord;
use crate::index::{IndexError, MlnIndex};
use crate::rsc::RscRecord;
use crate::session::CleaningSession;
use dataset::Dataset;
use rules::RuleSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Errors that abort a cleaning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CleaningError {
    /// The rule set does not match the dataset schema.
    Index(IndexError),
    /// The rule set is empty — there is nothing to clean against.
    NoRules,
}

impl fmt::Display for CleaningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleaningError::Index(e) => write!(f, "cannot build the MLN index: {e}"),
            CleaningError::NoRules => write!(f, "the rule set is empty"),
        }
    }
}

impl std::error::Error for CleaningError {}

impl From<IndexError> for CleaningError {
    fn from(e: IndexError) -> Self {
        CleaningError::Index(e)
    }
}

/// Wall-clock timings of each pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// MLN index construction.
    pub index: Duration,
    /// Abnormal group processing.
    pub agp: Duration,
    /// MLN weight learning.
    pub weight_learning: Duration,
    /// Reliability-score cleaning.
    pub rsc: Duration,
    /// Fusion-score conflict resolution.
    pub fscr: Duration,
    /// Exact-duplicate removal (zero when deduplication is disabled).
    pub dedup: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.index + self.agp + self.weight_learning + self.rsc + self.fscr + self.dedup
    }
}

/// The result of a cleaning run.
#[derive(Debug, Clone)]
pub struct CleaningOutcome {
    /// The repaired dataset with one row per input tuple (use this for
    /// cell-level evaluation).
    pub repaired: Dataset,
    /// The repaired dataset after removing exact duplicates, or `None` when
    /// deduplication is disabled (access through
    /// [`CleaningOutcome::deduplicated`], which falls back to `repaired`
    /// without cloning).
    pub(crate) deduplicated: Option<Dataset>,
    /// The MLN index in its final (post-RSC) state.
    pub index: MlnIndex,
    /// What AGP did.
    pub agp: AgpRecord,
    /// What RSC did.
    pub rsc: RscRecord,
    /// What FSCR did.
    pub fscr: FscrRecord,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl CleaningOutcome {
    /// MLNClean's final output: the repaired dataset after exact-duplicate
    /// removal.  When deduplication is disabled this is the repaired dataset
    /// itself (no copy is made).
    pub fn deduplicated(&self) -> &Dataset {
        self.deduplicated.as_ref().unwrap_or(&self.repaired)
    }

    /// Consume the outcome, keeping only the final (deduplicated) dataset.
    pub fn into_deduplicated(self) -> Dataset {
        self.deduplicated.unwrap_or(self.repaired)
    }
}

/// The MLNClean cleaner.
#[derive(Debug, Clone, Default)]
pub struct MlnClean {
    config: CleanConfig,
}

impl MlnClean {
    /// Create a cleaner with the given configuration.
    pub fn new(config: CleanConfig) -> Self {
        MlnClean { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// Clean `dirty` against `rules`.
    ///
    /// Both error detection and error repair happen here: the index/group
    /// structure localizes suspicious data, and the two cleaning stages
    /// rewrite it.  The returned [`CleaningOutcome`] keeps full provenance of
    /// every decision for evaluation and debugging.
    ///
    /// This is the one-batch special case of the incremental engine: a
    /// [`CleaningSession`] is opened, the whole dataset is ingested at once
    /// (sharing its columnar storage and value pool), and
    /// [`CleaningSession::finish`] runs every stage exactly as the
    /// pre-session monolithic pipeline did.
    pub fn clean(
        &self,
        dirty: &Dataset,
        rules: &RuleSet,
    ) -> Result<CleaningOutcome, CleaningError> {
        let mut session =
            CleaningSession::new(self.config.clone(), dirty.schema().clone(), rules.clone())?;
        session
            .ingest_dataset(dirty)
            .expect("the session was created with this dataset's schema");
        Ok(session.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, sample_hospital_truth, RepairEvaluation, TupleId};
    use rules::sample_hospital_rules;

    #[test]
    fn end_to_end_on_the_paper_sample() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
        let outcome = cleaner.clean(&dirty, &rules).unwrap();

        assert_eq!(outcome.repaired, sample_hospital_truth());
        // t1/t2 collapse to one row, t3..t6 to another.
        assert_eq!(outcome.deduplicated().len(), 2);
        assert_eq!(outcome.agp.detected_count(), 3);
        assert!(outcome.timings.total() > Duration::ZERO);
    }

    #[test]
    fn repaired_keeps_one_row_per_tuple() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default())
            .clean(&dirty, &rules)
            .unwrap();
        assert_eq!(outcome.repaired.len(), dirty.len());
        for t in dirty.tuple_ids() {
            assert_eq!(outcome.repaired.tuple(t).id(), t);
        }
    }

    #[test]
    fn empty_rules_are_rejected() {
        let dirty = sample_hospital_dataset();
        let err = MlnClean::default()
            .clean(&dirty, &RuleSet::default())
            .unwrap_err();
        assert_eq!(err, CleaningError::NoRules);
    }

    #[test]
    fn mismatched_rules_are_rejected() {
        let dirty = sample_hospital_dataset();
        let rules = rules::parse_rules("FD: nope -> ST").unwrap();
        let err = MlnClean::default().clean(&dirty, &rules).unwrap_err();
        assert!(matches!(err, CleaningError::Index(_)));
    }

    #[test]
    fn deduplication_can_be_disabled() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default().with_deduplicate(false))
            .clean(&dirty, &rules)
            .unwrap();
        assert_eq!(outcome.deduplicated().len(), dirty.len());
    }

    #[test]
    fn f1_is_perfect_on_the_sample() {
        // Build the DirtyDataset wrapper so the standard evaluation applies.
        let clean = sample_hospital_truth();
        let dirty_data = sample_hospital_dataset();
        let errors: Vec<dataset::InjectedError> = dirty_data
            .diff_cells(&clean)
            .into_iter()
            .map(|cell| dataset::InjectedError {
                cell,
                error_type: dataset::ErrorType::Replacement,
                original: clean.cell(cell).to_string(),
                dirty: dirty_data.cell(cell).to_string(),
            })
            .collect();
        let dirty = dataset::DirtyDataset {
            dirty: dirty_data,
            clean,
            errors,
        };

        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
        assert_eq!(report.f1(), 1.0, "{report}");
    }

    #[test]
    fn parallel_and_serial_stage1_are_byte_identical_on_the_sample() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let par = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(1).with_parallel(false))
            .clean(&dirty, &rules)
            .unwrap();

        // Cleaned output must be byte-identical, not merely equal in quality.
        assert_eq!(
            dataset::csv::to_csv(&par.repaired),
            dataset::csv::to_csv(&ser.repaired)
        );
        assert_eq!(
            dataset::csv::to_csv(par.deduplicated()),
            dataset::csv::to_csv(ser.deduplicated())
        );
        // Full provenance must match too: same merges, repairs and fusions in
        // the same order.
        assert_eq!(par.agp, ser.agp);
        assert_eq!(par.rsc, ser.rsc);
        assert_eq!(par.fscr, ser.fscr);
    }

    #[test]
    fn parallel_and_serial_stage1_report_identical_evaluation() {
        // Same check through the RepairEvaluation lens on the Table 1 sample.
        let clean = sample_hospital_truth();
        let dirty_data = sample_hospital_dataset();
        let errors: Vec<dataset::InjectedError> = dirty_data
            .diff_cells(&clean)
            .into_iter()
            .map(|cell| dataset::InjectedError {
                cell,
                error_type: dataset::ErrorType::Replacement,
                original: clean.cell(cell).to_string(),
                dirty: dirty_data.cell(cell).to_string(),
            })
            .collect();
        let dirty = dataset::DirtyDataset {
            dirty: dirty_data,
            clean,
            errors,
        };
        let rules = sample_hospital_rules();

        let par = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(1).with_parallel(false))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let par_report = RepairEvaluation::evaluate(&dirty, &par.repaired);
        let ser_report = RepairEvaluation::evaluate(&dirty, &ser.repaired);
        assert_eq!(par_report, ser_report);
    }

    #[test]
    fn parallel_and_serial_stage1_are_identical_on_a_larger_workload() {
        // Many blocks and groups (synthetic HAI) so the parallel path really
        // splits work across more than one chunk.
        let gen = datagen::HaiGenerator::default()
            .with_rows(300)
            .with_providers(12);
        let rules = datagen::HaiGenerator::rules();
        let dirty = gen.dirty(0.08, 0.5, 11);
        let par = MlnClean::new(CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(2).with_parallel(false))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        assert_eq!(
            dataset::csv::to_csv(&par.repaired),
            dataset::csv::to_csv(&ser.repaired)
        );
        assert_eq!(par.agp, ser.agp);
        assert_eq!(par.rsc, ser.rsc);
    }

    #[test]
    fn uncovered_attributes_are_left_alone() {
        // An attribute no rule mentions must never be modified.
        let dirty = sample_hospital_dataset();
        let rules = rules::parse_rules("FD: CT -> ST").unwrap();
        let outcome = MlnClean::new(CleanConfig::default())
            .clean(&dirty, &rules)
            .unwrap();
        let hn = dirty.schema().attr_id("HN").unwrap();
        let pn = dirty.schema().attr_id("PN").unwrap();
        for t in dirty.tuple_ids() {
            assert_eq!(outcome.repaired.value(t, hn), dirty.value(t, hn));
            assert_eq!(outcome.repaired.value(t, pn), dirty.value(t, pn));
        }
        let _ = TupleId(0);
    }
}
