//! The batch driver of the MLNClean pipeline (Algorithm 1 of the paper):
//! index construction → AGP → weight learning → RSC → FSCR → deduplication.
//!
//! [`MlnClean`] is the one-shot batch [`Engine`].  Since the incremental
//! engine landed it is a thin wrapper over [`crate::CleaningSession`]: one
//! bulk ingest of the whole dataset followed by
//! [`crate::CleaningSession::finish`] — the batch pipeline is literally the
//! one-batch special case of the streaming one.

use crate::config::CleanConfig;
use crate::engine::{Engine, Report};
use crate::error::CleanError;
use crate::session::CleaningSession;
use dataset::Dataset;
use rules::RuleSet;

/// The MLNClean batch cleaner — the one-shot [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct MlnClean {
    config: CleanConfig,
}

impl MlnClean {
    /// Create a cleaner with the given configuration.
    pub fn new(config: CleanConfig) -> Self {
        MlnClean { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// Clean `dirty` against `rules`.
    ///
    /// Both error detection and error repair happen here: the index/group
    /// structure localizes suspicious data, and the two cleaning stages
    /// rewrite it.  The returned [`Report`] keeps full provenance of every
    /// decision for evaluation and debugging.
    ///
    /// This is the one-batch special case of the incremental engine: a
    /// [`CleaningSession`] is opened, the whole dataset is ingested at once
    /// (sharing its columnar storage and value pool), and
    /// [`CleaningSession::finish`] runs every stage exactly as the
    /// pre-session monolithic pipeline did.
    pub fn clean(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError> {
        let mut session =
            CleaningSession::new(self.config.clone(), dirty.schema().clone(), rules.clone())?;
        session.ingest_dataset(dirty)?;
        Ok(session.finish())
    }
}

impl Engine for MlnClean {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn run(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError> {
        self.clean(dirty, rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, sample_hospital_truth, RepairEvaluation, TupleId};
    use rules::sample_hospital_rules;
    use std::time::Duration;

    #[test]
    fn end_to_end_on_the_paper_sample() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let cleaner = MlnClean::new(CleanConfig::default().with_tau(1));
        let outcome = cleaner.clean(&dirty, &rules).unwrap();

        assert_eq!(outcome.repaired, sample_hospital_truth());
        // t1/t2 collapse to one row, t3..t6 to another.
        assert_eq!(outcome.deduplicated().len(), 2);
        assert_eq!(outcome.agp.detected_count(), 3);
        assert!(outcome.timings.total() > Duration::ZERO);
        // Single-node runs carry the final index and no partition report.
        assert!(outcome.index.is_some());
        assert!(outcome.partitions.is_none());
    }

    #[test]
    fn repaired_keeps_one_row_per_tuple() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default())
            .clean(&dirty, &rules)
            .unwrap();
        assert_eq!(outcome.repaired.len(), dirty.len());
        for t in dirty.tuple_ids() {
            assert_eq!(outcome.repaired.tuple(t).id(), t);
        }
    }

    #[test]
    fn empty_rules_are_rejected() {
        let dirty = sample_hospital_dataset();
        let err = MlnClean::default()
            .clean(&dirty, &RuleSet::default())
            .unwrap_err();
        assert_eq!(err, CleanError::NoRules);
    }

    #[test]
    fn mismatched_rules_are_rejected() {
        let dirty = sample_hospital_dataset();
        let rules = rules::parse_rules("FD: nope -> ST").unwrap();
        let err = MlnClean::default().clean(&dirty, &rules).unwrap_err();
        assert!(matches!(err, CleanError::Index(_)));
    }

    #[test]
    fn deduplication_can_be_disabled() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default().with_deduplicate(false))
            .clean(&dirty, &rules)
            .unwrap();
        assert_eq!(outcome.deduplicated().len(), dirty.len());
    }

    #[test]
    fn f1_is_perfect_on_the_sample() {
        // Build the DirtyDataset wrapper so the standard evaluation applies.
        let clean = sample_hospital_truth();
        let dirty_data = sample_hospital_dataset();
        let errors: Vec<dataset::InjectedError> = dirty_data
            .diff_cells(&clean)
            .into_iter()
            .map(|cell| dataset::InjectedError {
                cell,
                error_type: dataset::ErrorType::Replacement,
                original: clean.cell(cell).to_string(),
                dirty: dirty_data.cell(cell).to_string(),
            })
            .collect();
        let dirty = dataset::DirtyDataset {
            dirty: dirty_data,
            clean,
            errors,
        };

        let rules = sample_hospital_rules();
        let outcome = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
        assert_eq!(report.f1(), 1.0, "{report}");
    }

    #[test]
    fn parallel_and_serial_stage1_are_byte_identical_on_the_sample() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let par = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(1).with_parallel(false))
            .clean(&dirty, &rules)
            .unwrap();

        // Cleaned output must be byte-identical, not merely equal in quality.
        assert_eq!(
            dataset::csv::to_csv(&par.repaired),
            dataset::csv::to_csv(&ser.repaired)
        );
        assert_eq!(
            dataset::csv::to_csv(par.deduplicated()),
            dataset::csv::to_csv(ser.deduplicated())
        );
        // Full provenance must match too: same merges, repairs and fusions in
        // the same order.
        assert_eq!(par.agp, ser.agp);
        assert_eq!(par.rsc, ser.rsc);
        assert_eq!(par.fscr, ser.fscr);
    }

    #[test]
    fn parallel_and_serial_stage1_report_identical_evaluation() {
        // Same check through the RepairEvaluation lens on the Table 1 sample.
        let clean = sample_hospital_truth();
        let dirty_data = sample_hospital_dataset();
        let errors: Vec<dataset::InjectedError> = dirty_data
            .diff_cells(&clean)
            .into_iter()
            .map(|cell| dataset::InjectedError {
                cell,
                error_type: dataset::ErrorType::Replacement,
                original: clean.cell(cell).to_string(),
                dirty: dirty_data.cell(cell).to_string(),
            })
            .collect();
        let dirty = dataset::DirtyDataset {
            dirty: dirty_data,
            clean,
            errors,
        };
        let rules = sample_hospital_rules();

        let par = MlnClean::new(CleanConfig::default().with_tau(1))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(1).with_parallel(false))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let par_report = RepairEvaluation::evaluate(&dirty, &par.repaired);
        let ser_report = RepairEvaluation::evaluate(&dirty, &ser.repaired);
        assert_eq!(par_report, ser_report);
    }

    #[test]
    fn parallel_and_serial_stage1_are_identical_on_a_larger_workload() {
        // Many blocks and groups (synthetic HAI) so the parallel path really
        // splits work across more than one chunk.
        let gen = datagen::HaiGenerator::default()
            .with_rows(300)
            .with_providers(12);
        let rules = datagen::HaiGenerator::rules();
        let dirty = gen.dirty(0.08, 0.5, 11);
        let par = MlnClean::new(CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let ser = MlnClean::new(CleanConfig::default().with_tau(2).with_parallel(false))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        assert_eq!(
            dataset::csv::to_csv(&par.repaired),
            dataset::csv::to_csv(&ser.repaired)
        );
        assert_eq!(par.agp, ser.agp);
        assert_eq!(par.rsc, ser.rsc);
    }

    #[test]
    fn uncovered_attributes_are_left_alone() {
        // An attribute no rule mentions must never be modified.
        let dirty = sample_hospital_dataset();
        let rules = rules::parse_rules("FD: CT -> ST").unwrap();
        let outcome = MlnClean::new(CleanConfig::default())
            .clean(&dirty, &rules)
            .unwrap();
        let hn = dirty.schema().attr_id("HN").unwrap();
        let pn = dirty.schema().attr_id("PN").unwrap();
        for t in dirty.tuple_ids() {
            assert_eq!(outcome.repaired.value(t, hn), dirty.value(t, hn));
            assert_eq!(outcome.repaired.value(t, pn), dirty.value(t, pn));
        }
        let _ = TupleId(0);
    }
}
