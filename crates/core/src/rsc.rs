//! RSC — Reliability-Score-based Cleaning (Section 5.1.2).
//!
//! Within a group, all γs share the same reason-part values; if more than one
//! γ exists, the result parts disagree and at least one of them is dirty.
//! RSC keeps the γ with the highest **reliability score**
//!
//! ```text
//! r-score(γᵢ) = min_{γ* ∈ G∖{γᵢ}} dist(γᵢ, γ*) × Pr(γᵢ)
//! dist(γᵢ, γ*) = n · d(γᵢ, γ*) / Z
//! ```
//!
//! (Definition 2) where `n` is the number of tuples related to γᵢ, `d` the
//! string-record distance, `Z` a normalization constant keeping `dist` in
//! `[0, 1]`, and `Pr(γᵢ)` the block-softmaxed learned weight (Eq. 3).  Every
//! other γ of the group is replaced by the winner, so each group ends up with
//! exactly one piece of data.
//!
//! Each group's pairwise γ distances are computed once into a small matrix
//! (they are needed twice: for the normalization constant and for the score
//! minima), and the underlying string metric is memoised per block in a
//! [`DistanceCache`] keyed on interned value pairs.

use crate::cache::{CacheStats, DistanceCache};
use crate::gamma::Gamma;
use crate::index::{Block, MlnIndex};
use dataset::{TupleId, ValuePool};
use distance::Metric;
use rayon::prelude::*;
use rules::RuleId;
use serde::{Deserialize, Serialize};

/// One repair performed by RSC: the tuples of a losing γ are rewritten to the
/// winning γ's values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RscRepair {
    /// Block in which the repair happened.
    pub rule: RuleId,
    /// Group key (shared reason-part values at the time of cleaning).
    pub group_key: Vec<String>,
    /// The replaced γ's values (reason part then result part).
    pub from_values: Vec<String>,
    /// The winning γ's values (reason part then result part).
    pub to_values: Vec<String>,
    /// Tuples that were rewritten.
    pub tuples: Vec<TupleId>,
}

/// The full RSC record of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RscRecord {
    /// Every γ replacement, in processing order.
    pub repairs: Vec<RscRepair>,
    /// Distance-cache counters accumulated over all blocks.
    pub cache: CacheStats,
}

/// Equality compares the *repairs*, not the distance-cache counters: the
/// incremental [`crate::CleaningSession`] keeps a persistent per-block cache
/// across refreshes, so its hit/miss split legitimately differs from a cold
/// batch run even when the repairs are byte-identical.
impl PartialEq for RscRecord {
    fn eq(&self, other: &Self) -> bool {
        self.repairs == other.repairs
    }
}

impl RscRecord {
    /// Number of γs that were repaired (replaced).
    pub fn repaired_count(&self) -> usize {
        self.repairs.len()
    }
}

/// The RSC strategy.
#[derive(Debug, Clone)]
pub struct ReliabilityCleaner {
    /// Distance metric used in the reliability score.
    pub metric: Metric,
}

impl ReliabilityCleaner {
    /// Create an RSC cleaner.
    pub fn new(metric: Metric) -> Self {
        ReliabilityCleaner { metric }
    }

    /// Compute the reliability score of `gamma` against the other γs of its
    /// group.  `z` is the group's normalization constant.
    ///
    /// This is the one-off (non-memoising) form of the score; the cleaning
    /// loop itself computes each group's pairwise distance matrix once and
    /// scores from that, so changes to the scoring formula belong in the
    /// private `score_from_min_distance` helper, which both paths share.
    pub fn reliability_score(
        &self,
        pool: &ValuePool,
        gamma: &Gamma,
        others: &[&Gamma],
        z: f64,
    ) -> f64 {
        let mut cache = DistanceCache::new(self.metric);
        let ids = gamma.value_ids();
        let min_distance = others
            .iter()
            .map(|o| cache.record_distance(pool, &ids, &o.value_ids()))
            .fold(f64::INFINITY, f64::min);
        score_from_min_distance(gamma, min_distance, z)
    }

    /// Clean every group of every block in place; groups end up with exactly
    /// one γ.  Returns the record of replacements.
    ///
    /// Blocks are independent (one per rule), so they are cleaned in
    /// parallel; per-block results are reassembled in block order, making the
    /// outcome identical to [`ReliabilityCleaner::clean_serial`].
    pub fn clean(&self, index: &mut MlnIndex) -> RscRecord {
        let (blocks, pool) = index.split_mut();
        let taken = std::mem::take(blocks);
        let cleaned: Vec<(Block, RscRecord)> = taken
            .into_par_iter()
            .map(|mut block| {
                let record = self.clean_block(&mut block, pool);
                (block, record)
            })
            .collect();
        let mut record = RscRecord::default();
        for (block, block_record) in cleaned {
            blocks.push(block);
            record.repairs.extend(block_record.repairs);
            record.cache.absorb(block_record.cache);
        }
        record
    }

    /// Serial reference implementation of [`ReliabilityCleaner::clean`], kept
    /// for the parallel-equivalence tests.
    pub fn clean_serial(&self, index: &mut MlnIndex) -> RscRecord {
        let (blocks, pool) = index.split_mut();
        let mut record = RscRecord::default();
        for block in blocks.iter_mut() {
            let block_record = self.clean_block(block, pool);
            record.repairs.extend(block_record.repairs);
            record.cache.absorb(block_record.cache);
        }
        record
    }

    /// Clean a single block in place.  This is the per-block unit both the
    /// whole-index paths above and the incremental
    /// [`crate::CleaningSession`] compose.
    pub(crate) fn clean_block(&self, block: &mut Block, pool: &ValuePool) -> RscRecord {
        let mut record = RscRecord::default();
        let mut cache = DistanceCache::new(self.metric);
        let rule = block.rule;
        for group in &mut block.groups {
            record
                .repairs
                .extend(self.clean_group(rule, group, pool, &mut cache));
        }
        record.cache.absorb(cache.stats());
        record
    }

    /// Clean a single group in place, returning the repairs it produced.
    ///
    /// Groups are scored independently (Z is group-local: the largest
    /// support-scaled pair distance among the group's own γs), so this is
    /// the unit the group-scoped incremental refresh re-runs for a dirty
    /// group without touching its siblings.
    pub(crate) fn clean_group(
        &self,
        rule: RuleId,
        group: &mut crate::index::Group,
        pool: &ValuePool,
        cache: &mut DistanceCache,
    ) -> Vec<RscRepair> {
        if group.gammas.len() <= 1 {
            return Vec::new(); // already the ideal state; skipped like G21 in the paper
        }
        let mut repairs = Vec::new();
        {
            // Pairwise γ distances, each pair computed once (the matrix is
            // symmetric; the value-pair memo additionally dedups across
            // groups of the block).
            let n = group.gammas.len();
            let ids: Vec<Vec<dataset::ValueId>> =
                group.gammas.iter().map(|g| g.value_ids()).collect();
            let mut dist = vec![vec![0.0f64; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = cache.record_distance(pool, &ids[i], &ids[j]);
                    dist[i][j] = d;
                    dist[j][i] = d;
                }
            }

            // Normalization constant Z: the largest support-scaled pair
            // distance in the group, so every dist lands in [0, 1].
            let mut z: f64 = 0.0;
            for (i, gi) in group.gammas.iter().enumerate() {
                for (j, &d) in dist[i].iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    z = z.max(gi.support() as f64 * d);
                }
            }
            if z == 0.0 {
                z = 1.0;
            }

            // Pick the winner by reliability score (ties broken by
            // support, then by string value order for determinism).
            let mut best_idx = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (i, gamma) in group.gammas.iter().enumerate() {
                let min_distance = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| dist[i][j])
                    .fold(f64::INFINITY, f64::min);
                let score = score_from_min_distance(gamma, min_distance, z);
                let better = score > best_score
                    || (score == best_score
                        && (gamma.support() > group.gammas[best_idx].support()
                            || (gamma.support() == group.gammas[best_idx].support()
                                && gamma.resolve_values(pool)
                                    < group.gammas[best_idx].resolve_values(pool))));
                if better {
                    best_idx = i;
                    best_score = score;
                }
            }

            // Replace every losing γ with the winner.
            let winner = group.gammas[best_idx].clone();
            let mut merged_tuples = winner.tuples.clone();
            let to_values: Vec<String> = winner
                .resolve_values(pool)
                .into_iter()
                .map(str::to_string)
                .collect();
            for (i, gamma) in group.gammas.iter().enumerate() {
                if i == best_idx {
                    continue;
                }
                repairs.push(RscRepair {
                    rule,
                    group_key: group
                        .resolve_key(pool)
                        .into_iter()
                        .map(str::to_string)
                        .collect(),
                    from_values: gamma
                        .resolve_values(pool)
                        .into_iter()
                        .map(str::to_string)
                        .collect(),
                    to_values: to_values.clone(),
                    tuples: gamma.tuples.clone(),
                });
                merged_tuples.extend(gamma.tuples.iter().cloned());
            }
            merged_tuples.sort();
            merged_tuples.dedup();

            let mut final_gamma = winner;
            final_gamma.tuples = merged_tuples;
            group.gammas = vec![final_gamma];
        }
        repairs
    }
}

/// `r-score` from a precomputed minimum pair distance (Definition 2).
fn score_from_min_distance(gamma: &Gamma, min_distance: f64, z: f64) -> f64 {
    if !min_distance.is_finite() {
        // Lone γ in its group: nothing to compare against, the group is
        // already clean and the score is irrelevant.
        return gamma.probability;
    }
    let dist = gamma.support() as f64 * min_distance / z;
    dist * gamma.probability
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agp::AbnormalGroupProcessor;
    use crate::index::MlnIndex;
    use crate::weights::assign_weights;
    use dataset::sample_hospital_dataset;
    use rules::sample_hospital_rules;

    /// Index after AGP(τ=1) + weight learning, ready for RSC — the state of
    /// the paper's running example entering Section 5.1.2.
    fn prepared_index() -> MlnIndex {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        AbnormalGroupProcessor::new(1, Metric::Levenshtein).process(&mut index);
        assign_weights(&mut index);
        index
    }

    #[test]
    fn example2_boaz_group_keeps_al() {
        // Example 2: in G13, {BOAZ, AL} (2 tuples) beats {BOAZ, AK} (1 tuple).
        let mut index = prepared_index();
        let record = ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);

        let boaz = index.group_by_key(RuleId(0), &["BOAZ"]).unwrap();
        assert_eq!(boaz.gamma_count(), 1);
        assert_eq!(
            boaz.gammas[0].resolve_result_values(index.pool()),
            vec!["AL"]
        );
        assert_eq!(
            boaz.gammas[0].support(),
            3,
            "all three BOAZ tuples end on the winner"
        );

        // The AK γ was repaired.
        assert!(record.repairs.iter().any(|r| {
            r.rule == RuleId(0)
                && r.from_values == vec!["BOAZ", "AK"]
                && r.to_values == vec!["BOAZ", "AL"]
        }));
    }

    #[test]
    fn figure4_clean_versions() {
        // After AGP + RSC the three clean data versions of Figure 4 emerge.
        let mut index = prepared_index();
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        let pool = index.pool().clone();

        // Version 1 (block B1): {DOTHAN, AL} for t1–t3 and {BOAZ, AL} for t4–t6.
        let b1 = index.block(RuleId(0));
        assert_eq!(b1.group_count(), 2);
        for group in &b1.groups {
            assert!(group.is_clean());
            assert_eq!(group.gammas[0].resolve_result_values(&pool), vec!["AL"]);
        }
        let dothan = index.group_by_key(RuleId(0), &["DOTHAN"]).unwrap();
        assert_eq!(dothan.gammas[0].support(), 3);

        // Version 2 (block B2): {3347938701, AL} and {2567688400, AL}.
        let b2 = index.block(RuleId(1));
        for group in &b2.groups {
            assert!(group.is_clean());
            assert_eq!(group.gammas[0].resolve_result_values(&pool), vec!["AL"]);
        }

        // Version 3 (block B3): a single group {ELIZA, BOAZ, 2567688400} for t3–t6.
        let b3 = index.block(RuleId(2));
        assert_eq!(b3.group_count(), 1);
        let g = &b3.groups[0];
        assert!(g.is_clean());
        assert_eq!(g.gammas[0].resolve_result_values(&pool), vec!["2567688400"]);
        assert_eq!(g.gammas[0].support(), 4);
    }

    #[test]
    fn every_group_is_singleton_after_rsc() {
        let mut index = prepared_index();
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        for block in &index.blocks {
            for group in &block.groups {
                assert!(group.is_clean(), "group {group} still has multiple γs");
            }
        }
    }

    #[test]
    fn rsc_preserves_tuple_coverage() {
        let mut index = prepared_index();
        let before: Vec<usize> = index
            .blocks
            .iter()
            .map(|b| b.groups.iter().map(|g| g.all_tuples().len()).sum())
            .collect();
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        let after: Vec<usize> = index
            .blocks
            .iter()
            .map(|b| b.groups.iter().map(|g| g.all_tuples().len()).sum())
            .collect();
        assert_eq!(before, after, "RSC must not lose or duplicate tuples");
    }

    #[test]
    fn parallel_and_serial_cleaning_are_identical() {
        let mut par_index = prepared_index();
        let mut ser_index = prepared_index();
        let cleaner = ReliabilityCleaner::new(Metric::Levenshtein);
        let par_record = cleaner.clean(&mut par_index);
        let ser_record = cleaner.clean_serial(&mut ser_index);
        assert_eq!(par_record, ser_record);
        assert_eq!(format!("{par_index:?}"), format!("{ser_index:?}"));
    }

    #[test]
    fn reliability_score_agrees_with_the_cleaning_decision() {
        // The public one-off score must rank the BOAZ γs the same way the
        // memoised cleaning loop does: {BOAZ, AL} (support 2) beats
        // {BOAZ, AK} (support 1).
        let index = prepared_index();
        let cleaner = ReliabilityCleaner::new(Metric::Levenshtein);
        let boaz = index.group_by_key(RuleId(0), &["BOAZ"]).unwrap();
        let al = boaz
            .gammas
            .iter()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AL"])
            .unwrap();
        let ak = boaz
            .gammas
            .iter()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AK"])
            .unwrap();
        // Z as the cleaning loop computes it: max support-scaled pair distance.
        let d = distance::levenshtein("AL", "AK") as f64;
        let z = (al.support() as f64 * d).max(ak.support() as f64 * d);
        let al_score = cleaner.reliability_score(index.pool(), al, &[ak], z);
        let ak_score = cleaner.reliability_score(index.pool(), ak, &[al], z);
        assert!(
            al_score > ak_score,
            "{al_score} must beat {ak_score} so RSC keeps AL"
        );
    }

    #[test]
    fn clean_groups_are_untouched() {
        let truth = dataset::sample_hospital_truth();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&truth, &rules).unwrap();
        assign_weights(&mut index);
        let record = ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        assert_eq!(record.repaired_count(), 0);
    }
}
