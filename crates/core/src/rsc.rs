//! RSC — Reliability-Score-based Cleaning (Section 5.1.2).
//!
//! Within a group, all γs share the same reason-part values; if more than one
//! γ exists, the result parts disagree and at least one of them is dirty.
//! RSC keeps the γ with the highest **reliability score**
//!
//! ```text
//! r-score(γᵢ) = min_{γ* ∈ G∖{γᵢ}} dist(γᵢ, γ*) × Pr(γᵢ)
//! dist(γᵢ, γ*) = n · d(γᵢ, γ*) / Z
//! ```
//!
//! (Definition 2) where `n` is the number of tuples related to γᵢ, `d` the
//! string-record distance, `Z` a normalization constant keeping `dist` in
//! `[0, 1]`, and `Pr(γᵢ)` the block-softmaxed learned weight (Eq. 3).  Every
//! other γ of the group is replaced by the winner, so each group ends up with
//! exactly one piece of data.

use crate::gamma::Gamma;
use crate::index::{Block, MlnIndex};
use dataset::TupleId;
use distance::{record_distance, Metric};
use rayon::prelude::*;
use rules::RuleId;
use serde::{Deserialize, Serialize};

/// One repair performed by RSC: the tuples of a losing γ are rewritten to the
/// winning γ's values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RscRepair {
    /// Block in which the repair happened.
    pub rule: RuleId,
    /// Group key (shared reason-part values at the time of cleaning).
    pub group_key: Vec<String>,
    /// The replaced γ's values (reason part then result part).
    pub from_values: Vec<String>,
    /// The winning γ's values (reason part then result part).
    pub to_values: Vec<String>,
    /// Tuples that were rewritten.
    pub tuples: Vec<TupleId>,
}

/// The full RSC record of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RscRecord {
    /// Every γ replacement, in processing order.
    pub repairs: Vec<RscRepair>,
}

impl RscRecord {
    /// Number of γs that were repaired (replaced).
    pub fn repaired_count(&self) -> usize {
        self.repairs.len()
    }
}

/// The RSC strategy.
#[derive(Debug, Clone)]
pub struct ReliabilityCleaner {
    /// Distance metric used in the reliability score.
    pub metric: Metric,
}

impl ReliabilityCleaner {
    /// Create an RSC cleaner.
    pub fn new(metric: Metric) -> Self {
        ReliabilityCleaner { metric }
    }

    /// Compute the reliability score of `gamma` against the other γs of its
    /// group.  `z` is the group's normalization constant.
    pub fn reliability_score(&self, gamma: &Gamma, others: &[&Gamma], z: f64) -> f64 {
        let min_distance = others
            .iter()
            .map(|o| record_distance(&self.metric, &gamma.values(), &o.values()))
            .fold(f64::INFINITY, f64::min);
        if !min_distance.is_finite() {
            // Lone γ in its group: nothing to compare against, the group is
            // already clean and the score is irrelevant.
            return gamma.probability;
        }
        let dist = gamma.support() as f64 * min_distance / z;
        dist * gamma.probability
    }

    /// Clean every group of every block in place; groups end up with exactly
    /// one γ.  Returns the record of replacements.
    ///
    /// Blocks are independent (one per rule), so they are cleaned in
    /// parallel; per-block results are reassembled in block order, making the
    /// outcome identical to [`ReliabilityCleaner::clean_serial`].
    pub fn clean(&self, index: &mut MlnIndex) -> RscRecord {
        let blocks = std::mem::take(&mut index.blocks);
        let cleaned: Vec<(Block, RscRecord)> = blocks
            .into_par_iter()
            .map(|mut block| {
                let record = self.clean_block(&mut block);
                (block, record)
            })
            .collect();
        let mut record = RscRecord::default();
        for (block, block_record) in cleaned {
            index.blocks.push(block);
            record.repairs.extend(block_record.repairs);
        }
        record
    }

    /// Serial reference implementation of [`ReliabilityCleaner::clean`], kept
    /// for the parallel-equivalence tests.
    pub fn clean_serial(&self, index: &mut MlnIndex) -> RscRecord {
        let mut record = RscRecord::default();
        for block in &mut index.blocks {
            let block_record = self.clean_block(block);
            record.repairs.extend(block_record.repairs);
        }
        record
    }

    /// Clean a single block in place.
    fn clean_block(&self, block: &mut Block) -> RscRecord {
        let mut record = RscRecord::default();
        for group in &mut block.groups {
            if group.gammas.len() <= 1 {
                continue; // already the ideal state; skipped like G21 in the paper
            }

            // Normalization constant Z: the largest support-scaled pair
            // distance in the group, so every dist lands in [0, 1].
            let mut z: f64 = 0.0;
            for (i, gi) in group.gammas.iter().enumerate() {
                for (j, gj) in group.gammas.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let d = record_distance(&self.metric, &gi.values(), &gj.values());
                    z = z.max(gi.support() as f64 * d);
                }
            }
            if z == 0.0 {
                z = 1.0;
            }

            // Pick the winner by reliability score (ties broken by
            // support, then by value order for determinism).
            let mut best_idx = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (i, gamma) in group.gammas.iter().enumerate() {
                let others: Vec<&Gamma> = group
                    .gammas
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, g)| g)
                    .collect();
                let score = self.reliability_score(gamma, &others, z);
                let better = score > best_score
                    || (score == best_score
                        && (gamma.support() > group.gammas[best_idx].support()
                            || (gamma.support() == group.gammas[best_idx].support()
                                && gamma.values() < group.gammas[best_idx].values())));
                if better {
                    best_idx = i;
                    best_score = score;
                }
            }

            // Replace every losing γ with the winner.
            let winner = group.gammas[best_idx].clone();
            let mut merged_tuples = winner.tuples.clone();
            for (i, gamma) in group.gammas.iter().enumerate() {
                if i == best_idx {
                    continue;
                }
                let mut from_values: Vec<String> = gamma.reason_values.to_vec();
                from_values.extend(gamma.result_values.iter().cloned());
                let mut to_values: Vec<String> = winner.reason_values.to_vec();
                to_values.extend(winner.result_values.iter().cloned());
                record.repairs.push(RscRepair {
                    rule: block.rule,
                    group_key: group.key.clone(),
                    from_values,
                    to_values,
                    tuples: gamma.tuples.clone(),
                });
                merged_tuples.extend(gamma.tuples.iter().cloned());
            }
            merged_tuples.sort();
            merged_tuples.dedup();

            let mut final_gamma = winner;
            final_gamma.tuples = merged_tuples;
            group.gammas = vec![final_gamma];
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agp::AbnormalGroupProcessor;
    use crate::index::MlnIndex;
    use crate::weights::assign_weights;
    use dataset::sample_hospital_dataset;
    use mln::LearningConfig;
    use rules::sample_hospital_rules;

    /// Index after AGP(τ=1) + weight learning, ready for RSC — the state of
    /// the paper's running example entering Section 5.1.2.
    fn prepared_index() -> MlnIndex {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        AbnormalGroupProcessor::new(1, Metric::Levenshtein).process(&mut index);
        assign_weights(&mut index, &LearningConfig::default());
        index
    }

    #[test]
    fn example2_boaz_group_keeps_al() {
        // Example 2: in G13, {BOAZ, AL} (2 tuples) beats {BOAZ, AK} (1 tuple).
        let mut index = prepared_index();
        let record = ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);

        let b1 = index.block(RuleId(0));
        let boaz = b1.group_by_key(&["BOAZ".to_string()]).unwrap();
        assert_eq!(boaz.gamma_count(), 1);
        assert_eq!(boaz.gammas[0].result_values, vec!["AL"]);
        assert_eq!(
            boaz.gammas[0].support(),
            3,
            "all three BOAZ tuples end on the winner"
        );

        // The AK γ was repaired.
        assert!(record.repairs.iter().any(|r| {
            r.rule == RuleId(0)
                && r.from_values == vec!["BOAZ", "AK"]
                && r.to_values == vec!["BOAZ", "AL"]
        }));
    }

    #[test]
    fn figure4_clean_versions() {
        // After AGP + RSC the three clean data versions of Figure 4 emerge.
        let mut index = prepared_index();
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);

        // Version 1 (block B1): {DOTHAN, AL} for t1–t3 and {BOAZ, AL} for t4–t6.
        let b1 = index.block(RuleId(0));
        assert_eq!(b1.group_count(), 2);
        for group in &b1.groups {
            assert!(group.is_clean());
            assert_eq!(group.gammas[0].result_values, vec!["AL"]);
        }
        let dothan = b1.group_by_key(&["DOTHAN".to_string()]).unwrap();
        assert_eq!(dothan.gammas[0].support(), 3);

        // Version 2 (block B2): {3347938701, AL} and {2567688400, AL}.
        let b2 = index.block(RuleId(1));
        for group in &b2.groups {
            assert!(group.is_clean());
            assert_eq!(group.gammas[0].result_values, vec!["AL"]);
        }

        // Version 3 (block B3): a single group {ELIZA, BOAZ, 2567688400} for t3–t6.
        let b3 = index.block(RuleId(2));
        assert_eq!(b3.group_count(), 1);
        let g = &b3.groups[0];
        assert!(g.is_clean());
        assert_eq!(g.gammas[0].result_values, vec!["2567688400"]);
        assert_eq!(g.gammas[0].support(), 4);
    }

    #[test]
    fn every_group_is_singleton_after_rsc() {
        let mut index = prepared_index();
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        for block in &index.blocks {
            for group in &block.groups {
                assert!(group.is_clean(), "group {group} still has multiple γs");
            }
        }
    }

    #[test]
    fn rsc_preserves_tuple_coverage() {
        let mut index = prepared_index();
        let before: Vec<usize> = index
            .blocks
            .iter()
            .map(|b| b.groups.iter().map(|g| g.all_tuples().len()).sum())
            .collect();
        ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        let after: Vec<usize> = index
            .blocks
            .iter()
            .map(|b| b.groups.iter().map(|g| g.all_tuples().len()).sum())
            .collect();
        assert_eq!(before, after, "RSC must not lose or duplicate tuples");
    }

    #[test]
    fn parallel_and_serial_cleaning_are_identical() {
        let mut par_index = prepared_index();
        let mut ser_index = prepared_index();
        let cleaner = ReliabilityCleaner::new(Metric::Levenshtein);
        let par_record = cleaner.clean(&mut par_index);
        let ser_record = cleaner.clean_serial(&mut ser_index);
        assert_eq!(par_record, ser_record);
        assert_eq!(format!("{par_index:?}"), format!("{ser_index:?}"));
    }

    #[test]
    fn clean_groups_are_untouched() {
        let truth = dataset::sample_hospital_truth();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&truth, &rules).unwrap();
        assign_weights(&mut index, &LearningConfig::default());
        let record = ReliabilityCleaner::new(Metric::Levenshtein).clean(&mut index);
        assert_eq!(record.repaired_count(), 0);
    }
}
