//! The incremental cleaning engine: a [`CleaningSession`] owns the dataset,
//! the MLN index and all per-stage state across micro-batch ingests.
//!
//! The paper's Algorithm 1 is batch-only: every run rebuilds the index,
//! re-learns every weight and re-cleans every block.  The session keeps two
//! copies of the index instead:
//!
//! * a **pristine** index, incrementally maintained so it is byte-identical
//!   to `MlnIndex::build` over all rows ingested so far, and
//! * a **cleaned** index holding, per block, the post-AGP/weights/RSC state
//!   of the last refresh, plus the per-block provenance records.
//!
//! [`CleaningSession::ingest_batch`] appends rows, splices them into the
//! pristine blocks/groups and marks the touched blocks dirty.  Producing an
//! [`CleaningOutcome`] then re-runs AGP → weight learning → RSC **only on
//! dirty blocks** (from their pristine state — Stage I is per-block
//! deterministic, so an untouched block's cached clean state is exactly what
//! a full batch run would recompute) and re-fuses **only the tuples covered
//! by dirty blocks** (FSCR is per-tuple deterministic given the cleaned
//! blocks; all other tuples replay their memoised [`TupleFusion`]).  The
//! result is byte-identical — output CSV and AGP/RSC/FSCR provenance — to a
//! single batch run over the accumulated data, which is what
//! [`crate::MlnClean::clean`] now is: one bulk ingest plus
//! [`CleaningSession::finish`].

use crate::agp::AgpRecord;
use crate::fscr::{apply_tuple_fusion, ConflictResolver, FscrRecord, TupleFusion};
use crate::index::{Block, InsertReport, MlnIndex};
use crate::pipeline::{CleaningError, CleaningOutcome, StageTimings};
use crate::rsc::RscRecord;
use crate::stage::{AgpStage, RscStage, WeightLearningStage};
use crate::CleanConfig;
use dataset::{ArityMismatch, Dataset, Schema, TupleId};
use rayon::prelude::*;
use rules::RuleSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Errors of a micro-batch ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// A row's arity does not match the session schema.
    Arity(ArityMismatch),
    /// The ingested dataset's schema differs from the session schema.
    SchemaMismatch,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Arity(e) => write!(f, "cannot ingest batch: {e}"),
            IngestError::SchemaMismatch => {
                write!(
                    f,
                    "cannot ingest batch: dataset schema differs from the session schema"
                )
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<ArityMismatch> for IngestError {
    fn from(e: ArityMismatch) -> Self {
        IngestError::Arity(e)
    }
}

/// What one micro-batch ingest changed — the dirtiness the next re-clean
/// will have to pay for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchReport {
    /// 1-based ordinal of this ingest within the session.
    pub batch: usize,
    /// Rows in this batch.
    pub rows: usize,
    /// Total rows ingested so far.
    pub total_rows: usize,
    /// Blocks currently dirty (touched since the last re-clean, including by
    /// this batch).
    pub dirty_blocks: usize,
    /// Total blocks (= rules).
    pub total_blocks: usize,
    /// Distinct groups touched by this batch alone.
    pub touched_groups: usize,
    /// Total groups across all blocks after this batch.
    pub total_groups: usize,
}

/// Cached post-Stage-I provenance of one block.
#[derive(Debug, Clone, Default)]
struct BlockRecords {
    agp: AgpRecord,
    rsc: RscRecord,
}

/// An incremental MLNClean engine over micro-batch ingest.
///
/// See the [module docs](self) for the design; see
/// [`crate::MlnClean::clean`] for the batch special case (one bulk ingest +
/// [`CleaningSession::finish`]).
#[derive(Debug, Clone)]
pub struct CleaningSession {
    config: CleanConfig,
    rules: RuleSet,
    dataset: Dataset,
    /// Byte-identical to `MlnIndex::build(&self.dataset, &self.rules)`.
    pristine: MlnIndex,
    /// Per block: the post-AGP/weights/RSC state of the last refresh.
    cleaned: MlnIndex,
    block_records: Vec<BlockRecords>,
    block_dirty: Vec<bool>,
    /// Per tuple: the memoised FSCR fusion (`None` = must be (re)fused).
    fusions: Vec<Option<TupleFusion>>,
    timings: StageTimings,
    batches: usize,
}

impl CleaningSession {
    /// Open a session for `schema` under `rules`.
    ///
    /// Fails like [`crate::MlnClean::clean`] does: on an empty rule set, or
    /// on a rule referencing an attribute the schema does not have.
    pub fn new(config: CleanConfig, schema: Schema, rules: RuleSet) -> Result<Self, CleaningError> {
        if rules.is_empty() {
            return Err(CleaningError::NoRules);
        }
        let dataset = Dataset::new(schema);
        let pristine = MlnIndex::build_serial(&dataset, &rules)?;
        let cleaned = pristine.clone();
        let blocks = pristine.block_count();
        Ok(CleaningSession {
            config,
            rules,
            dataset,
            pristine,
            cleaned,
            block_records: vec![BlockRecords::default(); blocks],
            block_dirty: vec![false; blocks],
            fusions: Vec::new(),
            timings: StageTimings::default(),
            batches: 0,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// The rule set the session cleans against.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The accumulated (dirty) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Rows ingested so far.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether nothing has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Number of blocks (= rules).
    pub fn total_blocks(&self) -> usize {
        self.pristine.block_count()
    }

    /// Blocks currently dirty (they will re-run Stage I on the next
    /// outcome).
    pub fn dirty_block_count(&self) -> usize {
        self.block_dirty.iter().filter(|&&d| d).count()
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Cumulative per-stage wall-clock timings across all ingests and
    /// re-cleans of this session.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Ingest one micro-batch of string rows.
    ///
    /// The batch is atomic: every row's arity is validated before any row is
    /// appended.  The rows are appended to the dataset, spliced into the
    /// pristine blocks/groups, and the touched blocks are marked dirty.
    pub fn ingest_batch(&mut self, rows: Vec<Vec<String>>) -> Result<BatchReport, IngestError> {
        let from = self.dataset.len();
        let started = Instant::now();
        self.dataset.extend_rows(rows)?;
        let report =
            self.pristine
                .insert_tuples(&self.dataset, &self.rules, from, self.config.parallel);
        self.timings.index += started.elapsed();
        Ok(self.register_ingest(report))
    }

    /// Ingest a whole dataset (the batch special case).
    ///
    /// When the session is still empty this shares the dataset's columnar
    /// storage and value pool outright (no re-interning) and builds the
    /// pristine index with the bulk `MlnIndex::build_with` path; otherwise
    /// the rows are appended via [`Dataset::extend_from`], which re-interns
    /// each distinct value once.
    pub fn ingest_dataset(&mut self, ds: &Dataset) -> Result<BatchReport, IngestError> {
        if ds.schema() != self.dataset.schema() {
            return Err(IngestError::SchemaMismatch);
        }
        let started = Instant::now();
        let report = if self.dataset.is_empty() {
            self.dataset = ds.clone();
            self.pristine = MlnIndex::build_with(&self.dataset, &self.rules, self.config.parallel)
                .expect("rules were validated when the session was created");
            // A bulk build touches exactly the groups it creates.
            let groups: Vec<usize> = self
                .pristine
                .blocks
                .iter()
                .map(|b| b.group_count())
                .collect();
            InsertReport {
                rows: ds.len(),
                touched_groups: groups.clone(),
                created_groups: groups,
            }
        } else {
            let from = self.dataset.len();
            self.dataset
                .extend_from(ds)
                .map_err(|_| IngestError::SchemaMismatch)?;
            self.pristine
                .insert_tuples(&self.dataset, &self.rules, from, self.config.parallel)
        };
        self.timings.index += started.elapsed();
        Ok(self.register_ingest(report))
    }

    /// Book-keep one ingest: grow the fusion cache, mark dirty blocks, build
    /// the batch report.
    fn register_ingest(&mut self, insert: InsertReport) -> BatchReport {
        self.batches += 1;
        self.fusions.resize(self.dataset.len(), None);
        for (dirty, &touched) in self.block_dirty.iter_mut().zip(&insert.touched_groups) {
            if touched > 0 {
                *dirty = true;
            }
        }
        BatchReport {
            batch: self.batches,
            rows: insert.rows,
            total_rows: self.dataset.len(),
            dirty_blocks: self.dirty_block_count(),
            total_blocks: self.pristine.block_count(),
            touched_groups: insert.total_touched_groups(),
            total_groups: self.pristine.blocks.iter().map(|b| b.group_count()).sum(),
        }
    }

    /// Re-run Stage I (AGP → weight learning → RSC) on every dirty block,
    /// from its pristine state, and refresh the cleaned index and the
    /// per-block provenance.  Clean blocks keep their cached state — their
    /// pristine content is exactly what a full rebuild would produce, so the
    /// cached cleaned state is too.
    fn refresh(&mut self) {
        if !self.block_dirty.iter().any(|&d| d) {
            return;
        }

        // Tuples covered by a dirty block must be re-fused: their version
        // set or their substitution candidates may have changed.  (Block
        // membership only ever grows, and AGP/RSC preserve it, so pristine
        // membership is the right over-approximation.)
        for (block, &dirty) in self.pristine.blocks.iter().zip(&self.block_dirty) {
            if !dirty {
                continue;
            }
            for gamma in block.gammas() {
                for &t in &gamma.tuples {
                    self.fusions[t.index()] = None;
                }
            }
        }

        let dirty_idx: Vec<usize> = (0..self.block_dirty.len())
            .filter(|&i| self.block_dirty[i])
            .collect();
        let config = &self.config;
        let pristine = &self.pristine;
        let pool = pristine.pool();
        let parallel = self.config.parallel;

        // Three wall-clock-timed passes over the dirty blocks — one per
        // stage, parallel across blocks — so `StageTimings` keeps the same
        // wall-time semantics as the historical whole-index pipeline (a
        // single fused per-block pass would sum per-worker CPU time
        // instead).
        let work: Vec<(usize, Block)> = dirty_idx
            .iter()
            .map(|&i| (i, pristine.blocks[i].clone()))
            .collect();

        let started = Instant::now();
        let run_agp = |(i, mut block): (usize, Block)| {
            let agp = AgpStage::run_block(config, &mut block, pool);
            (i, block, agp)
        };
        let work: Vec<(usize, Block, AgpRecord)> = if parallel {
            work.into_par_iter().map(run_agp).collect()
        } else {
            work.into_iter().map(run_agp).collect()
        };
        self.timings.agp += started.elapsed();

        let started = Instant::now();
        let run_weights = |(i, mut block, agp): (usize, Block, AgpRecord)| {
            WeightLearningStage::run_block(config, &mut block);
            (i, block, agp)
        };
        let work: Vec<(usize, Block, AgpRecord)> = if parallel {
            work.into_par_iter().map(run_weights).collect()
        } else {
            work.into_iter().map(run_weights).collect()
        };
        self.timings.weight_learning += started.elapsed();

        let started = Instant::now();
        let run_rsc = |(i, mut block, agp): (usize, Block, AgpRecord)| {
            let rsc = RscStage::run_block(config, &mut block, pool);
            (i, block, BlockRecords { agp, rsc })
        };
        let refreshed: Vec<(usize, Block, BlockRecords)> = if parallel {
            work.into_par_iter().map(run_rsc).collect()
        } else {
            work.into_iter().map(run_rsc).collect()
        };
        self.timings.rsc += started.elapsed();

        self.cleaned.set_pool(self.dataset.pool().clone());
        for (i, block, records) in refreshed {
            self.cleaned.blocks[i] = block;
            self.block_records[i] = records;
        }
        for dirty in &mut self.block_dirty {
            *dirty = false;
        }
    }

    /// Make sure every tuple has a memoised fusion: refresh the dirty
    /// blocks, then (re)fuse exactly the invalidated tuples.
    fn ensure_fusions(&mut self) {
        self.refresh();
        if self.fusions.iter().all(Option::is_some) {
            return; // nothing invalidated — skip the whole-index plan build
        }
        let started = Instant::now();
        let resolver = ConflictResolver::new(self.config.max_exhaustive_fusion);
        let plan = resolver.plan(&self.cleaned);
        for i in 0..self.fusions.len() {
            if self.fusions[i].is_none() {
                self.fusions[i] = Some(resolver.fuse_tuple(&plan, TupleId(i)));
            }
        }
        self.timings.fscr += started.elapsed();
    }

    /// Re-clean whatever is dirty and produce the full [`CleaningOutcome`]
    /// over all rows ingested so far — byte-identical (output CSV and
    /// AGP/RSC/FSCR provenance) to a single `MlnClean::clean` batch run on
    /// the accumulated dataset.
    ///
    /// Can be called after every batch; only the work made necessary by the
    /// ingests since the previous call is redone.  The outcome snapshots the
    /// session (one dataset copy for the repairs plus one cleaned-index
    /// copy); [`CleaningSession::finish`] moves the state out instead.
    pub fn outcome(&mut self) -> CleaningOutcome {
        self.ensure_fusions();
        assemble_outcome(
            &self.config,
            &self.fusions,
            &self.block_records,
            self.dataset.clone(),
            self.cleaned.clone(),
            &mut self.timings,
        )
    }

    /// Close the session, producing the final [`CleaningOutcome`].
    ///
    /// Unlike [`CleaningSession::outcome`] this moves the accumulated
    /// dataset and the cleaned index into the outcome (the repairs are
    /// applied in place), so the batch wrapper [`crate::MlnClean::clean`]
    /// pays no extra copies over the historical monolithic pipeline.
    pub fn finish(mut self) -> CleaningOutcome {
        self.ensure_fusions();
        let CleaningSession {
            config,
            cleaned,
            block_records,
            fusions,
            dataset,
            mut timings,
            ..
        } = self;
        assemble_outcome(
            &config,
            &fusions,
            &block_records,
            dataset,
            cleaned,
            &mut timings,
        )
    }
}

/// Apply the memoised fusions to `repaired` in place, deduplicate, and
/// assemble the [`CleaningOutcome`] — the shared tail of
/// [`CleaningSession::outcome`] (which passes clones) and
/// [`CleaningSession::finish`] (which passes the moved session state).
///
/// Every cell of `repaired` still holds its dirty value until its own fusion
/// is applied, so in-place application reads exactly what a clone-based path
/// would.  All resolved ids are covered by the cleaned index's pool
/// snapshot: fused ids come from its γs, and a non-empty fusion implies the
/// tuple's blocks went through a refresh after its ingest (which synced the
/// snapshot).
fn assemble_outcome(
    config: &CleanConfig,
    fusions: &[Option<TupleFusion>],
    block_records: &[BlockRecords],
    mut repaired: Dataset,
    cleaned: MlnIndex,
    timings: &mut StageTimings,
) -> CleaningOutcome {
    let started = Instant::now();
    let mut fscr = FscrRecord::default();
    for (i, fusion) in fusions.iter().enumerate() {
        let fusion = fusion.as_ref().expect("ensure_fusions ran");
        apply_tuple_fusion(&mut repaired, cleaned.pool(), TupleId(i), fusion, &mut fscr);
    }
    timings.fscr += started.elapsed();

    let deduplicated = if config.deduplicate {
        let started = Instant::now();
        let deduplicated = repaired.deduplicated();
        timings.dedup += started.elapsed();
        Some(deduplicated)
    } else {
        None
    };
    let (agp, rsc) = collect_stage_records(block_records);

    CleaningOutcome {
        repaired,
        deduplicated,
        index: cleaned,
        agp,
        rsc,
        fscr,
        timings: *timings,
    }
}

/// Concatenate the cached per-block provenance in block order — exactly the
/// order the whole-index stage runs emit their records in.
fn collect_stage_records(block_records: &[BlockRecords]) -> (AgpRecord, RscRecord) {
    let mut agp = AgpRecord::default();
    let mut rsc = RscRecord::default();
    for records in block_records {
        agp.merges.extend_from_slice(&records.agp.merges);
        agp.cache.absorb(records.agp.cache);
        rsc.repairs.extend_from_slice(&records.rsc.repairs);
        rsc.cache.absorb(records.rsc.cache);
    }
    (agp, rsc)
}
