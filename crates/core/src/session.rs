//! The incremental cleaning engine: a [`CleaningSession`] owns the dataset,
//! the MLN index and all per-stage state across micro-batch ingests.
//!
//! The paper's Algorithm 1 is batch-only: every run rebuilds the index,
//! re-learns every weight and re-cleans every block.  The session keeps two
//! copies of the index instead:
//!
//! * a **pristine** index, incrementally maintained so it is byte-identical
//!   to `MlnIndex::build` over the net rows ingested so far, and
//! * a **cleaned** index holding, per block, the post-AGP/weights/RSC state
//!   of the last refresh, plus the per-block provenance records.
//!
//! [`CleaningSession::apply`] is the one ingest path: it consumes a typed
//! [`ChangeSet`] of [`Mutation`]s — inserts, cell updates and row deletions —
//! splices each into the pristine blocks/groups
//! ([`MlnIndex::insert_tuples`], [`MlnIndex::update_tuple`],
//! [`MlnIndex::remove_tuples`]) and records the dirtiness **per group**, not
//! per block: a pure cell update marks only the group keys it rehomed the
//! tuple across, while structural changes (inserts, deletes, injected
//! weights, any change to a block's total support) fall back to marking the
//! whole block dirty.  Deletions compact the dataset (later tuple ids shift
//! down by one), and the session remaps its cached cleaned index, per-block
//! provenance and per-group clean state in step, so untouched state keeps
//! serving from cache.
//!
//! Producing a [`Report`] then re-runs Stage I **only on the affected
//! groups** of dirty blocks: AGP merge *decisions* are re-planned per block
//! (they are cheap and order-independent), but the expensive
//! part — merging γs, the closed-form block softmax
//! ([`crate::weights::assign_group_weights`], whose denominator is the
//! block's total support and therefore survives any within-block merge) and
//! RSC's pairwise γ scoring — is recomputed only for output groups whose
//! sources changed, everything else reuses the cached per-group entry.  Stage
//! II re-fuses **only the invalidated tuples** against a fusion plan
//! restricted to their covering blocks
//! ([`crate::fscr::ConflictResolver::plan_for`]), folds the new fusions into
//! an incrementally maintained repaired dataset, and replays memoised
//! fusions into the provenance record without cloning anything but the
//! output snapshot itself.  The result is byte-identical — output CSV and
//! AGP/RSC/FSCR provenance — to a single batch run over the **net surviving
//! rows**, which is what [`crate::MlnClean::clean`] now is: one bulk ingest
//! plus [`CleaningSession::finish`].

use crate::agp::{AgpPlan, AgpRecord};
use crate::cache::{CacheStats, DistanceCache};
use crate::changeset::{ChangeSet, Mutation};
use crate::engine::{Report, Timings};
use crate::error::CleanError;
use crate::fscr::{
    apply_tuple_fusion, record_tuple_fusion, ConflictResolver, FscrRecord, TupleFusion,
};
use crate::index::{Block, Group, InsertReport, MlnIndex};
use crate::rsc::{ReliabilityCleaner, RscRecord, RscRepair};
use crate::stage::{AgpStage, RscStage, WeightLearningStage};
use crate::weights::{assign_group_weights, block_support, SessionWeights};
use crate::CleanConfig;
use dataset::{
    ArityMismatch, AttrId, Dataset, Schema, SpillDir, SpillSlot, TupleId, ValueId, ValuePool,
};
use distance::Metric;
use rayon::prelude::*;
use rules::RuleSet;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// What one [`CleaningSession::apply`] call changed — the dirtiness the next
/// re-clean will have to pay for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchReport {
    /// 1-based ordinal of this change set within the session.
    pub batch: usize,
    /// Rows inserted by this change set.
    pub rows: usize,
    /// Cells overwritten by `Update` mutations in this change set.
    pub updated_cells: usize,
    /// Rows removed by `Delete` mutations in this change set.
    pub deleted_rows: usize,
    /// Net rows held by the session after this change set.
    pub total_rows: usize,
    /// Blocks currently dirty (touched since the last re-clean, including by
    /// this change set).
    pub dirty_blocks: usize,
    /// Total blocks (= rules).
    pub total_blocks: usize,
    /// Groups touched by this change set (summed over its mutations; a group
    /// touched by two mutations counts twice).
    pub touched_groups: usize,
    /// Total groups across all blocks after this change set.
    pub total_groups: usize,
    /// Sorted indices of the blocks this change set touched (a subset of the
    /// blocks currently dirty).  External coordinators — e.g. the
    /// distributed streaming driver — use this to track per-block dirtiness
    /// across partitions without reaching into the session.
    pub touched_blocks: Vec<usize>,
}

/// Cached post-Stage-I provenance of one block.
#[derive(Debug, Clone, Default)]
struct BlockRecords {
    agp: AgpRecord,
    rsc: RscRecord,
}

/// The cached clean state of one **output group** of a block — the unit the
/// group-scoped refresh reuses when nothing feeding the group changed.
/// Serializable so a memory-budgeted session can spill a whole block's
/// entries to a disk segment through the `mlnw` codec.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GroupEntry {
    /// Pristine group keys fused into this output group: the group's own key
    /// first, then the AGP-merged abnormal keys in merge order.  A reuse is
    /// only sound when the fresh plan derives the exact same source list.
    sources: Vec<Vec<ValueId>>,
    /// The group's post-weights/RSC state.
    group: Group,
    /// The RSC repairs cleaning this group produced.
    repairs: Vec<RscRepair>,
}

/// Per-block dirtiness and group-scoped clean cache.
#[derive(Debug, Clone)]
struct BlockCache {
    /// The block's total tuple support (the closed-form softmax denominator,
    /// [`block_support`]) at the last refresh — `None` before the first.
    /// Every group's probabilities divide by this Z, so a support change
    /// (inserts, deletes, a CFD flipping a tuple's relevance) invalidates
    /// the whole block at once.
    last_z: Option<usize>,
    /// Pristine group keys whose content changed since the last refresh
    /// (pure cell updates only; structural changes set `fully_dirty`).
    dirty_keys: HashSet<Vec<ValueId>>,
    /// Re-clean every group at the next refresh.
    fully_dirty: bool,
    /// Cached clean state per output-group key.
    entries: HashMap<Vec<ValueId>, GroupEntry>,
    /// Persistent distance memo shared by AGP planning and RSC scoring
    /// across refreshes of this block.
    distances: DistanceCache,
    /// Disk-backed image of `entries` while the block is spilled under a
    /// memory budget.  `Some` ⇒ `entries` is empty and must be faulted back
    /// in before the block is refreshed or id-remapped.  The dirtiness
    /// fields (`last_z`, `dirty_keys`, `fully_dirty`) always stay resident:
    /// marking a spilled block dirty never touches the segment.
    spilled: Option<SpillSlot>,
    /// LRU tick of the last refresh that rebuilt or reused this block's
    /// entries — the spill victim order (coldest first).
    last_touch: u64,
}

impl BlockCache {
    fn new(metric: Metric) -> Self {
        BlockCache {
            last_z: None,
            dirty_keys: HashSet::new(),
            fully_dirty: false,
            entries: HashMap::new(),
            distances: DistanceCache::new(metric),
            spilled: None,
            last_touch: 0,
        }
    }

    /// Whether the next refresh must revisit this block at all.
    fn is_dirty(&self) -> bool {
        self.fully_dirty || !self.dirty_keys.is_empty()
    }
}

/// What refreshing one dirty block produced.
struct RefreshedBlock {
    block_idx: usize,
    block: Block,
    records: BlockRecords,
    cache: BlockCache,
    /// Tuples whose memoised fusion must be invalidated (their data versions
    /// changed: they sit in a recomputed output group, or in a cache entry
    /// that no longer exists).
    invalidated: Vec<TupleId>,
    /// Output groups Stage I actually recomputed (vs reused from cache).
    recleaned: u64,
}

/// Counters of the out-of-core machinery of a memory-budgeted session —
/// see [`CleaningSession::memory_stats`].  All zero when no
/// [`CleanConfig::memory_budget`] is set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Block caches spilled to disk segments (cumulative; a block spilled,
    /// faulted in and re-spilled counts twice).
    pub spilled_blocks: u64,
    /// Spilled block caches faulted back in (the block went dirty, or a
    /// delete had to remap its tuple ids).
    pub faulted_blocks: u64,
    /// Total bytes written to spill segments (cumulative).
    pub spilled_bytes: u64,
    /// Memoised per-tuple fusions evicted by the budget (each is re-derived
    /// deterministically at the next outcome).
    pub evicted_fusions: u64,
    /// Spill attempts abandoned because the segment write failed; the block
    /// stayed resident (graceful degradation, never a correctness loss).
    pub spill_errors: u64,
}

/// A compacting suspend image of a [`CleaningSession`]: the net surviving
/// rows, the injected weight overrides and the batch ordinal — everything a
/// fresh session needs to continue the stream with byte-identical outputs.
///
/// The snapshot is *compacting* by construction: it captures the current
/// dataset (net survivors), not the mutation history, so its size is bound
/// by the live data no matter how long the stream ran.  It serializes
/// through the `mlnw` codec (see `transport`), which is how a worker
/// checkpoints itself and truncates its replay journal.
///
/// Caches, fusion memos and provenance are deliberately **not** captured:
/// [`CleaningSession::resume`] rebuilds them on the next outcome, and the
/// session's core invariant (outputs are byte-identical to a batch run over
/// the net surviving rows) guarantees the resumed stream cannot diverge
/// from the uninterrupted one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The net surviving rows at the suspend point.
    pub dataset: Dataset,
    /// The injected γ-weight overrides in force (empty = none).
    pub injected: SessionWeights,
    /// Change sets applied before the suspend point (the resumed session
    /// continues the [`BatchReport`] ordinals from here).
    pub batches: usize,
}

/// An incremental MLNClean engine over typed mutation ingest.
///
/// See the [module docs](self) for the design; see
/// [`crate::MlnClean::clean`] for the batch special case (one bulk ingest +
/// [`CleaningSession::finish`]).
#[derive(Debug, Clone)]
pub struct CleaningSession {
    config: CleanConfig,
    rules: RuleSet,
    dataset: Dataset,
    /// Byte-identical to `MlnIndex::build(&self.dataset, &self.rules)`.
    pristine: MlnIndex,
    /// Per block: the post-AGP/weights/RSC state of the last refresh.
    /// Shared with every [`Report`] handed out so far (copy-on-write: the
    /// next refresh that must mutate it clones only then).
    cleaned: Arc<MlnIndex>,
    block_records: Vec<BlockRecords>,
    /// Per block: group-scoped dirtiness and the reusable clean state.
    caches: Vec<BlockCache>,
    /// Per tuple: the memoised FSCR fusion (`None` = must be (re)fused).
    fusions: Vec<Option<TupleFusion>>,
    /// The repaired dataset, maintained incrementally: every row holds its
    /// memoised fusion's image (or its dirty values while its fusion is
    /// pending — [`CleaningSession::ensure_fusions`] settles those before
    /// any report reads this).
    repaired: Dataset,
    /// Externally injected γ-weight overrides (empty = none) — see
    /// [`CleaningSession::inject_weights`].
    injected: SessionWeights,
    /// O(index) id-compaction passes performed so far (at most one per
    /// change set containing deletes) — see
    /// [`CleaningSession::remap_passes`].
    remap_passes: usize,
    /// Cumulative output groups Stage I recomputed across all refreshes —
    /// see [`CleaningSession::recleaned_groups`].
    recleaned_groups: u64,
    timings: Timings,
    batches: usize,
    /// Spill directory backing the memory budget, created lazily on the
    /// first spill (sessions without a budget never touch the filesystem).
    spill: Option<SpillDir>,
    /// Monotonic clock stamping block refreshes for LRU victim selection.
    lru_clock: u64,
    /// Number of `Some` slots in `fusions` — kept exact so the budget
    /// enforcement never has to scan the O(rows) memo to size it.
    memoised_fusions: usize,
    /// Out-of-core accounting — see [`CleaningSession::memory_stats`].
    memory: MemoryStats,
}

impl CleaningSession {
    /// Open a session for `schema` under `rules`.
    ///
    /// Fails like [`crate::MlnClean::clean`] does: on an empty rule set, or
    /// on a rule referencing an attribute the schema does not have.
    pub fn new(config: CleanConfig, schema: Schema, rules: RuleSet) -> Result<Self, CleanError> {
        if rules.is_empty() {
            return Err(CleanError::NoRules);
        }
        let dataset = Dataset::new(schema);
        let pristine = MlnIndex::build_serial(&dataset, &rules)?;
        let cleaned = Arc::new(pristine.clone());
        let blocks = pristine.block_count();
        let metric = config.metric;
        Ok(CleaningSession {
            config,
            rules,
            repaired: dataset.clone(),
            dataset,
            pristine,
            cleaned,
            block_records: vec![BlockRecords::default(); blocks],
            caches: vec![BlockCache::new(metric); blocks],
            fusions: Vec::new(),
            injected: SessionWeights::default(),
            remap_passes: 0,
            recleaned_groups: 0,
            timings: Timings::default(),
            batches: 0,
            spill: None,
            lru_clock: 0,
            memoised_fusions: 0,
            memory: MemoryStats::default(),
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// The rule set the session cleans against.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The accumulated (dirty) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Net rows held by the session.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the session currently holds no rows.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Number of blocks (= rules).
    pub fn total_blocks(&self) -> usize {
        self.pristine.block_count()
    }

    /// Blocks currently dirty (at least one of their groups will re-run
    /// Stage I on the next outcome).
    pub fn dirty_block_count(&self) -> usize {
        self.caches.iter().filter(|c| c.is_dirty()).count()
    }

    /// Change sets applied so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Cumulative number of output groups Stage I actually recomputed across
    /// all refreshes of this session — the incrementality probe.  A pure
    /// cell-update stream re-cleans only the groups its tuples move across,
    /// so this stays far below "groups × refreshes"; compare against
    /// [`CleaningSession::total_groups`] to assert group-scoped re-cleaning
    /// is working.
    pub fn recleaned_groups(&self) -> u64 {
        self.recleaned_groups
    }

    /// Total groups across all pristine blocks right now.
    pub fn total_groups(&self) -> usize {
        self.pristine.blocks.iter().map(|b| b.group_count()).sum()
    }

    /// The incrementally maintained pristine index — byte-identical to
    /// `MlnIndex::build` over the net rows ingested so far.
    ///
    /// External coordinators (e.g. the distributed streaming driver) read
    /// the per-block state here to merge it across partitions.
    pub fn pristine_index(&self) -> &MlnIndex {
        &self.pristine
    }

    /// O(index) id-compaction passes performed so far — the regression
    /// counter for the batched delete remap.  Every change set pays at most
    /// **one** such pass no matter how many deletes it contains or how they
    /// interleave with inserts and updates (a change set without deletes
    /// pays none).
    pub fn remap_passes(&self) -> usize {
        self.remap_passes
    }

    /// Snapshot the per-γ weights of the last re-clean (the cleaned index)
    /// as a pool-independent [`SessionWeights`] table — the export half of
    /// the session weight hooks.
    pub fn export_weights(&self) -> SessionWeights {
        SessionWeights::from_index(&self.cleaned)
    }

    /// Inject externally merged γ weights — the import half of the session
    /// weight hooks.
    ///
    /// A distributed coordinator learns weights over evidence this session
    /// cannot see (the other partitions); injecting the merged table makes
    /// the **next** re-clean override the locally learned weight of every
    /// matching γ (and re-normalize each block's probabilities) right after
    /// weight learning, before RSC runs — the per-partition half of the
    /// paper's Eq. 6 phase.  Every block is marked fully dirty so the
    /// injected weights take effect on the next
    /// [`CleaningSession::outcome`] (injected weights renormalize whole
    /// blocks, so the group-scoped fast path does not apply).  The injection
    /// persists across re-cleans until replaced; injecting an empty table
    /// clears it.  Note that a session with injected weights intentionally
    /// diverges from the single-node batch run it is otherwise
    /// byte-identical to.
    pub fn inject_weights(&mut self, weights: SessionWeights) {
        self.injected = weights;
        if !self.injected.is_empty() {
            for cache in &mut self.caches {
                cache.fully_dirty = true;
            }
        }
    }

    /// Cumulative per-stage wall-clock timings across all ingests and
    /// re-cleans of this session.
    pub fn timings(&self) -> Timings {
        self.timings
    }

    /// Counters of the out-of-core machinery (spills, fault-ins, fusion
    /// evictions).  All zero unless [`CleanConfig::memory_budget`] is set.
    pub fn memory_stats(&self) -> MemoryStats {
        self.memory
    }

    /// Estimated resident bytes of the session's **evictable working
    /// state** — the pool [`CleanConfig::memory_budget`] bounds: per-block
    /// γ clean caches, their distance memos, and the heap of the per-tuple
    /// fusion memo.  A count-based heuristic (exact sizing would cost more
    /// than the state is worth), consistent across calls, which is all the
    /// spill policy needs.
    pub fn resident_estimate(&self) -> usize {
        let mut bytes = self.memoised_fusions * FUSION_SLOT_BYTES;
        for cache in &self.caches {
            bytes += approx_cache_bytes(cache);
        }
        bytes
    }

    /// Capture a compacting suspend image of the session: the net surviving
    /// rows, the injected weights and the batch ordinal.  See
    /// [`SessionSnapshot`] for what is (and deliberately is not) captured,
    /// and [`CleaningSession::resume`] for the other half.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            dataset: self.dataset.clone(),
            injected: self.injected.clone(),
            batches: self.batches,
        }
    }

    /// Reopen a session from a [`SessionSnapshot`] — the suspend/resume
    /// counterpart of [`CleaningSession::snapshot`].
    ///
    /// The resumed session continues the stream exactly where the suspended
    /// one left off: every later outcome is byte-identical (output CSV and
    /// AGP/RSC/FSCR provenance) to the uninterrupted session's, because
    /// both are byte-identical to a batch run over the net surviving rows.
    /// Cumulative diagnostics ([`CleaningSession::timings`],
    /// [`CleaningSession::recleaned_groups`],
    /// [`CleaningSession::remap_passes`]) restart from zero — they describe
    /// work done by *this* process, not the stream.
    pub fn resume(
        config: CleanConfig,
        rules: RuleSet,
        snapshot: SessionSnapshot,
    ) -> Result<Self, CleanError> {
        let mut session = CleaningSession::new(config, snapshot.dataset.schema().clone(), rules)?;
        if !snapshot.dataset.is_empty() {
            session.ingest_dataset(&snapshot.dataset)?;
        }
        session.batches = snapshot.batches;
        if !snapshot.injected.is_empty() {
            session.inject_weights(snapshot.injected);
        }
        Ok(session)
    }

    /// Spill one clean resident block's cache entries to a disk segment.
    /// Returns whether the block is now spilled.  The distance memo is
    /// dropped with the entries: it is a pure accelerator whose hit/miss
    /// statistics are excluded from provenance equality, so faulting back
    /// in with a cold memo is byte-identity-safe.
    fn spill_block(&mut self, i: usize) -> bool {
        {
            let cache = &self.caches[i];
            if cache.spilled.is_some() || cache.is_dirty() || cache.entries.is_empty() {
                return false;
            }
        }
        if self.spill.is_none() {
            match SpillDir::new() {
                Ok(dir) => self.spill = Some(dir),
                Err(_) => {
                    self.memory.spill_errors += 1;
                    return false;
                }
            }
        }
        let entries: Vec<(Vec<ValueId>, GroupEntry)> = std::mem::take(&mut self.caches[i].entries)
            .into_iter()
            .collect();
        let bytes = mlnw::to_bytes(&entries).expect("in-memory γ state always encodes");
        match self
            .spill
            .as_ref()
            .expect("created just above")
            .store(&bytes)
        {
            Ok(slot) => {
                self.memory.spilled_blocks += 1;
                self.memory.spilled_bytes += bytes.len() as u64;
                let metric = self.config.metric;
                let cache = &mut self.caches[i];
                cache.spilled = Some(slot);
                cache.distances = DistanceCache::new(metric);
                true
            }
            Err(_) => {
                // Keep the block resident — the budget is advisory, the
                // entries are not (dropping them would break the fusion
                // invalidation the next refresh derives from them).
                self.memory.spill_errors += 1;
                self.caches[i].entries = entries.into_iter().collect();
                false
            }
        }
    }

    /// Fault a spilled block's cache entries back in (no-op when resident).
    ///
    /// Panics when the segment cannot be read back or no longer decodes:
    /// the segment lives in a directory this session owns exclusively, so a
    /// failure means the environment broke underneath us — and proceeding
    /// without the entries would *silently* skip the fusion invalidation
    /// the refresh derives from them, corrupting output instead of failing.
    fn fault_in_block(&mut self, i: usize) {
        let Some(slot) = self.caches[i].spilled.take() else {
            return;
        };
        let bytes = slot.load().expect("spill segment must be readable");
        let entries: Vec<(Vec<ValueId>, GroupEntry)> =
            mlnw::from_bytes(&bytes).expect("spill segment must decode");
        self.caches[i].entries = entries.into_iter().collect();
        self.memory.faulted_blocks += 1;
    }

    /// Shed evictable state until [`CleaningSession::resident_estimate`]
    /// fits the configured budget: spill clean block caches coldest-first,
    /// then (when `evict_fusions` and still over) window the fusion memo by
    /// evicting the oldest memoised fusions.  No-op without a budget.
    fn enforce_budget(&mut self, evict_fusions: bool) {
        let Some(budget) = self.config.memory_budget else {
            return;
        };
        let mut resident = self.resident_estimate();
        if resident <= budget {
            return;
        }

        let mut victims: Vec<(u64, usize)> = self
            .caches
            .iter()
            .enumerate()
            .filter(|(_, c)| c.spilled.is_none() && !c.is_dirty() && !c.entries.is_empty())
            .map(|(i, c)| (c.last_touch, i))
            .collect();
        victims.sort_unstable();
        for (_, i) in victims {
            let freed = approx_cache_bytes(&self.caches[i]);
            if self.spill_block(i) {
                resident = resident.saturating_sub(freed);
                if resident <= budget {
                    return;
                }
            }
        }

        if !evict_fusions {
            return;
        }
        // Window the memo: evict front-to-back, so in an append-mostly
        // stream the oldest (coldest) tuples lose their memo first and the
        // recent tail survives.  `ensure_fusions` re-derives evicted
        // entries deterministically, so outputs are unaffected.
        for slot in self.fusions.iter_mut() {
            if resident <= budget {
                break;
            }
            if slot.take().is_some() {
                self.memoised_fusions -= 1;
                self.memory.evicted_fusions += 1;
                resident = resident.saturating_sub(FUSION_SLOT_BYTES);
            }
        }
    }

    /// Apply one typed [`ChangeSet`] — the session's one ingest path.
    ///
    /// The change set is atomic: every mutation is validated (row arity,
    /// tuple and attribute bounds, with tuple ids tracked through the
    /// sequence's own insertions and deletions) before anything is applied,
    /// so a failed call leaves the session untouched.  Mutations then apply
    /// in order; a `Delete(t)` shifts every later row down by one, exactly
    /// like a batch rebuild over the surviving rows would.
    ///
    /// Deletions are **remap-batched**: rows marked for deletion stay in
    /// place (in *virtual* coordinates — the rows at entry plus whatever
    /// this change set inserts) while the walk translates every later
    /// sequentially-interpreted tuple id onto the survivors, and one
    /// compaction at the end splices all doomed rows out of the dataset,
    /// the pristine index, the cached cleaned index and the provenance.  A
    /// bulk retraction therefore costs a single O(index) id-remap pass no
    /// matter how its deletes interleave with inserts and updates
    /// ([`CleaningSession::remap_passes`] counts the passes).
    pub fn apply(&mut self, changes: ChangeSet) -> Result<BatchReport, CleanError> {
        self.validate(&changes)?;
        let started = Instant::now();
        let parallel = self.config.parallel;
        let mut inserted = 0usize;
        let mut updated_cells = 0usize;
        let mut touched_groups = 0usize;
        let mut touched_blocks = vec![false; self.pristine.block_count()];
        // Virtual row indices marked for deletion, kept sorted.
        let mut removed: Vec<usize> = Vec::new();

        for mutation in changes.into_mutations() {
            match mutation {
                Mutation::Insert(rows) => {
                    let from = self.dataset.len();
                    self.dataset.extend_rows(rows).expect("validated above");
                    let report =
                        self.pristine
                            .insert_tuples(&self.dataset, &self.rules, from, parallel);
                    self.fusions.resize(self.dataset.len(), None);
                    // Mirror the new rows (still dirty; their pending
                    // fusions settle them) into the maintained repaired
                    // dataset.
                    self.repaired.sync_pool_from(self.dataset.pool());
                    for t in from..self.dataset.len() {
                        let row = self.dataset.row_ids(TupleId(t));
                        self.repaired
                            .push_row_ids(&row)
                            .expect("repaired shares the dataset schema");
                    }
                    inserted += report.rows;
                    touched_groups += report.total_touched_groups();
                    self.mark_fully_dirty(&report.touched_groups);
                    record_touched(&mut touched_blocks, &report.touched_groups);
                }
                Mutation::Update(t, attr, value) => {
                    let t = TupleId(nth_surviving(&removed, t.index()));
                    if self.dataset.value(t, attr) == value {
                        continue; // no-op: the cell already holds this value
                    }
                    updated_cells += 1;
                    let old_row = self.dataset.row_ids(t);
                    self.dataset.set_value(t, attr, value);
                    let touched = self.pristine.update_tuple(
                        &self.dataset,
                        &self.rules,
                        t,
                        &old_row,
                        parallel,
                    );
                    touched_groups += touched.iter().map(Vec::len).sum::<usize>();
                    self.mark_dirty_keys(&touched);
                    record_touched_keys(&mut touched_blocks, &touched);
                    // The tuple's own versions may have moved even when no
                    // other tuple's did; always re-fuse it.
                    if self.fusions[t.index()].take().is_some() {
                        self.memoised_fusions -= 1;
                    }
                }
                Mutation::Delete(t) => {
                    // Translate the sequential id onto the survivors and
                    // defer the actual removal to the single compaction
                    // below.
                    let v = nth_surviving(&removed, t.index());
                    removed.insert(removed.partition_point(|&r| r < v), v);
                }
            }
        }

        let deleted_rows = removed.len();
        if !removed.is_empty() {
            let removed_ids: Vec<TupleId> = removed.iter().map(|&r| TupleId(r)).collect();
            let report =
                self.pristine
                    .remove_tuples(&self.dataset, &self.rules, &removed_ids, parallel);
            self.dataset.remove_rows(&removed_ids);
            self.repaired.remove_rows(&removed_ids);
            let mut idx = 0usize;
            let mut dropped_fusions = 0usize;
            self.fusions.retain(|f| {
                let keep = removed.binary_search(&idx).is_err();
                idx += 1;
                if !keep && f.is_some() {
                    dropped_fusions += 1;
                }
                keep
            });
            self.memoised_fusions -= dropped_fusions;
            // Cached cleaned blocks, provenance and per-group clean state
            // live in tuple-id space: shift them down past the removed
            // rows.  Dirty blocks get rebuilt from pristine at the next
            // refresh; untouched blocks never contained the tuples, so the
            // shift alone keeps their cache byte-identical to what a batch
            // run over the survivors would produce.  Spilled blocks hold
            // entries in the same id space, so they must fault in for the
            // shift (the budget re-spills them at the end of the call).
            for i in 0..self.caches.len() {
                self.fault_in_block(i);
            }
            Arc::make_mut(&mut self.cleaned).remap_removed(&removed);
            for records in &mut self.block_records {
                remap_records_after_removal(records, &removed);
            }
            for cache in &mut self.caches {
                remap_cache_after_removal(cache, &removed);
            }
            self.remap_passes += 1;
            touched_groups += report.touched_groups.iter().sum::<usize>();
            self.mark_fully_dirty(&report.touched_groups);
            record_touched(&mut touched_blocks, &report.touched_groups);
        }

        self.enforce_budget(true);
        Ok(self.finalize_change(
            started,
            inserted,
            updated_cells,
            deleted_rows,
            touched_groups,
            touched_blocks,
        ))
    }

    /// Shared post-ingest bookkeeping of [`CleaningSession::apply`] and
    /// [`CleaningSession::ingest_dataset`]: catch the cleaned index's and
    /// the repaired dataset's pool snapshots up to the dataset pool (new
    /// values interned by the change must resolve there even when no block
    /// went dirty; pools are append-only, so only the new tail is copied),
    /// account the wall time, bump the batch ordinal and assemble the
    /// [`BatchReport`].
    fn finalize_change(
        &mut self,
        started: Instant,
        rows: usize,
        updated_cells: usize,
        deleted_rows: usize,
        touched_groups: usize,
        touched_blocks: Vec<bool>,
    ) -> BatchReport {
        if self.dataset.pool().len() != self.cleaned.pool().len() {
            Arc::make_mut(&mut self.cleaned).sync_pool_from(self.dataset.pool());
        }
        self.repaired.sync_pool_from(self.dataset.pool());
        self.timings.index += started.elapsed();
        self.batches += 1;
        BatchReport {
            batch: self.batches,
            rows,
            updated_cells,
            deleted_rows,
            total_rows: self.dataset.len(),
            dirty_blocks: self.dirty_block_count(),
            total_blocks: self.pristine.block_count(),
            touched_groups,
            total_groups: self.total_groups(),
            touched_blocks: touched_blocks
                .iter()
                .enumerate()
                .filter_map(|(i, &t)| t.then_some(i))
                .collect(),
        }
    }

    /// Ingest one micro-batch of string rows — a thin convenience for
    /// [`CleaningSession::apply`] with a single `Insert` mutation.
    pub fn ingest_batch(&mut self, rows: Vec<Vec<String>>) -> Result<BatchReport, CleanError> {
        self.apply(ChangeSet::inserting(rows))
    }

    /// Ingest a whole dataset (the batch special case) — a convenience kept
    /// for its bulk fast path.
    ///
    /// When the session is still empty this shares the dataset's columnar
    /// storage and value pool outright (no re-interning) and builds the
    /// pristine index with the bulk `MlnIndex::build_with` path; otherwise
    /// the rows are appended via [`Dataset::extend_from`], which re-interns
    /// each distinct value once.
    pub fn ingest_dataset(&mut self, ds: &Dataset) -> Result<BatchReport, CleanError> {
        if ds.schema() != self.dataset.schema() {
            return Err(CleanError::Schema(dataset::SchemaMismatch));
        }
        let started = Instant::now();
        let report = if self.dataset.is_empty() {
            self.dataset = ds.clone();
            self.repaired = ds.clone();
            self.pristine = MlnIndex::build_with(&self.dataset, &self.rules, self.config.parallel)
                .expect("rules were validated when the session was created");
            // A bulk build touches exactly the groups it creates.
            let groups: Vec<usize> = self
                .pristine
                .blocks
                .iter()
                .map(|b| b.group_count())
                .collect();
            InsertReport {
                rows: ds.len(),
                touched_groups: groups.clone(),
                created_groups: groups,
            }
        } else {
            let from = self.dataset.len();
            self.dataset.extend_from(ds)?;
            let report =
                self.pristine
                    .insert_tuples(&self.dataset, &self.rules, from, self.config.parallel);
            self.repaired.sync_pool_from(self.dataset.pool());
            for t in from..self.dataset.len() {
                let row = self.dataset.row_ids(TupleId(t));
                self.repaired
                    .push_row_ids(&row)
                    .expect("repaired shares the dataset schema");
            }
            report
        };
        self.fusions.resize(self.dataset.len(), None);
        self.mark_fully_dirty(&report.touched_groups);
        let mut touched_blocks = vec![false; self.pristine.block_count()];
        record_touched(&mut touched_blocks, &report.touched_groups);
        self.enforce_budget(true);
        Ok(self.finalize_change(
            started,
            report.rows,
            0,
            0,
            report.total_touched_groups(),
            touched_blocks,
        ))
    }

    /// Pre-validate a change set against the session schema, tracking the
    /// row count through the sequence's own inserts and deletes.
    fn validate(&self, changes: &ChangeSet) -> Result<(), CleanError> {
        let arity = self.dataset.schema().arity();
        let mut rows = self.dataset.len();
        for mutation in changes.iter() {
            match mutation {
                Mutation::Insert(batch) => {
                    for row in batch {
                        if row.len() != arity {
                            return Err(CleanError::Arity(ArityMismatch {
                                expected: arity,
                                actual: row.len(),
                            }));
                        }
                    }
                    rows += batch.len();
                }
                Mutation::Update(t, attr, _) => {
                    if t.index() >= rows {
                        return Err(CleanError::UnknownTuple { tuple: *t, rows });
                    }
                    if attr.index() >= arity {
                        return Err(CleanError::UnknownAttribute { attr: *attr, arity });
                    }
                }
                Mutation::Delete(t) => {
                    if t.index() >= rows {
                        return Err(CleanError::UnknownTuple { tuple: *t, rows });
                    }
                    rows -= 1;
                }
            }
        }
        Ok(())
    }

    /// Mark every block with a non-zero touched-group count **fully** dirty
    /// (structural changes: inserts, deletes).
    fn mark_fully_dirty(&mut self, touched_groups: &[usize]) {
        for (cache, &touched) in self.caches.iter_mut().zip(touched_groups) {
            if touched > 0 {
                cache.fully_dirty = true;
            }
        }
    }

    /// Mark the specific group keys a pure cell update touched (per block:
    /// the tuple's old group key, plus its new one when it rehomed).
    fn mark_dirty_keys(&mut self, touched: &[Vec<Vec<ValueId>>]) {
        for (cache, keys) in self.caches.iter_mut().zip(touched) {
            for key in keys {
                cache.dirty_keys.insert(key.clone());
            }
        }
    }

    /// Re-run Stage I on the dirty blocks' affected groups, from their
    /// pristine state, and refresh the cleaned index, the per-block
    /// provenance and the per-group clean cache.  Clean blocks — and clean
    /// groups of dirty blocks — keep their cached state: their pristine
    /// content is exactly what a full rebuild would produce, so the cached
    /// cleaned state is too.
    fn refresh(&mut self) {
        // A dirty block between the two refresh passes: index, owned cache,
        // fresh softmax support Z, and the AGP plan (`None` when injected
        // weights force the traditional whole-block path).
        type PlannedBlock = (usize, BlockCache, usize, Option<(AgpPlan, CacheStats)>);

        let dirty_idx: Vec<usize> = (0..self.caches.len())
            .filter(|&i| self.caches[i].is_dirty())
            .collect();
        if dirty_idx.is_empty() {
            return;
        }

        // Dirty spilled blocks must be resident: the rebuild both reuses
        // their entries and derives fusion invalidation from the ones that
        // vanish.  (Clean spilled blocks stay on disk — that is the point.)
        self.lru_clock += 1;
        for &i in &dirty_idx {
            self.fault_in_block(i);
        }

        let parallel = self.config.parallel;
        let config = &self.config;
        let pristine = &self.pristine;
        let pool = pristine.pool();
        let injected = &self.injected;
        let metric = self.config.metric;

        // Take each dirty block's cache out so the worker owns it (the slot
        // keeps a fresh placeholder until write-back).
        let work: Vec<(usize, BlockCache)> = dirty_idx
            .iter()
            .map(|&i| {
                (
                    i,
                    std::mem::replace(&mut self.caches[i], BlockCache::new(metric)),
                )
            })
            .collect();

        // Pass 1 (timed as AGP): re-plan each dirty block's merges against
        // its pristine snapshot.  Planning is order-independent and cheap
        // relative to the γ-merging/weighting/scoring it steers, and a fresh
        // plan is what lets the rebuild pass below detect — per output group
        // — whether the cached entry's sources still hold.  Sessions with
        // injected weights skip planning: they take the traditional
        // whole-block path in pass 2.
        let started = Instant::now();
        let plan_one = |(i, mut cache): (usize, BlockCache)| {
            let block = &pristine.blocks[i];
            let z = block_support(block);
            if cache.last_z != Some(z) {
                // The block softmax denominator changed: every cached
                // group's probabilities are stale at once.
                cache.fully_dirty = true;
            }
            let plan = if injected.is_empty() {
                let before = cache.distances.stats();
                let plan =
                    AgpStage::processor(config).plan_block(block, pool, &mut cache.distances);
                let stats = stats_delta(before, cache.distances.stats());
                Some((plan, stats))
            } else {
                None
            };
            (i, cache, z, plan)
        };
        let planned: Vec<PlannedBlock> = if parallel {
            work.into_par_iter().map(plan_one).collect()
        } else {
            work.into_iter().map(plan_one).collect()
        };
        self.timings.agp += started.elapsed();

        // Pass 2 (timed as RSC; the closed-form per-group weighting rides
        // along — it is O(γs) and not worth its own wall-clock pass):
        // rebuild exactly the output groups whose sources changed, reuse
        // every other cached entry byte-for-byte.
        let started = Instant::now();
        let rebuild_one = |(i, cache, z, plan): PlannedBlock| {
            let block = &pristine.blocks[i];
            match plan {
                Some((plan, agp_stats)) => {
                    refresh_block_scoped(config, block, pool, cache, z, plan, agp_stats, i)
                }
                None => refresh_block_traditional(config, injected, block, pool, cache, z, i),
            }
        };
        let refreshed: Vec<RefreshedBlock> = if parallel {
            planned.into_par_iter().map(rebuild_one).collect()
        } else {
            planned.into_iter().map(rebuild_one).collect()
        };
        self.timings.rsc += started.elapsed();

        if self.dataset.pool().len() != self.cleaned.pool().len() {
            Arc::make_mut(&mut self.cleaned).sync_pool_from(self.dataset.pool());
        }
        let cleaned = Arc::make_mut(&mut self.cleaned);
        for refreshed in refreshed {
            cleaned.blocks[refreshed.block_idx] = refreshed.block;
            self.block_records[refreshed.block_idx] = refreshed.records;
            self.caches[refreshed.block_idx] = refreshed.cache;
            self.caches[refreshed.block_idx].last_touch = self.lru_clock;
            self.recleaned_groups += refreshed.recleaned;
            for t in refreshed.invalidated {
                if self.fusions[t.index()].take().is_some() {
                    self.memoised_fusions -= 1;
                }
            }
        }

        // Conflicted fusions read their covering blocks' substitution
        // candidate lists, which change whenever *any* group of a covering
        // block recomputes — invalidate them wholesale for every refreshed
        // block.  (Conflict-free fusions depend only on the tuple's own
        // versions, which the per-group invalidation above already covers.)
        for &i in &dirty_idx {
            for gamma in self.pristine.blocks[i].gammas() {
                for &t in &gamma.tuples {
                    if self.fusions[t.index()]
                        .as_ref()
                        .is_some_and(|f| f.conflict_detected)
                    {
                        self.fusions[t.index()] = None;
                        self.memoised_fusions -= 1;
                    }
                }
            }
        }
    }

    /// Make sure every tuple has a memoised fusion: refresh the dirty
    /// blocks, then (re)fuse exactly the invalidated tuples against a plan
    /// restricted to their covering blocks, folding each new fusion into the
    /// maintained repaired dataset.
    fn ensure_fusions(&mut self) {
        self.refresh();
        // Shed cold caches *before* the fusion allocations below, but do
        // not evict fusions here — the memo is about to be (re)filled, and
        // evicting entries just to re-derive them in the same call would
        // only churn.
        self.enforce_budget(false);
        let invalid: Vec<TupleId> = self
            .fusions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.is_none().then_some(TupleId(i)))
            .collect();
        if invalid.is_empty() {
            return; // nothing invalidated — skip the plan build entirely
        }
        let started = Instant::now();
        let resolver = ConflictResolver::new(self.config.max_exhaustive_fusion);
        let tuples: HashSet<TupleId> = invalid.iter().copied().collect();
        let plan = resolver.plan_for(&self.cleaned, &self.dataset, &self.rules, &tuples);
        // Fusion is a pure function of (plan, tuple) — fan the invalidated
        // tuples out across the pool when configured to.
        let fused: Vec<TupleFusion> = if self.config.parallel {
            invalid
                .par_iter()
                .map(|&t| resolver.fuse_tuple(&plan, t))
                .collect()
        } else {
            invalid
                .iter()
                .map(|&t| resolver.fuse_tuple(&plan, t))
                .collect()
        };
        drop(plan);
        // Fold each new fusion into the maintained repaired dataset: reset
        // the row to its dirty values (its previous fusion may have written
        // cells the new one no longer does), then apply the fusion.
        let mut scratch = FscrRecord::default();
        for (&t, fusion) in invalid.iter().zip(&fused) {
            for (a, &id) in self.dataset.row_ids(t).iter().enumerate() {
                self.repaired.set_value_id(t, AttrId(a), id);
            }
            apply_tuple_fusion(
                &mut self.repaired,
                self.cleaned.pool(),
                t,
                fusion,
                &mut scratch,
            );
        }
        self.memoised_fusions += invalid.len();
        for (t, fusion) in invalid.into_iter().zip(fused) {
            self.fusions[t.index()] = Some(fusion);
        }
        self.timings.fscr += started.elapsed();
    }

    /// Rebuild the FSCR provenance from the memoised fusions (in tuple
    /// order, exactly like a batch run emits it) and compute the
    /// deduplicated output if configured — the shared tail of
    /// [`CleaningSession::outcome`] and [`CleaningSession::finish`].
    /// `ensure_fusions` must have run.
    fn assemble_records(&mut self) -> (FscrRecord, Option<Dataset>) {
        let started = Instant::now();
        let mut fscr = FscrRecord::default();
        for (i, fusion) in self.fusions.iter().enumerate() {
            let fusion = fusion.as_ref().expect("ensure_fusions ran");
            record_tuple_fusion(
                &self.dataset,
                self.cleaned.pool(),
                TupleId(i),
                fusion,
                &mut fscr,
            );
        }
        self.timings.fscr += started.elapsed();

        let deduplicated = if self.config.deduplicate {
            let started = Instant::now();
            let deduplicated = self.repaired.deduplicated();
            self.timings.dedup += started.elapsed();
            Some(deduplicated)
        } else {
            None
        };
        (fscr, deduplicated)
    }

    /// Re-clean whatever is dirty and produce the full [`Report`] over the
    /// net rows ingested so far — byte-identical (output CSV and
    /// AGP/RSC/FSCR provenance) to a single `MlnClean::clean` batch run on
    /// the accumulated surviving data.
    ///
    /// Can be called after every change set; only the work made necessary by
    /// the mutations since the previous call is redone, and the snapshot
    /// cost is one repaired-dataset copy plus an `Arc` bump of the cleaned
    /// index (the session maintains the repaired dataset incrementally
    /// instead of re-deriving it per call).  [`CleaningSession::finish`]
    /// moves the state out instead.
    pub fn outcome(&mut self) -> Report {
        self.ensure_fusions();
        let (fscr, deduplicated) = self.assemble_records();
        let (agp, rsc) = collect_stage_records(&self.block_records);
        // Post-outcome every block is clean and every fusion memoised — the
        // session's widest footprint.  Shed back under the budget before
        // handing the report out (the next outcome re-derives evictions).
        self.enforce_budget(true);
        Report {
            repaired: self.repaired.clone(),
            deduplicated,
            index: Some(Arc::clone(&self.cleaned)),
            agp,
            rsc,
            fscr,
            timings: self.timings,
            partitions: None,
        }
    }

    /// Close the session, producing the final [`Report`].
    ///
    /// Unlike [`CleaningSession::outcome`] this moves the maintained
    /// repaired dataset and the cleaned index into the report, so the batch
    /// wrapper [`crate::MlnClean::clean`] pays no extra copies over the
    /// historical monolithic pipeline.
    pub fn finish(mut self) -> Report {
        self.ensure_fusions();
        let (fscr, deduplicated) = self.assemble_records();
        let (agp, rsc) = collect_stage_records(&self.block_records);
        Report {
            repaired: self.repaired,
            deduplicated,
            index: Some(self.cleaned),
            agp,
            rsc,
            fscr,
            timings: self.timings,
            partitions: None,
        }
    }
}

/// Refresh one dirty block the group-scoped way: derive the post-AGP output
/// layout from the fresh plan, then rebuild only the output groups whose
/// source set changed (or whose sources are marked dirty), reusing every
/// other cached [`GroupEntry`] byte-for-byte.
///
/// Soundness of the reuse: the plan is recomputed from the current pristine
/// snapshot every refresh, so any drift in merge *decisions* shows up as a
/// changed source list; any drift in group *content* was recorded as a dirty
/// key (pure updates) or as `fully_dirty` (inserts, deletes, support
/// changes) when the mutation applied.  Weights only depend on `(own
/// support, z)` and `z` is pinned by the `last_z` check, RSC is group-local,
/// so an entry whose sources are clean and unchanged is exactly what the
/// rebuild would recompute.
#[allow(clippy::too_many_arguments)]
fn refresh_block_scoped(
    config: &CleanConfig,
    pristine: &Block,
    pool: &ValuePool,
    mut cache: BlockCache,
    z: usize,
    plan: AgpPlan,
    agp_stats: CacheStats,
    block_idx: usize,
) -> RefreshedBlock {
    // Post-AGP output layout (matching `apply_plan` exactly): surviving
    // normal groups in pristine order, each with its merged-in abnormals in
    // plan order, then target-less abnormals at the end.
    let n = pristine.groups.len();
    let mut is_abnormal = vec![false; n];
    for &ai in &plan.abnormal {
        is_abnormal[ai] = true;
    }
    let mut merged_into: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut unmerged: Vec<usize> = Vec::new();
    for (&ai, &target) in plan.abnormal.iter().zip(&plan.targets) {
        match target {
            Some(ti) => merged_into[ti].push(ai),
            None => unmerged.push(ai),
        }
    }
    let mut outputs: Vec<(usize, Vec<usize>)> = Vec::with_capacity(n);
    for lead in 0..n {
        if is_abnormal[lead] {
            continue;
        }
        let mut sources = vec![lead];
        sources.extend(merged_into[lead].iter().copied());
        outputs.push((lead, sources));
    }
    for &ai in &unmerged {
        outputs.push((ai, vec![ai]));
    }

    let cleaner = ReliabilityCleaner::new(config.metric);
    let rsc_before = cache.distances.stats();
    let mut entries: HashMap<Vec<ValueId>, GroupEntry> = HashMap::with_capacity(outputs.len());
    let mut groups: Vec<Group> = Vec::with_capacity(outputs.len());
    let mut repairs: Vec<RscRepair> = Vec::new();
    let mut invalidated: Vec<TupleId> = Vec::new();
    let mut recleaned = 0u64;

    for (lead, source_idx) in outputs {
        let key = pristine.groups[lead].key.clone();
        let sources: Vec<Vec<ValueId>> = source_idx
            .iter()
            .map(|&s| pristine.groups[s].key.clone())
            .collect();
        let reusable = !cache.fully_dirty
            && !sources.iter().any(|s| cache.dirty_keys.contains(s))
            && cache
                .entries
                .get(&key)
                .is_some_and(|entry| entry.sources == sources);
        if reusable {
            let entry = cache.entries.remove(&key).expect("probed just above");
            groups.push(entry.group.clone());
            repairs.extend(entry.repairs.iter().cloned());
            entries.insert(key, entry);
            continue;
        }

        recleaned += 1;
        // Rebuild: merge the source γs the way `apply_plan` does …
        let mut group = pristine.groups[lead].clone();
        for &ai in &source_idx[1..] {
            for gamma in pristine.groups[ai].gammas.iter().cloned() {
                if let Some(existing) = group.gammas.iter_mut().find(|g| {
                    g.reason_values == gamma.reason_values && g.result_values == gamma.result_values
                }) {
                    existing.tuples.extend(gamma.tuples);
                } else {
                    group.gammas.push(gamma);
                }
            }
        }
        // … weight against the block-wide Z (AGP merges preserve it) …
        assign_group_weights(&mut group, z);
        // … and clean the group in place.
        let group_repairs =
            cleaner.clean_group(pristine.rule, &mut group, pool, &mut cache.distances);
        invalidated.extend(group.all_tuples());
        if let Some(old) = cache.entries.remove(&key) {
            invalidated.extend(old.group.all_tuples());
        }
        repairs.extend(group_repairs.iter().cloned());
        groups.push(group.clone());
        entries.insert(
            key,
            GroupEntry {
                sources,
                group,
                repairs: group_repairs,
            },
        );
    }

    // Output groups that disappeared since the last refresh: their tuples
    // live somewhere else now; re-fuse them.
    for (_, old) in cache.entries.drain() {
        invalidated.extend(old.group.all_tuples());
    }

    let rsc_stats = stats_delta(rsc_before, cache.distances.stats());
    cache.entries = entries;
    cache.last_z = Some(z);
    cache.dirty_keys.clear();
    cache.fully_dirty = false;

    let mut agp = plan.record;
    agp.cache = agp_stats;
    RefreshedBlock {
        block_idx,
        block: Block {
            rule: pristine.rule,
            reason_attrs: pristine.reason_attrs.clone(),
            result_attrs: pristine.result_attrs.clone(),
            groups,
        },
        records: BlockRecords {
            agp,
            rsc: RscRecord {
                repairs,
                cache: rsc_stats,
            },
        },
        cache,
        invalidated,
        recleaned,
    }
}

/// Refresh one dirty block the traditional whole-block way — the path for
/// sessions with injected weights, whose block-wide renormalization defeats
/// group-scoped reuse.  The group cache is dropped (it would hold
/// injected-weight state a later closed-form rebuild must not reuse) and
/// every covered tuple is invalidated.
fn refresh_block_traditional(
    config: &CleanConfig,
    injected: &SessionWeights,
    pristine: &Block,
    pool: &ValuePool,
    mut cache: BlockCache,
    z: usize,
    block_idx: usize,
) -> RefreshedBlock {
    let mut block = pristine.clone();
    let agp = AgpStage::run_block(config, &mut block, pool);
    WeightLearningStage::run_block(config, &mut block);
    injected.apply_to_block(&mut block, pool);
    let rsc = RscStage::run_block(config, &mut block, pool);

    let mut invalidated: Vec<TupleId> = pristine
        .gammas()
        .flat_map(|g| g.tuples.iter().copied())
        .collect();
    for (_, old) in cache.entries.drain() {
        invalidated.extend(old.group.all_tuples());
    }
    let recleaned = block.group_count() as u64;
    cache.last_z = Some(z);
    cache.dirty_keys.clear();
    cache.fully_dirty = false;

    RefreshedBlock {
        block_idx,
        block,
        records: BlockRecords { agp, rsc },
        cache,
        invalidated,
        recleaned,
    }
}

/// Estimated evictable heap per memoised fusion: the `Option<TupleFusion>`
/// slot's fused-assignment buffer plus allocator slack.  The slots
/// themselves (the `Vec`'s inline buffer) are not evictable and therefore
/// not budgeted.
const FUSION_SLOT_BYTES: usize = 64;

/// Estimated bytes per memoised distance pair: the `(ValueId, ValueId) →
/// (f64, f64)` entry plus hash-table overhead.
const DISTANCE_PAIR_BYTES: usize = 48;

/// Hash-table overhead per cache entry (control bytes plus slack).
const HASH_SLOT_BYTES: usize = 16;

/// Estimated resident bytes of one block cache (zero once spilled): the
/// distance memo plus every [`GroupEntry`]'s owned buffers.  Counts what
/// spilling the block would free, which is all the budget policy needs.
fn approx_cache_bytes(cache: &BlockCache) -> usize {
    let mut bytes = cache.distances.len() * DISTANCE_PAIR_BYTES;
    for (key, entry) in &cache.entries {
        bytes += approx_entry_bytes(key, entry);
    }
    bytes
}

/// Estimated bytes of one cached output-group entry.
fn approx_entry_bytes(key: &[ValueId], entry: &GroupEntry) -> usize {
    let mut bytes = std::mem::size_of::<GroupEntry>()
        + std::mem::size_of::<Vec<ValueId>>()
        + HASH_SLOT_BYTES
        + std::mem::size_of_val(key);
    for source in &entry.sources {
        bytes += std::mem::size_of::<Vec<ValueId>>() + std::mem::size_of_val(source.as_slice());
    }
    bytes += approx_group_bytes(&entry.group);
    for repair in &entry.repairs {
        bytes += std::mem::size_of_val(repair)
            + std::mem::size_of_val(repair.tuples.as_slice())
            + repair
                .group_key
                .iter()
                .chain(&repair.from_values)
                .chain(&repair.to_values)
                .map(|s| std::mem::size_of::<String>() + s.len())
                .sum::<usize>();
    }
    bytes
}

/// Estimated bytes of one [`Group`]'s owned buffers.
fn approx_group_bytes(group: &Group) -> usize {
    let mut bytes = std::mem::size_of_val(group.key.as_slice());
    for gamma in &group.gammas {
        bytes += std::mem::size_of_val(gamma)
            + std::mem::size_of_val(gamma.reason_values.as_slice())
            + std::mem::size_of_val(gamma.result_values.as_slice())
            + std::mem::size_of_val(gamma.tuples.as_slice());
    }
    bytes
}

/// The growth of a [`DistanceCache`]'s counters between two snapshots.
fn stats_delta(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
    }
}

/// The `t`-th (0-based) surviving virtual row index given the sorted list of
/// virtual indices already marked for deletion — the translation from a
/// sequentially-interpreted tuple id (deletes shift later ids down) to the
/// deferred-compaction coordinate space.  Binary search on "surviving rows
/// at or below `mid`".  Public so external coordinators batching deletions
/// the same way (the distributed streaming driver) share this exact
/// translation instead of copying it.
pub fn nth_surviving(removed: &[usize], t: usize) -> usize {
    let (mut lo, mut hi) = (t, t + removed.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let surviving = mid + 1 - removed.partition_point(|&r| r <= mid);
        if surviving > t {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Accumulate which blocks a mutation touched (non-zero touched-group
/// count) into the change set's per-block flags.
fn record_touched(touched_blocks: &mut [bool], touched_groups: &[usize]) {
    for (flag, &touched) in touched_blocks.iter_mut().zip(touched_groups) {
        if touched > 0 {
            *flag = true;
        }
    }
}

/// Accumulate which blocks a cell update touched (non-empty touched-key
/// list) into the change set's per-block flags.
fn record_touched_keys(touched_blocks: &mut [bool], touched: &[Vec<Vec<ValueId>>]) {
    for (flag, keys) in touched_blocks.iter_mut().zip(touched) {
        if !keys.is_empty() {
            *flag = true;
        }
    }
}

/// Shift the cached per-block provenance past removed rows: tuple ids in AGP
/// merges and RSC repairs decrement by the number of removed ids below them
/// (exact matches are dropped; they only occur in records of blocks that are
/// dirty and about to be regenerated anyway).  `removed` must be sorted,
/// deduplicated pre-removal row indices.
fn remap_records_after_removal(records: &mut BlockRecords, removed: &[usize]) {
    for merge in &mut records.agp.merges {
        dataset::remap_ids_after_removal(&mut merge.tuples, removed);
    }
    for repair in &mut records.rsc.repairs {
        dataset::remap_ids_after_removal(&mut repair.tuples, removed);
    }
}

/// Shift a block cache's per-group clean state past removed rows, like
/// [`remap_records_after_removal`] does for the provenance.  Blocks the
/// removal touched are fully dirty and will rebuild from pristine anyway;
/// untouched blocks never contained the removed tuples, so the shift keeps
/// their entries byte-identical to a post-removal rebuild.
fn remap_cache_after_removal(cache: &mut BlockCache, removed: &[usize]) {
    for entry in cache.entries.values_mut() {
        for gamma in &mut entry.group.gammas {
            dataset::remap_ids_after_removal(&mut gamma.tuples, removed);
        }
        for repair in &mut entry.repairs {
            dataset::remap_ids_after_removal(&mut repair.tuples, removed);
        }
    }
}

/// Concatenate the cached per-block provenance in block order — exactly the
/// order the whole-index stage runs emit their records in.
fn collect_stage_records(block_records: &[BlockRecords]) -> (AgpRecord, RscRecord) {
    let mut agp = AgpRecord::default();
    let mut rsc = RscRecord::default();
    for records in block_records {
        agp.merges.extend_from_slice(&records.agp.merges);
        agp.cache.absorb(records.agp.cache);
        rsc.repairs.extend_from_slice(&records.rsc.repairs);
        rsc.cache.absorb(records.rsc.cache);
    }
    (agp, rsc)
}
