//! The incremental cleaning engine: a [`CleaningSession`] owns the dataset,
//! the MLN index and all per-stage state across micro-batch ingests.
//!
//! The paper's Algorithm 1 is batch-only: every run rebuilds the index,
//! re-learns every weight and re-cleans every block.  The session keeps two
//! copies of the index instead:
//!
//! * a **pristine** index, incrementally maintained so it is byte-identical
//!   to `MlnIndex::build` over the net rows ingested so far, and
//! * a **cleaned** index holding, per block, the post-AGP/weights/RSC state
//!   of the last refresh, plus the per-block provenance records.
//!
//! [`CleaningSession::apply`] is the one ingest path: it consumes a typed
//! [`ChangeSet`] of [`Mutation`]s — inserts, cell updates and row deletions —
//! splices each into the pristine blocks/groups
//! ([`MlnIndex::insert_tuples`], [`MlnIndex::update_tuple`],
//! [`MlnIndex::remove_tuples`]) and marks the touched blocks dirty.
//! Deletions compact the dataset (later tuple ids shift down by one), and the
//! session remaps its cached cleaned index and per-block provenance in step,
//! so untouched blocks keep serving their cached state.  Producing a
//! [`Report`] then re-runs AGP → weight learning → RSC **only on dirty
//! blocks** (from their pristine state — Stage I is per-block deterministic,
//! so an untouched block's cached clean state is exactly what a full batch
//! run would recompute) and re-fuses **only the tuples covered by dirty
//! blocks** (FSCR is per-tuple deterministic given the cleaned blocks; all
//! other tuples replay their memoised [`TupleFusion`]).  The result is
//! byte-identical — output CSV and AGP/RSC/FSCR provenance — to a single
//! batch run over the **net surviving rows**, which is what
//! [`crate::MlnClean::clean`] now is: one bulk ingest plus
//! [`CleaningSession::finish`].

use crate::agp::AgpRecord;
use crate::changeset::{ChangeSet, Mutation};
use crate::engine::{Report, Timings};
use crate::error::CleanError;
use crate::fscr::{apply_tuple_fusion, ConflictResolver, FscrRecord, TupleFusion};
use crate::index::{Block, InsertReport, MlnIndex};
use crate::rsc::RscRecord;
use crate::stage::{AgpStage, RscStage, WeightLearningStage};
use crate::weights::SessionWeights;
use crate::CleanConfig;
use dataset::{ArityMismatch, Dataset, Schema, TupleId};
use rayon::prelude::*;
use rules::RuleSet;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Historical name of the session ingest error enum.
#[deprecated(note = "the per-driver error enums merged into `CleanError`")]
pub type IngestError = CleanError;

/// What one [`CleaningSession::apply`] call changed — the dirtiness the next
/// re-clean will have to pay for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchReport {
    /// 1-based ordinal of this change set within the session.
    pub batch: usize,
    /// Rows inserted by this change set.
    pub rows: usize,
    /// Cells overwritten by `Update` mutations in this change set.
    pub updated_cells: usize,
    /// Rows removed by `Delete` mutations in this change set.
    pub deleted_rows: usize,
    /// Net rows held by the session after this change set.
    pub total_rows: usize,
    /// Blocks currently dirty (touched since the last re-clean, including by
    /// this change set).
    pub dirty_blocks: usize,
    /// Total blocks (= rules).
    pub total_blocks: usize,
    /// Groups touched by this change set (summed over its mutations; a group
    /// touched by two mutations counts twice).
    pub touched_groups: usize,
    /// Total groups across all blocks after this change set.
    pub total_groups: usize,
    /// Sorted indices of the blocks this change set touched (a subset of the
    /// blocks currently dirty).  External coordinators — e.g. the
    /// distributed streaming driver — use this to track per-block dirtiness
    /// across partitions without reaching into the session.
    pub touched_blocks: Vec<usize>,
}

/// Cached post-Stage-I provenance of one block.
#[derive(Debug, Clone, Default)]
struct BlockRecords {
    agp: AgpRecord,
    rsc: RscRecord,
}

/// An incremental MLNClean engine over typed mutation ingest.
///
/// See the [module docs](self) for the design; see
/// [`crate::MlnClean::clean`] for the batch special case (one bulk ingest +
/// [`CleaningSession::finish`]).
#[derive(Debug, Clone)]
pub struct CleaningSession {
    config: CleanConfig,
    rules: RuleSet,
    dataset: Dataset,
    /// Byte-identical to `MlnIndex::build(&self.dataset, &self.rules)`.
    pristine: MlnIndex,
    /// Per block: the post-AGP/weights/RSC state of the last refresh.
    cleaned: MlnIndex,
    block_records: Vec<BlockRecords>,
    block_dirty: Vec<bool>,
    /// Per tuple: the memoised FSCR fusion (`None` = must be (re)fused).
    fusions: Vec<Option<TupleFusion>>,
    /// Externally injected γ-weight overrides (empty = none) — see
    /// [`CleaningSession::inject_weights`].
    injected: SessionWeights,
    /// O(index) id-compaction passes performed so far (at most one per
    /// change set containing deletes) — see
    /// [`CleaningSession::remap_passes`].
    remap_passes: usize,
    timings: Timings,
    batches: usize,
}

impl CleaningSession {
    /// Open a session for `schema` under `rules`.
    ///
    /// Fails like [`crate::MlnClean::clean`] does: on an empty rule set, or
    /// on a rule referencing an attribute the schema does not have.
    pub fn new(config: CleanConfig, schema: Schema, rules: RuleSet) -> Result<Self, CleanError> {
        if rules.is_empty() {
            return Err(CleanError::NoRules);
        }
        let dataset = Dataset::new(schema);
        let pristine = MlnIndex::build_serial(&dataset, &rules)?;
        let cleaned = pristine.clone();
        let blocks = pristine.block_count();
        Ok(CleaningSession {
            config,
            rules,
            dataset,
            pristine,
            cleaned,
            block_records: vec![BlockRecords::default(); blocks],
            block_dirty: vec![false; blocks],
            fusions: Vec::new(),
            injected: SessionWeights::default(),
            remap_passes: 0,
            timings: Timings::default(),
            batches: 0,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// The rule set the session cleans against.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The accumulated (dirty) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Net rows held by the session.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the session currently holds no rows.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Number of blocks (= rules).
    pub fn total_blocks(&self) -> usize {
        self.pristine.block_count()
    }

    /// Blocks currently dirty (they will re-run Stage I on the next
    /// outcome).
    pub fn dirty_block_count(&self) -> usize {
        self.block_dirty.iter().filter(|&&d| d).count()
    }

    /// Change sets applied so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// The incrementally maintained pristine index — byte-identical to
    /// `MlnIndex::build` over the net rows ingested so far.
    ///
    /// External coordinators (e.g. the distributed streaming driver) read
    /// the per-block state here to merge it across partitions.
    pub fn pristine_index(&self) -> &MlnIndex {
        &self.pristine
    }

    /// O(index) id-compaction passes performed so far — the regression
    /// counter for the batched delete remap.  Every change set pays at most
    /// **one** such pass no matter how many deletes it contains or how they
    /// interleave with inserts and updates (a change set without deletes
    /// pays none).
    pub fn remap_passes(&self) -> usize {
        self.remap_passes
    }

    /// Snapshot the per-γ weights of the last re-clean (the cleaned index)
    /// as a pool-independent [`SessionWeights`] table — the export half of
    /// the session weight hooks.
    pub fn export_weights(&self) -> SessionWeights {
        SessionWeights::from_index(&self.cleaned)
    }

    /// Inject externally merged γ weights — the import half of the session
    /// weight hooks.
    ///
    /// A distributed coordinator learns weights over evidence this session
    /// cannot see (the other partitions); injecting the merged table makes
    /// the **next** re-clean override the locally learned weight of every
    /// matching γ (and re-normalize each block's probabilities) right after
    /// weight learning, before RSC runs — the per-partition half of the
    /// paper's Eq. 6 phase.  Every block is marked dirty so the injected
    /// weights take effect on the next [`CleaningSession::outcome`].  The
    /// injection persists across re-cleans until replaced; injecting an
    /// empty table clears it.  Note that a session with injected weights
    /// intentionally diverges from the single-node batch run it is
    /// otherwise byte-identical to.
    pub fn inject_weights(&mut self, weights: SessionWeights) {
        self.injected = weights;
        if !self.injected.is_empty() {
            for dirty in &mut self.block_dirty {
                *dirty = true;
            }
        }
    }

    /// Cumulative per-stage wall-clock timings across all ingests and
    /// re-cleans of this session.
    pub fn timings(&self) -> Timings {
        self.timings
    }

    /// Apply one typed [`ChangeSet`] — the session's one ingest path.
    ///
    /// The change set is atomic: every mutation is validated (row arity,
    /// tuple and attribute bounds, with tuple ids tracked through the
    /// sequence's own insertions and deletions) before anything is applied,
    /// so a failed call leaves the session untouched.  Mutations then apply
    /// in order; a `Delete(t)` shifts every later row down by one, exactly
    /// like a batch rebuild over the surviving rows would.
    ///
    /// Deletions are **remap-batched**: rows marked for deletion stay in
    /// place (in *virtual* coordinates — the rows at entry plus whatever
    /// this change set inserts) while the walk translates every later
    /// sequentially-interpreted tuple id onto the survivors, and one
    /// compaction at the end splices all doomed rows out of the dataset,
    /// the pristine index, the cached cleaned index and the provenance.  A
    /// bulk retraction therefore costs a single O(index) id-remap pass no
    /// matter how its deletes interleave with inserts and updates
    /// ([`CleaningSession::remap_passes`] counts the passes).
    pub fn apply(&mut self, changes: ChangeSet) -> Result<BatchReport, CleanError> {
        self.validate(&changes)?;
        let started = Instant::now();
        let parallel = self.config.parallel;
        let mut inserted = 0usize;
        let mut updated_cells = 0usize;
        let mut touched_groups = 0usize;
        let mut touched_blocks = vec![false; self.pristine.block_count()];
        // Virtual row indices marked for deletion, kept sorted.
        let mut removed: Vec<usize> = Vec::new();

        for mutation in changes.into_mutations() {
            match mutation {
                Mutation::Insert(rows) => {
                    let from = self.dataset.len();
                    self.dataset.extend_rows(rows).expect("validated above");
                    let report =
                        self.pristine
                            .insert_tuples(&self.dataset, &self.rules, from, parallel);
                    self.fusions.resize(self.dataset.len(), None);
                    inserted += report.rows;
                    touched_groups += report.total_touched_groups();
                    self.mark_dirty(&report.touched_groups);
                    record_touched(&mut touched_blocks, &report.touched_groups);
                }
                Mutation::Update(t, attr, value) => {
                    let t = TupleId(nth_surviving(&removed, t.index()));
                    if self.dataset.value(t, attr) == value {
                        continue; // no-op: the cell already holds this value
                    }
                    updated_cells += 1;
                    let old_row = self.dataset.row_ids(t);
                    self.dataset.set_value(t, attr, value);
                    let touched = self.pristine.update_tuple(
                        &self.dataset,
                        &self.rules,
                        t,
                        &old_row,
                        parallel,
                    );
                    touched_groups += touched.iter().sum::<usize>();
                    self.mark_dirty(&touched);
                    record_touched(&mut touched_blocks, &touched);
                    // The tuple's own versions may have moved even when no
                    // other tuple's did; always re-fuse it.
                    self.fusions[t.index()] = None;
                }
                Mutation::Delete(t) => {
                    // Translate the sequential id onto the survivors and
                    // defer the actual removal to the single compaction
                    // below.
                    let v = nth_surviving(&removed, t.index());
                    removed.insert(removed.partition_point(|&r| r < v), v);
                }
            }
        }

        let deleted_rows = removed.len();
        if !removed.is_empty() {
            let removed_ids: Vec<TupleId> = removed.iter().map(|&r| TupleId(r)).collect();
            let report =
                self.pristine
                    .remove_tuples(&self.dataset, &self.rules, &removed_ids, parallel);
            self.dataset.remove_rows(&removed_ids);
            let mut idx = 0usize;
            self.fusions.retain(|_| {
                let keep = removed.binary_search(&idx).is_err();
                idx += 1;
                keep
            });
            // Cached cleaned blocks and provenance live in tuple-id space:
            // shift them down past the removed rows.  Dirty blocks get
            // rebuilt from pristine at the next refresh; untouched blocks
            // never contained the tuples, so the shift alone keeps their
            // cache byte-identical to what a batch run over the survivors
            // would produce.
            self.cleaned.remap_removed(&removed);
            for records in &mut self.block_records {
                remap_records_after_removal(records, &removed);
            }
            self.remap_passes += 1;
            touched_groups += report.touched_groups.iter().sum::<usize>();
            self.mark_dirty(&report.touched_groups);
            record_touched(&mut touched_blocks, &report.touched_groups);
        }

        Ok(self.finalize_change(
            started,
            inserted,
            updated_cells,
            deleted_rows,
            touched_groups,
            touched_blocks,
        ))
    }

    /// Shared post-ingest bookkeeping of [`CleaningSession::apply`] and
    /// [`CleaningSession::ingest_dataset`]: re-sync the cleaned index's pool
    /// snapshot (new values interned by the change must resolve there even
    /// when no block went dirty; pools are append-only, so a length check
    /// spots growth without cloning), account the wall time, bump the batch
    /// ordinal and assemble the [`BatchReport`].
    fn finalize_change(
        &mut self,
        started: Instant,
        rows: usize,
        updated_cells: usize,
        deleted_rows: usize,
        touched_groups: usize,
        touched_blocks: Vec<bool>,
    ) -> BatchReport {
        if self.dataset.pool().len() != self.cleaned.pool().len() {
            self.cleaned.set_pool(self.dataset.pool().clone());
        }
        self.timings.index += started.elapsed();
        self.batches += 1;
        BatchReport {
            batch: self.batches,
            rows,
            updated_cells,
            deleted_rows,
            total_rows: self.dataset.len(),
            dirty_blocks: self.dirty_block_count(),
            total_blocks: self.pristine.block_count(),
            touched_groups,
            total_groups: self.pristine.blocks.iter().map(|b| b.group_count()).sum(),
            touched_blocks: touched_blocks
                .iter()
                .enumerate()
                .filter_map(|(i, &t)| t.then_some(i))
                .collect(),
        }
    }

    /// Ingest one micro-batch of string rows — a thin convenience for
    /// [`CleaningSession::apply`] with a single `Insert` mutation.
    pub fn ingest_batch(&mut self, rows: Vec<Vec<String>>) -> Result<BatchReport, CleanError> {
        self.apply(ChangeSet::inserting(rows))
    }

    /// Ingest a whole dataset (the batch special case) — a convenience kept
    /// for its bulk fast path.
    ///
    /// When the session is still empty this shares the dataset's columnar
    /// storage and value pool outright (no re-interning) and builds the
    /// pristine index with the bulk `MlnIndex::build_with` path; otherwise
    /// the rows are appended via [`Dataset::extend_from`], which re-interns
    /// each distinct value once.
    pub fn ingest_dataset(&mut self, ds: &Dataset) -> Result<BatchReport, CleanError> {
        if ds.schema() != self.dataset.schema() {
            return Err(CleanError::Schema(dataset::SchemaMismatch));
        }
        let started = Instant::now();
        let report = if self.dataset.is_empty() {
            self.dataset = ds.clone();
            self.pristine = MlnIndex::build_with(&self.dataset, &self.rules, self.config.parallel)
                .expect("rules were validated when the session was created");
            // A bulk build touches exactly the groups it creates.
            let groups: Vec<usize> = self
                .pristine
                .blocks
                .iter()
                .map(|b| b.group_count())
                .collect();
            InsertReport {
                rows: ds.len(),
                touched_groups: groups.clone(),
                created_groups: groups,
            }
        } else {
            let from = self.dataset.len();
            self.dataset.extend_from(ds)?;
            self.pristine
                .insert_tuples(&self.dataset, &self.rules, from, self.config.parallel)
        };
        self.fusions.resize(self.dataset.len(), None);
        self.mark_dirty(&report.touched_groups);
        let mut touched_blocks = vec![false; self.pristine.block_count()];
        record_touched(&mut touched_blocks, &report.touched_groups);
        Ok(self.finalize_change(
            started,
            report.rows,
            0,
            0,
            report.total_touched_groups(),
            touched_blocks,
        ))
    }

    /// Pre-validate a change set against the session schema, tracking the
    /// row count through the sequence's own inserts and deletes.
    fn validate(&self, changes: &ChangeSet) -> Result<(), CleanError> {
        let arity = self.dataset.schema().arity();
        let mut rows = self.dataset.len();
        for mutation in changes.iter() {
            match mutation {
                Mutation::Insert(batch) => {
                    for row in batch {
                        if row.len() != arity {
                            return Err(CleanError::Arity(ArityMismatch {
                                expected: arity,
                                actual: row.len(),
                            }));
                        }
                    }
                    rows += batch.len();
                }
                Mutation::Update(t, attr, _) => {
                    if t.index() >= rows {
                        return Err(CleanError::UnknownTuple { tuple: *t, rows });
                    }
                    if attr.index() >= arity {
                        return Err(CleanError::UnknownAttribute { attr: *attr, arity });
                    }
                }
                Mutation::Delete(t) => {
                    if t.index() >= rows {
                        return Err(CleanError::UnknownTuple { tuple: *t, rows });
                    }
                    rows -= 1;
                }
            }
        }
        Ok(())
    }

    /// Mark every block with a non-zero touched-group count dirty.
    fn mark_dirty(&mut self, touched_groups: &[usize]) {
        for (dirty, &touched) in self.block_dirty.iter_mut().zip(touched_groups) {
            if touched > 0 {
                *dirty = true;
            }
        }
    }

    /// Re-run Stage I (AGP → weight learning → RSC) on every dirty block,
    /// from its pristine state, and refresh the cleaned index and the
    /// per-block provenance.  Clean blocks keep their cached state — their
    /// pristine content is exactly what a full rebuild would produce, so the
    /// cached cleaned state is too.
    fn refresh(&mut self) {
        if !self.block_dirty.iter().any(|&d| d) {
            return;
        }

        // Tuples covered by a dirty block must be re-fused: their version
        // set or their substitution candidates may have changed.  (AGP/RSC
        // preserve block membership, so pristine membership is the right
        // over-approximation.)
        for (block, &dirty) in self.pristine.blocks.iter().zip(&self.block_dirty) {
            if !dirty {
                continue;
            }
            for gamma in block.gammas() {
                for &t in &gamma.tuples {
                    self.fusions[t.index()] = None;
                }
            }
        }

        let dirty_idx: Vec<usize> = (0..self.block_dirty.len())
            .filter(|&i| self.block_dirty[i])
            .collect();
        let config = &self.config;
        let pristine = &self.pristine;
        let pool = pristine.pool();
        let parallel = self.config.parallel;

        // Three wall-clock-timed passes over the dirty blocks — one per
        // stage, parallel across blocks — so the [`Timings`] keep the same
        // wall-time semantics as the historical whole-index pipeline (a
        // single fused per-block pass would sum per-worker CPU time
        // instead).
        let work: Vec<(usize, Block)> = dirty_idx
            .iter()
            .map(|&i| (i, pristine.blocks[i].clone()))
            .collect();

        let started = Instant::now();
        let run_agp = |(i, mut block): (usize, Block)| {
            let agp = AgpStage::run_block(config, &mut block, pool);
            (i, block, agp)
        };
        let work: Vec<(usize, Block, AgpRecord)> = if parallel {
            work.into_par_iter().map(run_agp).collect()
        } else {
            work.into_iter().map(run_agp).collect()
        };
        self.timings.agp += started.elapsed();

        let started = Instant::now();
        let injected = &self.injected;
        let run_weights = |(i, mut block, agp): (usize, Block, AgpRecord)| {
            WeightLearningStage::run_block(config, &mut block);
            // Externally merged weights (if any) override the locally
            // learned ones before RSC sees the block — the per-partition
            // half of the distributed Eq. 6 phase.
            if !injected.is_empty() {
                injected.apply_to_block(&mut block, pool);
            }
            (i, block, agp)
        };
        let work: Vec<(usize, Block, AgpRecord)> = if parallel {
            work.into_par_iter().map(run_weights).collect()
        } else {
            work.into_iter().map(run_weights).collect()
        };
        self.timings.weight_learning += started.elapsed();

        let started = Instant::now();
        let run_rsc = |(i, mut block, agp): (usize, Block, AgpRecord)| {
            let rsc = RscStage::run_block(config, &mut block, pool);
            (i, block, BlockRecords { agp, rsc })
        };
        let refreshed: Vec<(usize, Block, BlockRecords)> = if parallel {
            work.into_par_iter().map(run_rsc).collect()
        } else {
            work.into_iter().map(run_rsc).collect()
        };
        self.timings.rsc += started.elapsed();

        if self.dataset.pool().len() != self.cleaned.pool().len() {
            self.cleaned.set_pool(self.dataset.pool().clone());
        }
        for (i, block, records) in refreshed {
            self.cleaned.blocks[i] = block;
            self.block_records[i] = records;
        }
        for dirty in &mut self.block_dirty {
            *dirty = false;
        }
    }

    /// Make sure every tuple has a memoised fusion: refresh the dirty
    /// blocks, then (re)fuse exactly the invalidated tuples.
    fn ensure_fusions(&mut self) {
        self.refresh();
        if self.fusions.iter().all(Option::is_some) {
            return; // nothing invalidated — skip the whole-index plan build
        }
        let started = Instant::now();
        let resolver = ConflictResolver::new(self.config.max_exhaustive_fusion);
        let plan = resolver.plan(&self.cleaned);
        for i in 0..self.fusions.len() {
            if self.fusions[i].is_none() {
                self.fusions[i] = Some(resolver.fuse_tuple(&plan, TupleId(i)));
            }
        }
        self.timings.fscr += started.elapsed();
    }

    /// Re-clean whatever is dirty and produce the full [`Report`] over the
    /// net rows ingested so far — byte-identical (output CSV and
    /// AGP/RSC/FSCR provenance) to a single `MlnClean::clean` batch run on
    /// the accumulated surviving data.
    ///
    /// Can be called after every change set; only the work made necessary by
    /// the mutations since the previous call is redone.  The report
    /// snapshots the session (one dataset copy for the repairs plus one
    /// cleaned-index copy); [`CleaningSession::finish`] moves the state out
    /// instead.
    pub fn outcome(&mut self) -> Report {
        self.ensure_fusions();
        assemble_outcome(
            &self.config,
            &self.fusions,
            &self.block_records,
            self.dataset.clone(),
            self.cleaned.clone(),
            &mut self.timings,
        )
    }

    /// Close the session, producing the final [`Report`].
    ///
    /// Unlike [`CleaningSession::outcome`] this moves the accumulated
    /// dataset and the cleaned index into the report (the repairs are
    /// applied in place), so the batch wrapper [`crate::MlnClean::clean`]
    /// pays no extra copies over the historical monolithic pipeline.
    pub fn finish(mut self) -> Report {
        self.ensure_fusions();
        let CleaningSession {
            config,
            cleaned,
            block_records,
            fusions,
            dataset,
            mut timings,
            ..
        } = self;
        assemble_outcome(
            &config,
            &fusions,
            &block_records,
            dataset,
            cleaned,
            &mut timings,
        )
    }
}

/// The `t`-th (0-based) surviving virtual row index given the sorted list of
/// virtual indices already marked for deletion — the translation from a
/// sequentially-interpreted tuple id (deletes shift later ids down) to the
/// deferred-compaction coordinate space.  Binary search on "surviving rows
/// at or below `mid`".  Public so external coordinators batching deletions
/// the same way (the distributed streaming driver) share this exact
/// translation instead of copying it.
pub fn nth_surviving(removed: &[usize], t: usize) -> usize {
    let (mut lo, mut hi) = (t, t + removed.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let surviving = mid + 1 - removed.partition_point(|&r| r <= mid);
        if surviving > t {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Accumulate which blocks a mutation touched (non-zero touched-group
/// count) into the change set's per-block flags.
fn record_touched(touched_blocks: &mut [bool], touched_groups: &[usize]) {
    for (flag, &touched) in touched_blocks.iter_mut().zip(touched_groups) {
        if touched > 0 {
            *flag = true;
        }
    }
}

/// Shift the cached per-block provenance past removed rows: tuple ids in AGP
/// merges and RSC repairs decrement by the number of removed ids below them
/// (exact matches are dropped; they only occur in records of blocks that are
/// dirty and about to be regenerated anyway).  `removed` must be sorted,
/// deduplicated pre-removal row indices.
fn remap_records_after_removal(records: &mut BlockRecords, removed: &[usize]) {
    for merge in &mut records.agp.merges {
        dataset::remap_ids_after_removal(&mut merge.tuples, removed);
    }
    for repair in &mut records.rsc.repairs {
        dataset::remap_ids_after_removal(&mut repair.tuples, removed);
    }
}

/// Apply the memoised fusions to `repaired` in place, deduplicate, and
/// assemble the [`Report`] — the shared tail of
/// [`CleaningSession::outcome`] (which passes clones) and
/// [`CleaningSession::finish`] (which passes the moved session state).
///
/// Every cell of `repaired` still holds its dirty value until its own fusion
/// is applied, so in-place application reads exactly what a clone-based path
/// would.  All resolved ids are covered by the cleaned index's pool
/// snapshot: fused ids come from its γs, and the snapshot is re-synced with
/// the dataset pool on every ingest and refresh.
fn assemble_outcome(
    config: &CleanConfig,
    fusions: &[Option<TupleFusion>],
    block_records: &[BlockRecords],
    mut repaired: Dataset,
    cleaned: MlnIndex,
    timings: &mut Timings,
) -> Report {
    let started = Instant::now();
    let mut fscr = FscrRecord::default();
    for (i, fusion) in fusions.iter().enumerate() {
        let fusion = fusion.as_ref().expect("ensure_fusions ran");
        apply_tuple_fusion(&mut repaired, cleaned.pool(), TupleId(i), fusion, &mut fscr);
    }
    timings.fscr += started.elapsed();

    let deduplicated = if config.deduplicate {
        let started = Instant::now();
        let deduplicated = repaired.deduplicated();
        timings.dedup += started.elapsed();
        Some(deduplicated)
    } else {
        None
    };
    let (agp, rsc) = collect_stage_records(block_records);

    Report {
        repaired,
        deduplicated,
        index: Some(cleaned),
        agp,
        rsc,
        fscr,
        timings: *timings,
        partitions: None,
    }
}

/// Concatenate the cached per-block provenance in block order — exactly the
/// order the whole-index stage runs emit their records in.
fn collect_stage_records(block_records: &[BlockRecords]) -> (AgpRecord, RscRecord) {
    let mut agp = AgpRecord::default();
    let mut rsc = RscRecord::default();
    for records in block_records {
        agp.merges.extend_from_slice(&records.agp.merges);
        agp.cache.absorb(records.agp.cache);
        rsc.repairs.extend_from_slice(&records.rsc.repairs);
        rsc.cache.absorb(records.rsc.cache);
    }
    (agp, rsc)
}
