//! Explicit pipeline stages over a shared [`StageContext`].
//!
//! Algorithm 1 is a fixed stage sequence — index construction → AGP → weight
//! learning → RSC → FSCR → deduplication — but three different drivers need
//! to compose it: the batch [`crate::MlnClean`] wrapper, the incremental
//! [`crate::CleaningSession`] (which re-runs Stage I per dirty block), and
//! the distributed runner (which splits Stage I around a global weight
//! merge).  Each stage is therefore an explicit object with
//!
//! * a whole-index [`PipelineStage::run`] over a [`StageContext`] (used by
//!   the batch and distributed paths), and
//! * where the stage is per-block — AGP, weight learning, RSC — a
//!   `run_block` entry point (used by the incremental session), guaranteed
//!   to produce byte-identical results because blocks are independent.
//!
//! The context bundles everything a stage may touch: the (dirty) dataset,
//! the configuration, the MLN index being cleaned in place, and the
//! accumulated [`StageRecords`] (provenance + timings).

use crate::agp::{AbnormalGroupProcessor, AgpRecord};
use crate::config::CleanConfig;
use crate::engine::Timings;
use crate::fscr::{ConflictResolver, FscrRecord};
use crate::index::{Block, MlnIndex};
use crate::rsc::{ReliabilityCleaner, RscRecord};
use crate::weights::{assign_block_weights, assign_weights};
use dataset::{Dataset, ValuePool};
use std::time::Instant;

/// Provenance and timings accumulated while stages run.
#[derive(Debug, Clone, Default)]
pub struct StageRecords {
    /// What AGP did.
    pub agp: AgpRecord,
    /// What RSC did.
    pub rsc: RscRecord,
    /// What FSCR did.
    pub fscr: FscrRecord,
    /// Per-stage wall-clock timings.
    pub timings: Timings,
}

/// Everything a stage may read or mutate, shared by the batch, incremental
/// and distributed drivers.
pub struct StageContext<'a> {
    /// The dirty dataset the index was built from.
    pub dataset: &'a Dataset,
    /// The cleaning configuration.
    pub config: &'a CleanConfig,
    /// The MLN index, cleaned in place by the Stage-I stages.
    pub index: &'a mut MlnIndex,
    /// Accumulated provenance and timings.
    pub records: &'a mut StageRecords,
    /// The repaired dataset, produced by [`FscrStage`].
    pub repaired: Option<Dataset>,
    /// The deduplicated dataset, produced by [`DedupStage`] (stays `None`
    /// when deduplication is disabled — the repaired dataset already is the
    /// final output then).
    pub deduplicated: Option<Dataset>,
}

impl<'a> StageContext<'a> {
    /// Create a context over a dataset, its index, and a record accumulator.
    pub fn new(
        dataset: &'a Dataset,
        config: &'a CleanConfig,
        index: &'a mut MlnIndex,
        records: &'a mut StageRecords,
    ) -> Self {
        StageContext {
            dataset,
            config,
            index,
            records,
            repaired: None,
            deduplicated: None,
        }
    }
}

/// One stage of the cleaning pipeline, runnable over a whole index.
pub trait PipelineStage {
    /// Short stage name (for logs and progress reporting).
    fn name(&self) -> &'static str;
    /// Run the stage, mutating the context in place.
    fn run(&self, ctx: &mut StageContext<'_>);
}

/// Abnormal group processing (Stage I, per block).
#[derive(Debug, Clone, Copy, Default)]
pub struct AgpStage;

impl AgpStage {
    /// The AGP processor configured per `config`.
    pub(crate) fn processor(config: &CleanConfig) -> AbnormalGroupProcessor {
        let mut processor = AbnormalGroupProcessor::new(config.tau, config.metric);
        if let Some(guard) = config.agp_distance_guard {
            processor = processor.with_distance_guard(guard);
        }
        processor
    }

    /// Run AGP on a single block (the incremental per-dirty-block entry
    /// point; byte-identical to the whole-index run for that block).
    pub fn run_block(config: &CleanConfig, block: &mut Block, pool: &ValuePool) -> AgpRecord {
        Self::processor(config).process_block(block, pool)
    }
}

impl PipelineStage for AgpStage {
    fn name(&self) -> &'static str {
        "agp"
    }

    fn run(&self, ctx: &mut StageContext<'_>) {
        let start = Instant::now();
        let processor = Self::processor(ctx.config);
        ctx.records.agp = if ctx.config.parallel {
            processor.process(ctx.index)
        } else {
            processor.process_serial(ctx.index)
        };
        ctx.records.timings.agp += start.elapsed();
    }
}

/// Markov weight learning (Stage I, per block).
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightLearningStage;

impl WeightLearningStage {
    /// Assign weights for a single block (the incremental per-dirty-block
    /// entry point).  The config parameter is kept for call-site stability;
    /// the closed-form softmax needs no learning configuration.
    pub fn run_block(config: &CleanConfig, block: &mut Block) {
        let _ = config;
        assign_block_weights(block);
    }
}

impl PipelineStage for WeightLearningStage {
    fn name(&self) -> &'static str {
        "weight_learning"
    }

    fn run(&self, ctx: &mut StageContext<'_>) {
        let start = Instant::now();
        assign_weights(ctx.index);
        ctx.records.timings.weight_learning += start.elapsed();
    }
}

/// Reliability-score cleaning (Stage I, per block).
#[derive(Debug, Clone, Copy, Default)]
pub struct RscStage;

impl RscStage {
    /// Run RSC on a single block (the incremental per-dirty-block entry
    /// point; byte-identical to the whole-index run for that block).
    pub fn run_block(config: &CleanConfig, block: &mut Block, pool: &ValuePool) -> RscRecord {
        ReliabilityCleaner::new(config.metric).clean_block(block, pool)
    }
}

impl PipelineStage for RscStage {
    fn name(&self) -> &'static str {
        "rsc"
    }

    fn run(&self, ctx: &mut StageContext<'_>) {
        let start = Instant::now();
        let cleaner = ReliabilityCleaner::new(ctx.config.metric);
        ctx.records.rsc = if ctx.config.parallel {
            cleaner.clean(ctx.index)
        } else {
            cleaner.clean_serial(ctx.index)
        };
        ctx.records.timings.rsc += start.elapsed();
    }
}

/// Fusion-score conflict resolution (Stage II, per tuple).
#[derive(Debug, Clone, Copy, Default)]
pub struct FscrStage;

impl PipelineStage for FscrStage {
    fn name(&self) -> &'static str {
        "fscr"
    }

    fn run(&self, ctx: &mut StageContext<'_>) {
        let start = Instant::now();
        let resolver = ConflictResolver::new(ctx.config.max_exhaustive_fusion);
        let (repaired, record) = if ctx.config.parallel {
            resolver.resolve_parallel(ctx.dataset, ctx.index)
        } else {
            resolver.resolve(ctx.dataset, ctx.index)
        };
        ctx.repaired = Some(repaired);
        ctx.records.fscr = record;
        ctx.records.timings.fscr += start.elapsed();
    }
}

/// Exact-duplicate elimination (the final step of Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct DedupStage;

impl PipelineStage for DedupStage {
    fn name(&self) -> &'static str {
        "dedup"
    }

    fn run(&self, ctx: &mut StageContext<'_>) {
        if !ctx.config.deduplicate {
            return; // the repaired dataset is already the final output
        }
        let start = Instant::now();
        let repaired = ctx
            .repaired
            .as_ref()
            .expect("DedupStage runs after FscrStage");
        ctx.deduplicated = Some(repaired.deduplicated());
        ctx.records.timings.dedup += start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;
    use rules::sample_hospital_rules;

    #[test]
    fn stage_sequence_matches_the_monolithic_pipeline() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let config = CleanConfig::default().with_tau(1);

        // Composed via the stage objects …
        let mut index = MlnIndex::build_with(&dirty, &rules, config.parallel).unwrap();
        let mut records = StageRecords::default();
        let mut ctx = StageContext::new(&dirty, &config, &mut index, &mut records);
        let stages: [&dyn PipelineStage; 5] = [
            &AgpStage,
            &WeightLearningStage,
            &RscStage,
            &FscrStage,
            &DedupStage,
        ];
        for stage in stages {
            stage.run(&mut ctx);
        }
        let repaired = ctx.repaired.take().expect("FSCR produced a repair");
        let deduplicated = ctx.deduplicated.take().expect("deduplication enabled");

        // … must equal the public pipeline entry point byte for byte.
        let outcome = crate::MlnClean::new(config).clean(&dirty, &rules).unwrap();
        assert_eq!(
            dataset::csv::to_csv(&repaired),
            dataset::csv::to_csv(&outcome.repaired)
        );
        assert_eq!(
            dataset::csv::to_csv(&deduplicated),
            dataset::csv::to_csv(outcome.deduplicated())
        );
        assert_eq!(records.agp, outcome.agp);
        assert_eq!(records.rsc, outcome.rsc);
        assert_eq!(records.fscr, outcome.fscr);
    }

    #[test]
    fn stage_names_cover_the_paper_sequence() {
        let names: Vec<&str> = vec![
            AgpStage.name(),
            WeightLearningStage.name(),
            RscStage.name(),
            FscrStage.name(),
            DedupStage.name(),
        ];
        assert_eq!(
            names,
            vec!["agp", "weight_learning", "rsc", "fscr", "dedup"]
        );
    }
}
