//! Block-level weight learning in closed form: the Eq. 3 block softmax of
//! the Eq. 4 support evidence, `Pr(γᵢ) = softmax(w)ᵢ` with `wᵢ = ln c(γᵢ)`,
//! which collapses algebraically to `Pr(γᵢ) = c(γᵢ) / Σⱼ c(γⱼ)` — the exact
//! fixed point the old Tuffy-style diagonal-Newton learner converged to
//! within its tolerance.
//!
//! The closed form is what makes the softmax *incrementally maintainable*:
//! a γ's weight depends only on its own support and its probability only on
//! the block total `Z = Σⱼ c(γⱼ)`, which AGP merges preserve (merging moves
//! tuples between γs of the same block, it never changes their total).  The
//! group-scoped [`crate::CleaningSession`] re-clean exploits exactly this —
//! a recomputed group gets byte-identical weights to a whole-block pass as
//! long as `Z` is unchanged, without touching the other groups.

use crate::gamma::Gamma;
use crate::index::{Block, Group, MlnIndex};
use dataset::ValuePool;
use serde::de::SeqAccess;
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::HashMap;

/// Assign weights/probabilities for every γ of every block.
pub fn assign_weights(index: &mut MlnIndex) {
    for block in &mut index.blocks {
        assign_block_weights(block);
    }
}

/// The closed-form weight of a γ with support `c`: `w = ln c` (Eq. 4
/// evidence on the Eq. 3 log scale).  Supports below 1 are clamped — the
/// pipeline never produces a tuple-less γ, but a clamp beats `-∞`.
pub fn gamma_weight(support: usize) -> f64 {
    (support.max(1) as f64).ln()
}

/// Total support of a block — the softmax denominator `Z = Σⱼ c(γⱼ)` of
/// Eq. 3 under the closed-form weights.  AGP merges preserve this total
/// (tuples only move between γs of the block), which is what lets the
/// incremental session weight a single recomputed group without reading the
/// rest of the block.
pub fn block_support(block: &Block) -> usize {
    block.gammas().map(|g| g.support()).sum()
}

/// Assign closed-form weights/probabilities to every γ of one group, given
/// the block's total support `z` (see [`block_support`]).  The per-group
/// entry point of the incremental block softmax: byte-identical to
/// [`assign_block_weights`] for that group because both are the same pure
/// function of `(own support, z)`.
pub fn assign_group_weights(group: &mut Group, z: usize) {
    debug_assert!(z > 0, "a non-empty block has positive total support");
    for gamma in &mut group.gammas {
        gamma.weight = gamma_weight(gamma.support());
        gamma.probability = gamma.support() as f64 / z as f64;
    }
}

/// Assign weights/probabilities for every γ of one block.
///
/// Weights are a pure function of the block's own support counts (the
/// softmax of Eq. 3 normalizes within the block), so re-weighting a single
/// dirty block — or, through [`assign_group_weights`], a single dirty group
/// — gives exactly the weights a whole-index pass would.
pub fn assign_block_weights(block: &mut Block) {
    let z = block_support(block);
    if z == 0 {
        // Degenerate (no γ holds a tuple): fall back to a uniform block so
        // probabilities still sum to one.
        let n = block.gammas().count();
        for group in &mut block.groups {
            for gamma in &mut group.gammas {
                gamma.weight = 0.0;
                gamma.probability = 1.0 / n as f64;
            }
        }
        return;
    }
    for group in &mut block.groups {
        assign_group_weights(group, z);
    }
}

/// Recompute every γ probability of a block from its current weights — the
/// block-level softmax of Eq. 3 (`Pr(γ) ∝ exp(w)`).  Used after weight
/// learning and after any external weight override
/// ([`SessionWeights::apply_to_block`], the distributed Eq. 6 merge).
pub fn renormalize_block(block: &mut Block) {
    let weights: Vec<f64> = block.gammas().map(|g| g.weight).collect();
    if weights.is_empty() {
        return;
    }
    let max_w = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = weights.iter().map(|w| (w - max_w).exp()).collect();
    let z: f64 = exps.iter().sum();
    let mut idx = 0;
    for group in &mut block.groups {
        for gamma in &mut group.gammas {
            gamma.probability = exps[idx] / z;
            idx += 1;
        }
    }
}

/// Pool-independent identity of a γ: same rule, same resolved reason values,
/// same resolved result values.  Two sessions (or two distributed
/// partitions) built over different [`ValuePool`]s agree on a γ's signature
/// even though their raw [`dataset::ValueId`]s differ — this is what makes a
/// [`SessionWeights`] table transferable between engines.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GammaSignature {
    /// Index of the rule whose block the γ belongs to.
    pub rule: usize,
    /// Resolved reason-part values.
    pub reason: Vec<String>,
    /// Resolved result-part values.
    pub result: Vec<String>,
}

impl GammaSignature {
    /// The signature of a γ, resolving its interned values through `pool`.
    pub fn of(gamma: &Gamma, pool: &ValuePool) -> Self {
        GammaSignature {
            rule: gamma.rule.index(),
            reason: gamma
                .resolve_reason_values(pool)
                .into_iter()
                .map(str::to_string)
                .collect(),
            result: gamma
                .resolve_result_values(pool)
                .into_iter()
                .map(str::to_string)
                .collect(),
        }
    }
}

/// A transferable per-γ weight table — the vocabulary of the session weight
/// hooks ([`crate::CleaningSession::export_weights`] /
/// [`crate::CleaningSession::inject_weights`]).
///
/// A distributed coordinator merges the weights of identical γs across
/// partitions (the paper's Eq. 6 phase) and pushes the merged table back
/// into each partition's session before its next re-clean; the table is
/// keyed by [`GammaSignature`], so it crosses [`ValuePool`] boundaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionWeights {
    weights: HashMap<GammaSignature, f64>,
}

impl SessionWeights {
    /// An empty table (injecting it clears any previous injection).
    pub fn new() -> Self {
        SessionWeights::default()
    }

    /// Number of γ entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Set (or replace) the weight of a γ.
    pub fn set(&mut self, signature: GammaSignature, weight: f64) {
        self.weights.insert(signature, weight);
    }

    /// The weight recorded for a γ, if any.
    pub fn get(&self, signature: &GammaSignature) -> Option<f64> {
        self.weights.get(signature).copied()
    }

    /// Record every γ weight of one block (later entries replace earlier
    /// ones with the same signature).
    pub fn absorb_block(&mut self, block: &Block, pool: &ValuePool) {
        for gamma in block.gammas() {
            self.weights
                .insert(GammaSignature::of(gamma, pool), gamma.weight);
        }
    }

    /// Snapshot every γ weight of an index.
    pub fn from_index(index: &MlnIndex) -> Self {
        let mut out = SessionWeights::default();
        for block in &index.blocks {
            out.absorb_block(block, index.pool());
        }
        out
    }

    /// Override the weight of every γ of `block` found in the table, then
    /// refresh the block's probabilities (Eq. 3 softmax).  Returns the number
    /// of γs overridden; a block without matches is left untouched.
    pub fn apply_to_block(&self, block: &mut Block, pool: &ValuePool) -> usize {
        if self.weights.is_empty() {
            return 0;
        }
        let mut overridden = 0usize;
        for group in &mut block.groups {
            for gamma in &mut group.gammas {
                if let Some(&w) = self.weights.get(&GammaSignature::of(gamma, pool)) {
                    gamma.weight = w;
                    overridden += 1;
                }
            }
        }
        if overridden > 0 {
            renormalize_block(block);
        }
        overridden
    }
}

// Serialized as a `(signature, weight)` entry list sorted by signature, so
// the same table always yields the same wire bytes regardless of the hash
// map's iteration order — merge-round messages must be byte-deterministic
// for the transport replay/chaos harnesses to compare runs.
impl Serialize for SessionWeights {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(&GammaSignature, f64)> =
            self.weights.iter().map(|(s, &w)| (s, w)).collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut seq = serializer.serialize_seq(Some(entries.len()))?;
        for entry in &entries {
            seq.serialize_element(entry)?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for SessionWeights {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct TableVisitor;
        impl<'de> serde::de::Visitor<'de> for TableVisitor {
            type Value = SessionWeights;
            fn expecting(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result {
                write!(f, "a sequence of (signature, weight) entries")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = SessionWeights::new();
                while let Some((signature, weight)) = seq.next_element::<(GammaSignature, f64)>()? {
                    out.set(signature, weight);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(TableVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;
    use rules::{sample_hospital_rules, RuleId};

    #[test]
    fn weights_follow_support_within_block() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        assign_weights(&mut index);

        let boaz = index.group_by_key(RuleId(0), &["BOAZ"]).unwrap();
        let al = boaz
            .gammas
            .iter()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AL"])
            .unwrap();
        let ak = boaz
            .gammas
            .iter()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AK"])
            .unwrap();
        assert!(
            al.weight > ak.weight,
            "2-tuple support must outweigh 1-tuple support"
        );
        assert!(al.probability > ak.probability);
    }

    #[test]
    fn probabilities_sum_to_one_per_block() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        assign_weights(&mut index);
        for block in &index.blocks {
            let total: f64 = block.gammas().map(|g| g.probability).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "block {:?} sums to {}",
                block.rule,
                total
            );
            for g in block.gammas() {
                assert!(g.probability > 0.0 && g.probability <= 1.0);
            }
        }
    }

    #[test]
    fn session_weights_export_and_inject_round_trip() {
        use crate::{CleanConfig, CleaningSession};
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut session = CleaningSession::new(
            CleanConfig::default().with_tau(1),
            ds.schema().clone(),
            rules,
        )
        .unwrap();
        session
            .ingest_batch(ds.tuples().map(|t| t.owned_values()).collect())
            .unwrap();
        let _ = session.outcome();

        // Export the learned weights and look up one γ through its
        // pool-independent signature.
        let exported = session.export_weights();
        assert!(!exported.is_empty());
        let outcome = session.outcome();
        let index = outcome.index.as_ref().unwrap();
        let gamma = index.blocks[0].gammas().next().unwrap();
        let signature = GammaSignature::of(gamma, index.pool());
        assert_eq!(exported.get(&signature), Some(gamma.weight));

        // Inject an override: the next re-clean must carry it and
        // re-normalize the block's probabilities around it.
        let mut table = SessionWeights::new();
        table.set(signature.clone(), 42.0);
        session.inject_weights(table);
        assert!(
            session.dirty_block_count() > 0,
            "injection forces a re-clean"
        );
        let outcome = session.outcome();
        let index = outcome.index.as_ref().unwrap();
        let gamma = index.blocks[0]
            .gammas()
            .find(|g| GammaSignature::of(g, index.pool()) == signature)
            .expect("the overridden γ survives Stage I");
        assert!((gamma.weight - 42.0).abs() < 1e-12);
        let total: f64 = index.blocks[0].gammas().map(|g| g.probability).sum();
        assert!((total - 1.0).abs() < 1e-9, "probabilities re-normalized");

        // Injecting an empty table clears the override.
        session.inject_weights(SessionWeights::new());
        assert_eq!(
            session.dirty_block_count(),
            0,
            "empty table dirties nothing"
        );
    }

    #[test]
    fn apply_to_block_overrides_only_matching_gammas() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        assign_weights(&mut index);
        let pool = index.pool().clone();
        let block = &mut index.blocks[0];

        let miss = SessionWeights::new();
        assert_eq!(miss.apply_to_block(block, &pool), 0);

        let target = GammaSignature::of(block.gammas().next().unwrap(), &pool);
        let untouched: Vec<f64> = block.gammas().skip(1).map(|g| g.weight).collect();
        let mut table = SessionWeights::new();
        table.set(target.clone(), 7.5);
        table.set(
            GammaSignature {
                rule: 99,
                reason: vec!["nowhere".into()],
                result: vec![],
            },
            1.0,
        );
        assert_eq!(table.len(), 2);
        assert_eq!(table.apply_to_block(block, &pool), 1);
        assert!((block.gammas().next().unwrap().weight - 7.5).abs() < 1e-12);
        let after: Vec<f64> = block.gammas().skip(1).map(|g| g.weight).collect();
        assert_eq!(untouched, after, "non-matching γ weights stay put");
    }

    #[test]
    fn prior_of_paper_example_is_one_sixth() {
        // The paper: for {CT: BOAZ, ST: AK} in G13 of block B1 the initial
        // weight is 1/6 — one supporting tuple out of six γ-related tuples in
        // the block.  Our learned weight starts from that prior; here we just
        // verify the support bookkeeping that feeds Eq. 4.
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let index = MlnIndex::build(&ds, &rules).unwrap();
        let b1 = index.block(RuleId(0));
        let total: usize = b1.gammas().map(|g| g.support()).sum();
        assert_eq!(total, 6);
        let ak = b1
            .gammas()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AK"])
            .unwrap();
        assert_eq!(ak.support(), 1);
    }
}
