//! Block-level weight learning: attach to every γ of every block the weight
//! learned by the Tuffy-style diagonal-Newton learner, starting from the
//! prior `w⁰(γᵢ) = c(γᵢ) / Σⱼ c(γⱼ)` of Eq. 4, and the corresponding
//! block-normalized probability `Pr(γᵢ) ∝ exp(wᵢ)` of Eq. 3.

use crate::index::{Block, MlnIndex};
use mln::{learn_gamma_weights, LearningConfig};

/// Learn and assign weights/probabilities for every γ of every block.
pub fn assign_weights(index: &mut MlnIndex, config: &LearningConfig) {
    for block in &mut index.blocks {
        assign_block_weights(block, config);
    }
}

/// Learn and assign weights/probabilities for every γ of one block.
///
/// Weights are a pure function of the block's own support counts (the
/// softmax of Eq. 3 normalizes within the block), so re-learning a single
/// dirty block — as the incremental [`crate::CleaningSession`] does — gives
/// exactly the weights a whole-index pass would.
pub fn assign_block_weights(block: &mut Block, config: &LearningConfig) {
    // Collect the support counts of every γ in the block, in a stable
    // (group, gamma) order.
    let counts: Vec<usize> = block
        .groups
        .iter()
        .flat_map(|g| g.gammas.iter().map(|gamma| gamma.support()))
        .collect();
    if counts.is_empty() {
        return;
    }
    let weights = learn_gamma_weights(&counts, config);

    // Block-level softmax turns the weights into the probabilities of
    // Eq. 3 (Pr(γ) ∝ exp(w)).
    let max_w = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = weights.iter().map(|w| (w - max_w).exp()).collect();
    let z: f64 = exps.iter().sum();

    let mut idx = 0;
    for group in &mut block.groups {
        for gamma in &mut group.gammas {
            gamma.weight = weights[idx];
            gamma.probability = exps[idx] / z;
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;
    use rules::{sample_hospital_rules, RuleId};

    #[test]
    fn weights_follow_support_within_block() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        assign_weights(&mut index, &LearningConfig::default());

        let boaz = index.group_by_key(RuleId(0), &["BOAZ"]).unwrap();
        let al = boaz
            .gammas
            .iter()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AL"])
            .unwrap();
        let ak = boaz
            .gammas
            .iter()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AK"])
            .unwrap();
        assert!(
            al.weight > ak.weight,
            "2-tuple support must outweigh 1-tuple support"
        );
        assert!(al.probability > ak.probability);
    }

    #[test]
    fn probabilities_sum_to_one_per_block() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        assign_weights(&mut index, &LearningConfig::default());
        for block in &index.blocks {
            let total: f64 = block.gammas().map(|g| g.probability).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "block {:?} sums to {}",
                block.rule,
                total
            );
            for g in block.gammas() {
                assert!(g.probability > 0.0 && g.probability <= 1.0);
            }
        }
    }

    #[test]
    fn prior_of_paper_example_is_one_sixth() {
        // The paper: for {CT: BOAZ, ST: AK} in G13 of block B1 the initial
        // weight is 1/6 — one supporting tuple out of six γ-related tuples in
        // the block.  Our learned weight starts from that prior; here we just
        // verify the support bookkeeping that feeds Eq. 4.
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let index = MlnIndex::build(&ds, &rules).unwrap();
        let b1 = index.block(RuleId(0));
        let total: usize = b1.gammas().map(|g| g.support()).sum();
        assert_eq!(total, 6);
        let ak = b1
            .gammas()
            .find(|g| g.resolve_result_values(index.pool()) == vec!["AK"])
            .unwrap();
        assert_eq!(ak.support(), 1);
    }
}
