//! Synthetic CAR (used-vehicle listings) dataset.
//!
//! The real CAR dataset (cars.com) lists used vehicles with model, make,
//! type, year, condition, wheel-drive, doors and engine attributes.  It is
//! the paper's "sparse" dataset: many distinct models and free-text-like
//! values, each appearing only a handful of times — which is what makes
//! HoloClean-style co-occurrence models fragile on it (Figure 7a).

use crate::make_dirty;
use crate::stream::{DirtyRowStream, StreamColumn};
use dataset::{Dataset, DirtyDataset, Schema, TupleId};
use rand::prelude::*;
use rand::rngs::StdRng;
use rules::{parse_rules, RuleSet};

/// Generator for the synthetic CAR dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CarGenerator {
    /// Number of distinct models per make.
    pub models_per_make: usize,
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CarGenerator {
    fn default() -> Self {
        CarGenerator {
            models_per_make: 3,
            rows: 2_000,
            seed: 23,
        }
    }
}

const MAKES: &[&str] = &[
    "acura",
    "audi",
    "bmw",
    "chevrolet",
    "dodge",
    "ford",
    "honda",
    "hyundai",
    "jeep",
    "kia",
    "lexus",
    "mazda",
    "nissan",
    "subaru",
    "toyota",
    "volkswagen",
];

const TYPES: &[&str] = &["sedan", "suv", "coupe", "hatchback", "truck"];

/// Model-name stems: distinct, realistic-looking names so that different
/// models are far apart under a string metric (as real model names are),
/// while a typo'd model stays close to its original.
const MODEL_STEMS: &[&str] = &[
    "integra",
    "quattro",
    "gran-turismo",
    "silverado",
    "challenger",
    "mustang",
    "civic",
    "elantra",
    "wrangler",
    "sorento",
    "ladyra",
    "miata",
    "altima",
    "outback",
    "corolla",
    "passat",
    "legend",
    "allroad",
    "zagato",
    "impala",
    "durango",
    "explorer",
    "accord",
    "sonata",
    "cherokee",
    "sportage",
    "luxion",
    "navada",
    "maxima",
    "forester",
    "camry",
    "jetta",
    "vigor",
    "cabrio",
    "roadster",
    "tahoe",
    "viper",
    "ranger",
    "pilot",
    "tucson",
    "gladiator",
    "telluride",
    "emblema",
    "protege",
    "sentra",
    "crosstrek",
    "tundra",
    "touareg",
];

const CONDITIONS: &[&str] = &["new", "used", "certified"];

const WHEEL_DRIVES: &[&str] = &["fwd", "rwd", "awd", "4wd"];

impl CarGenerator {
    /// Set the number of rows.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The CAR rule set of Table 4:
    /// * CFD: `Make="acura", Type ⇒ Doors`
    /// * FD: `Model, Type ⇒ Make`
    pub fn rules() -> RuleSet {
        parse_rules(
            "CFD: Make=\"acura\", Type -> Doors\n\
             FD: Model, Type -> Make",
        )
        .expect("the CAR rule set is well-formed")
    }

    /// Order-preserving split of a CAR dataset into `(head, tail)` tuple
    /// ids, where the tail is (at most) the last `tail_rows` rows whose
    /// `Make` is not `"acura"`.
    ///
    /// Such tail rows are irrelevant to the `Make="acura"` CFD, so ingesting
    /// them into an incremental cleaning session leaves the CFD block
    /// untouched — the partial-dirtiness scenario the streaming bench and
    /// the session-equivalence tests both probe.
    pub fn non_acura_tail_split(ds: &Dataset, tail_rows: usize) -> (Vec<TupleId>, Vec<TupleId>) {
        let make = ds
            .schema()
            .attr_id("Make")
            .expect("a CAR dataset has a Make column");
        let non_acura: Vec<TupleId> = ds
            .tuple_ids()
            .filter(|&t| ds.value(t, make) != "acura")
            .collect();
        let tail: Vec<TupleId> = non_acura[non_acura.len().saturating_sub(tail_rows)..].to_vec();
        let head: Vec<TupleId> = ds.tuple_ids().filter(|t| !tail.contains(t)).collect();
        (head, tail)
    }

    /// Doors for acura vehicles as a function of vehicle type — the
    /// dependency behind the CFD of Table 4.
    fn acura_doors_for(vehicle_type: &str) -> &'static str {
        match vehicle_type {
            "coupe" => "2",
            "truck" => "2",
            "sedan" | "hatchback" => "4",
            "suv" => "5",
            _ => "4",
        }
    }

    /// Doors for non-acura vehicles: a stable per-(model, type) choice that
    /// is *not* a simple function of the type alone.  No rule constrains
    /// these cells, and keeping them weakly predictable mirrors the real
    /// listings data where a statistical cleaner cannot trivially recover a
    /// corrupted door count either.
    fn other_doors_for(model: &str, vehicle_type: &str) -> &'static str {
        let hash: usize = model
            .bytes()
            .chain(vehicle_type.bytes())
            .fold(0usize, |acc, b| {
                acc.wrapping_mul(31).wrapping_add(b as usize)
            });
        ["2", "3", "4", "5"][hash % 4]
    }

    /// The CAR schema.
    pub fn schema() -> Schema {
        Schema::new(&[
            "Model",
            "Make",
            "Type",
            "Year",
            "Condition",
            "WheelDrive",
            "Doors",
            "Engine",
        ])
    }

    /// Number of catalogue entries (models across all makes).
    fn catalogue_len(&self) -> usize {
        MAKES.len() * self.models_per_make.max(1)
    }

    /// The `flat`-th catalogue entry as `(model, make)`.  Every model name is
    /// unique to one make, so the FD Model, Type → Make holds by
    /// construction.  Model names come from a pool of distinct stems
    /// (suffixed when the pool wraps around) so that different models are far
    /// apart in edit distance.
    fn catalogue_entry(&self, flat: usize) -> (String, &'static str) {
        let make = MAKES[flat / self.models_per_make.max(1)];
        let stem = MODEL_STEMS[flat % MODEL_STEMS.len()];
        let model = if flat < MODEL_STEMS.len() {
            stem.to_string()
        } else {
            format!("{}-{}", stem, flat / MODEL_STEMS.len() + 1)
        };
        (model, make)
    }

    /// Stream the clean rows one at a time.  [`CarGenerator::generate`]
    /// drains this same stream, so streamed rows are byte-identical to the
    /// materialised dataset whatever the consumer's batch size.
    pub fn row_stream(&self) -> CarRows {
        CarRows {
            rng: StdRng::seed_from_u64(self.seed),
            gen: self.clone(),
            produced: 0,
        }
    }

    /// Generate the clean dataset by materialising the row stream.
    pub fn generate(&self) -> Dataset {
        let mut ds = Dataset::with_capacity(Self::schema(), self.rows);
        for row in self.row_stream() {
            ds.push_row(row).expect("row matches the CAR schema");
        }
        ds
    }

    /// Generate a clean dataset and corrupt it per the paper's protocol.
    pub fn dirty(&self, error_rate: f64, replacement_ratio: f64, seed: u64) -> DirtyDataset {
        let clean = self.generate();
        make_dirty(&clean, &Self::rules(), error_rate, replacement_ratio, seed)
    }

    /// Stream dirty rows: the clean row stream with the rule-related cells
    /// (`Model`, `Make`, `Type`, `Doors`) corrupted by the per-cell streaming
    /// protocol (deterministic in `seed`, batch-size independent).
    pub fn dirty_row_stream(
        &self,
        error_rate: f64,
        replacement_ratio: f64,
        seed: u64,
    ) -> DirtyRowStream<CarRows> {
        let catalogue = self.clone();
        let n = self.catalogue_len() as u64;
        DirtyRowStream::new(
            self.row_stream(),
            vec![
                StreamColumn::new(
                    0,
                    Box::new(move |draw| catalogue.catalogue_entry((draw % n) as usize).0),
                ),
                StreamColumn::new(
                    1,
                    Box::new(|draw| MAKES[(draw % MAKES.len() as u64) as usize].to_string()),
                ),
                StreamColumn::new(
                    2,
                    Box::new(|draw| TYPES[(draw % TYPES.len() as u64) as usize].to_string()),
                ),
                StreamColumn::new(
                    6,
                    Box::new(|draw| ["2", "3", "4", "5"][(draw % 4) as usize].to_string()),
                ),
            ],
            error_rate,
            replacement_ratio,
            seed,
        )
    }
}

/// Iterator over the clean CAR rows, in row order (see
/// [`CarGenerator::row_stream`]).
#[derive(Debug, Clone)]
pub struct CarRows {
    rng: StdRng,
    gen: CarGenerator,
    produced: usize,
}

impl Iterator for CarRows {
    type Item = Vec<String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.produced >= self.gen.rows {
            return None;
        }
        self.produced += 1;
        // Skewed model popularity (roughly Zipf-like): listings of the
        // popular models dominate, as they do on the real site.  This is
        // what gives the FD groups enough support for AGP/RSC while
        // keeping a long sparse tail.
        let catalogue_len = self.gen.catalogue_len();
        let skew: f64 = self.rng.gen::<f64>();
        let model_idx = ((skew * skew) * catalogue_len as f64) as usize;
        let (model, make) = self.gen.catalogue_entry(model_idx.min(catalogue_len - 1));
        let vehicle_type = TYPES[self.rng.gen_range(0..TYPES.len())];
        let doors = if make == "acura" {
            CarGenerator::acura_doors_for(vehicle_type)
        } else {
            CarGenerator::other_doors_for(&model, vehicle_type)
        };
        let year = format!("{}", self.rng.gen_range(1998..2020));
        let condition = CONDITIONS[self.rng.gen_range(0..CONDITIONS.len())];
        let wheel_drive = WHEEL_DRIVES[self.rng.gen_range(0..WHEEL_DRIVES.len())];
        let engine = format!(
            "{:.1}L-V{}",
            self.rng.gen_range(1.0..5.7),
            [4, 6, 8][self.rng.gen_range(0..3usize)]
        );
        Some(vec![
            model,
            make.to_string(),
            vehicle_type.to_string(),
            year,
            condition.to_string(),
            wheel_drive.to_string(),
            doors.to_string(),
            engine,
        ])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.gen.rows - self.produced;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CarRows {}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::detect_violations;

    #[test]
    fn clean_data_satisfies_rules() {
        let ds = CarGenerator::default().with_rows(600).generate();
        assert!(detect_violations(&ds, &CarGenerator::rules()).is_empty());
    }

    #[test]
    fn doors_follow_type_for_acura() {
        let ds = CarGenerator::default().with_rows(400).generate();
        let make = ds.schema().attr_id("Make").unwrap();
        let typ = ds.schema().attr_id("Type").unwrap();
        let doors = ds.schema().attr_id("Doors").unwrap();
        for t in ds.tuples() {
            if t.value(make) == "acura" {
                assert_eq!(t.value(doors), CarGenerator::acura_doors_for(t.value(typ)));
            }
        }
    }

    #[test]
    fn car_is_sparser_than_hai() {
        // Sparsity in the paper's sense: the rule-relevant groups of CAR have
        // fewer supporting tuples than those of HAI, so co-occurrence models
        // have less evidence per value.  Compare tuples per FD reason group.
        let car = CarGenerator::default().with_rows(1000).generate();
        let hai = crate::HaiGenerator::default().with_rows(1000).generate();
        let car_groups = car
            .cooccurrence(
                car.schema().attr_id("Model").unwrap(),
                car.schema().attr_id("Type").unwrap(),
            )
            .len();
        let hai_groups = hai
            .domain(hai.schema().attr_id("ProviderID").unwrap())
            .len();
        let car_density = 1000.0 / car_groups as f64;
        let hai_density = 1000.0 / hai_groups as f64;
        assert!(
            car_density < hai_density,
            "CAR ({car_density:.1} tuples/group) should be sparser than HAI ({hai_density:.1})"
        );
    }

    #[test]
    fn model_determines_make() {
        let ds = CarGenerator::default().with_rows(500).generate();
        let model = ds.schema().attr_id("Model").unwrap();
        let make = ds.schema().attr_id("Make").unwrap();
        let mut map = std::collections::HashMap::new();
        for t in ds.tuples() {
            let prev = map.insert(t.value(model).to_string(), t.value(make).to_string());
            if let Some(prev) = prev {
                assert_eq!(prev, t.value(make));
            }
        }
    }
}
