//! Synthetic HAI (healthcare-associated infections) dataset.
//!
//! The real HAI dataset lists hospital measures: each row pairs a provider
//! (hospital) with one quality measure.  The rule set of Table 4 constrains
//! the provider-side attributes (phone number, ZIP code, city, state, county)
//! and the measure dictionary (MeasureID → MeasureName), which is why HAI is
//! the paper's "dense" dataset — few distinct providers and measures, each
//! repeated across many rows.

use crate::make_dirty;
use crate::stream::{DirtyRowStream, StreamColumn};
use dataset::{Dataset, DirtyDataset, Schema};
use rand::prelude::*;
use rand::rngs::StdRng;
use rules::{parse_rules, RuleSet};

/// Generator for the synthetic HAI dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct HaiGenerator {
    /// Number of distinct providers (hospitals).
    pub providers: usize,
    /// Number of distinct quality measures.
    pub measures: usize,
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HaiGenerator {
    fn default() -> Self {
        HaiGenerator {
            providers: 60,
            measures: 25,
            rows: 2_000,
            seed: 17,
        }
    }
}

const STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD",
];

const CITY_STEMS: &[&str] = &[
    "DOTHAN",
    "BOAZ",
    "BIRMINGHAM",
    "HUNTSVILLE",
    "MOBILE",
    "MONTGOMERY",
    "TUSCALOOSA",
    "AUBURN",
    "DECATUR",
    "FLORENCE",
    "GADSDEN",
    "HOOVER",
    "MADISON",
    "OPELIKA",
    "SELMA",
    "TROY",
];

const COUNTY_STEMS: &[&str] = &[
    "HOUSTON",
    "MARSHALL",
    "JEFFERSON",
    "MADISON",
    "MOBILE",
    "MONTGOMERY",
    "TUSCALOOSA",
    "LEE",
    "MORGAN",
    "LAUDERDALE",
    "ETOWAH",
    "SHELBY",
    "LIMESTONE",
    "DALLAS",
    "PIKE",
    "BALDWIN",
];

const MEASURE_STEMS: &[&str] = &[
    "CLABSI",
    "CAUTI",
    "SSI_COLON",
    "SSI_HYST",
    "MRSA",
    "CDIFF",
    "PSI_90",
    "HAI_1",
    "HAI_2",
    "HAI_3",
    "HAI_4",
    "HAI_5",
    "HAI_6",
    "READM_30",
    "MORT_30",
];

impl HaiGenerator {
    /// Set the number of rows.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Set the number of distinct providers.
    pub fn with_providers(mut self, providers: usize) -> Self {
        self.providers = providers;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The HAI rule set of Table 4.
    pub fn rules() -> RuleSet {
        parse_rules(
            "FD: PhoneNumber -> ZIPCode\n\
             FD: PhoneNumber -> State\n\
             FD: ZIPCode -> City\n\
             FD: MeasureID -> MeasureName\n\
             FD: ZIPCode -> CountyName\n\
             FD: ProviderID -> City, PhoneNumber\n\
             DC: PhoneNumber = PhoneNumber, State != State",
        )
        .expect("the HAI rule set is well-formed")
    }

    /// The HAI schema.
    pub fn schema() -> Schema {
        Schema::new(&[
            "ProviderID",
            "HospitalName",
            "City",
            "State",
            "ZIPCode",
            "CountyName",
            "PhoneNumber",
            "MeasureID",
            "MeasureName",
            "Score",
        ])
    }

    // Provider master data as pure functions of the provider index, so the
    // row stream carries no provider table.  The fields are internally
    // consistent so that every FD holds: each provider has one
    // city/state/zip/county/phone, each zip maps to one city and county,
    // each phone to one zip/state.

    /// Provider id of the `i`-th provider.
    fn provider_id(i: usize) -> String {
        format!("P{:05}", 10_000 + i)
    }

    /// Hospital name of the `i`-th provider.
    fn provider_name(i: usize) -> String {
        format!("{} MEDICAL CENTER {}", CITY_STEMS[i % CITY_STEMS.len()], i)
    }

    /// City of the `i`-th provider — unique per provider so ZIP→City cannot
    /// clash across providers sharing a stem.
    fn provider_city(i: usize) -> String {
        format!(
            "{}{}",
            CITY_STEMS[i % CITY_STEMS.len()],
            i / CITY_STEMS.len()
        )
    }

    /// State of the `i`-th provider.
    fn provider_state(i: usize) -> &'static str {
        STATES[i % STATES.len()]
    }

    /// ZIP code of the `i`-th provider.
    fn provider_zip(i: usize) -> String {
        format!("{:05}", 35000 + i)
    }

    /// County of the `i`-th provider.
    fn provider_county(i: usize) -> String {
        format!(
            "{}{}",
            COUNTY_STEMS[i % COUNTY_STEMS.len()],
            i / COUNTY_STEMS.len()
        )
    }

    /// Phone number of the `i`-th provider.
    fn provider_phone(i: usize) -> String {
        format!("{:010}", 2_560_000_000u64 + i as u64 * 97)
    }

    /// Measure id of the `i`-th measure (MeasureID → MeasureName dictionary).
    fn measure_id(i: usize) -> String {
        format!("M{:04}", 100 + i)
    }

    /// Measure name of the `i`-th measure.
    fn measure_name(i: usize) -> String {
        format!(
            "{}_{}_RATE",
            MEASURE_STEMS[i % MEASURE_STEMS.len()],
            i / MEASURE_STEMS.len()
        )
    }

    /// Stream the clean rows one at a time.  [`HaiGenerator::generate`]
    /// drains this same stream, so streamed rows are byte-identical to the
    /// materialised dataset whatever the consumer's batch size.
    pub fn row_stream(&self) -> HaiRows {
        HaiRows {
            rng: StdRng::seed_from_u64(self.seed),
            providers: self.providers.max(1),
            measures: self.measures.max(1),
            rows: self.rows,
            produced: 0,
        }
    }

    /// Generate the clean dataset by materialising the row stream.
    pub fn generate(&self) -> Dataset {
        let mut ds = Dataset::with_capacity(Self::schema(), self.rows);
        for row in self.row_stream() {
            ds.push_row(row).expect("row matches the HAI schema");
        }
        ds
    }

    /// Generate a clean dataset and corrupt it per the paper's protocol.
    pub fn dirty(&self, error_rate: f64, replacement_ratio: f64, seed: u64) -> DirtyDataset {
        let clean = self.generate();
        make_dirty(&clean, &Self::rules(), error_rate, replacement_ratio, seed)
    }

    /// Stream dirty rows: the clean row stream with every rule-related cell
    /// corrupted by the per-cell streaming protocol (deterministic in `seed`,
    /// batch-size independent).  Replacement errors draw the corresponding
    /// field of another provider (or another measure for the dictionary
    /// attributes), mirroring the batch injector's same-domain draws.
    pub fn dirty_row_stream(
        &self,
        error_rate: f64,
        replacement_ratio: f64,
        seed: u64,
    ) -> DirtyRowStream<HaiRows> {
        let p = self.providers.max(1) as u64;
        let m = self.measures.max(1) as u64;
        let provider_col = |col: usize, f: fn(usize) -> String| {
            StreamColumn::new(col, Box::new(move |draw: u64| f((draw % p) as usize)))
        };
        DirtyRowStream::new(
            self.row_stream(),
            vec![
                provider_col(0, Self::provider_id),
                provider_col(2, Self::provider_city),
                StreamColumn::new(
                    3,
                    Box::new(move |draw| Self::provider_state((draw % p) as usize).to_string()),
                ),
                provider_col(4, Self::provider_zip),
                provider_col(5, Self::provider_county),
                provider_col(6, Self::provider_phone),
                StreamColumn::new(
                    7,
                    Box::new(move |draw| Self::measure_id((draw % m) as usize)),
                ),
                StreamColumn::new(
                    8,
                    Box::new(move |draw| Self::measure_name((draw % m) as usize)),
                ),
            ],
            error_rate,
            replacement_ratio,
            seed,
        )
    }
}

/// Iterator over the clean HAI rows, in row order (see
/// [`HaiGenerator::row_stream`]).
#[derive(Debug, Clone)]
pub struct HaiRows {
    rng: StdRng,
    providers: usize,
    measures: usize,
    rows: usize,
    produced: usize,
}

impl Iterator for HaiRows {
    type Item = Vec<String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.produced >= self.rows {
            return None;
        }
        self.produced += 1;
        let p = self.rng.gen_range(0..self.providers);
        let m = self.rng.gen_range(0..self.measures);
        let score = format!("{:.3}", self.rng.gen_range(0.0..5.0));
        Some(vec![
            HaiGenerator::provider_id(p),
            HaiGenerator::provider_name(p),
            HaiGenerator::provider_city(p),
            HaiGenerator::provider_state(p).to_string(),
            HaiGenerator::provider_zip(p),
            HaiGenerator::provider_county(p),
            HaiGenerator::provider_phone(p),
            HaiGenerator::measure_id(m),
            HaiGenerator::measure_name(m),
            score,
        ])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.rows - self.produced;
        (left, Some(left))
    }
}

impl ExactSizeIterator for HaiRows {}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::detect_violations;

    #[test]
    fn schema_covers_every_rule_attribute() {
        let ds = HaiGenerator::default().with_rows(10).generate();
        let rules = HaiGenerator::rules();
        assert!(rules.is_valid_for(ds.schema()));
        assert_eq!(rules.len(), 7);
    }

    #[test]
    fn clean_data_satisfies_all_rules() {
        let ds = HaiGenerator::default().with_rows(500).generate();
        assert!(detect_violations(&ds, &HaiGenerator::rules()).is_empty());
    }

    #[test]
    fn dense_repetition_of_providers() {
        let gen = HaiGenerator::default().with_rows(1000).with_providers(20);
        let ds = gen.generate();
        let provider_attr = ds.schema().attr_id("ProviderID").unwrap();
        let distinct = ds.domain(provider_attr).len();
        assert!(distinct <= 20);
        // Dense: each provider appears many times on average.
        assert!(ds.len() / distinct >= 10);
    }

    #[test]
    fn dirty_respects_requested_rate() {
        let gen = HaiGenerator::default().with_rows(400);
        let dirty = gen.dirty(0.10, 0.5, 3);
        assert!(dirty.error_count() > 0);
        // Rate is defined over rule-related cells only; just check bounds.
        let rule_attrs = HaiGenerator::rules().constrained_attrs().len();
        let eligible = dirty.dirty.len() * rule_attrs;
        assert!(dirty.error_count() <= (eligible as f64 * 0.10).round() as usize);
    }
}
