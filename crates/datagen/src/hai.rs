//! Synthetic HAI (healthcare-associated infections) dataset.
//!
//! The real HAI dataset lists hospital measures: each row pairs a provider
//! (hospital) with one quality measure.  The rule set of Table 4 constrains
//! the provider-side attributes (phone number, ZIP code, city, state, county)
//! and the measure dictionary (MeasureID → MeasureName), which is why HAI is
//! the paper's "dense" dataset — few distinct providers and measures, each
//! repeated across many rows.

use crate::make_dirty;
use dataset::{Dataset, DirtyDataset, Schema};
use rand::prelude::*;
use rand::rngs::StdRng;
use rules::{parse_rules, RuleSet};

/// Generator for the synthetic HAI dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct HaiGenerator {
    /// Number of distinct providers (hospitals).
    pub providers: usize,
    /// Number of distinct quality measures.
    pub measures: usize,
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HaiGenerator {
    fn default() -> Self {
        HaiGenerator {
            providers: 60,
            measures: 25,
            rows: 2_000,
            seed: 17,
        }
    }
}

const STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD",
];

const CITY_STEMS: &[&str] = &[
    "DOTHAN",
    "BOAZ",
    "BIRMINGHAM",
    "HUNTSVILLE",
    "MOBILE",
    "MONTGOMERY",
    "TUSCALOOSA",
    "AUBURN",
    "DECATUR",
    "FLORENCE",
    "GADSDEN",
    "HOOVER",
    "MADISON",
    "OPELIKA",
    "SELMA",
    "TROY",
];

const COUNTY_STEMS: &[&str] = &[
    "HOUSTON",
    "MARSHALL",
    "JEFFERSON",
    "MADISON",
    "MOBILE",
    "MONTGOMERY",
    "TUSCALOOSA",
    "LEE",
    "MORGAN",
    "LAUDERDALE",
    "ETOWAH",
    "SHELBY",
    "LIMESTONE",
    "DALLAS",
    "PIKE",
    "BALDWIN",
];

const MEASURE_STEMS: &[&str] = &[
    "CLABSI",
    "CAUTI",
    "SSI_COLON",
    "SSI_HYST",
    "MRSA",
    "CDIFF",
    "PSI_90",
    "HAI_1",
    "HAI_2",
    "HAI_3",
    "HAI_4",
    "HAI_5",
    "HAI_6",
    "READM_30",
    "MORT_30",
];

impl HaiGenerator {
    /// Set the number of rows.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Set the number of distinct providers.
    pub fn with_providers(mut self, providers: usize) -> Self {
        self.providers = providers;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The HAI rule set of Table 4.
    pub fn rules() -> RuleSet {
        parse_rules(
            "FD: PhoneNumber -> ZIPCode\n\
             FD: PhoneNumber -> State\n\
             FD: ZIPCode -> City\n\
             FD: MeasureID -> MeasureName\n\
             FD: ZIPCode -> CountyName\n\
             FD: ProviderID -> City, PhoneNumber\n\
             DC: PhoneNumber = PhoneNumber, State != State",
        )
        .expect("the HAI rule set is well-formed")
    }

    /// Generate the clean dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let schema = Schema::new(&[
            "ProviderID",
            "HospitalName",
            "City",
            "State",
            "ZIPCode",
            "CountyName",
            "PhoneNumber",
            "MeasureID",
            "MeasureName",
            "Score",
        ]);

        // Provider master data, internally consistent so that every FD holds:
        // each provider has one city/state/zip/county/phone, each zip maps to
        // one city and county, each phone to one zip/state.
        struct Provider {
            id: String,
            name: String,
            city: String,
            state: String,
            zip: String,
            county: String,
            phone: String,
        }
        let providers: Vec<Provider> = (0..self.providers.max(1))
            .map(|i| {
                let state = STATES[i % STATES.len()].to_string();
                let city_stem = CITY_STEMS[i % CITY_STEMS.len()];
                // Make the city unique per provider so ZIP→City cannot clash
                // across providers sharing a stem.
                let city = format!("{}{}", city_stem, i / CITY_STEMS.len());
                let county = format!(
                    "{}{}",
                    COUNTY_STEMS[i % COUNTY_STEMS.len()],
                    i / COUNTY_STEMS.len()
                );
                let zip = format!("{:05}", 35000 + i);
                let phone = format!("{:010}", 2_560_000_000u64 + i as u64 * 97);
                Provider {
                    id: format!("P{:05}", 10_000 + i),
                    name: format!("{} MEDICAL CENTER {}", city_stem, i),
                    city,
                    state,
                    zip,
                    county,
                    phone,
                }
            })
            .collect();

        // Measure dictionary: MeasureID → MeasureName.
        let measures: Vec<(String, String)> = (0..self.measures.max(1))
            .map(|i| {
                let stem = MEASURE_STEMS[i % MEASURE_STEMS.len()];
                (
                    format!("M{:04}", 100 + i),
                    format!("{}_{}_RATE", stem, i / MEASURE_STEMS.len()),
                )
            })
            .collect();

        let mut ds = Dataset::with_capacity(schema, self.rows);
        for _ in 0..self.rows {
            let p = &providers[rng.gen_range(0..providers.len())];
            let (mid, mname) = &measures[rng.gen_range(0..measures.len())];
            let score = format!("{:.3}", rng.gen_range(0.0..5.0));
            ds.push_row(vec![
                p.id.clone(),
                p.name.clone(),
                p.city.clone(),
                p.state.clone(),
                p.zip.clone(),
                p.county.clone(),
                p.phone.clone(),
                mid.clone(),
                mname.clone(),
                score,
            ])
            .expect("row matches the HAI schema");
        }
        ds
    }

    /// Generate a clean dataset and corrupt it per the paper's protocol.
    pub fn dirty(&self, error_rate: f64, replacement_ratio: f64, seed: u64) -> DirtyDataset {
        let clean = self.generate();
        make_dirty(&clean, &Self::rules(), error_rate, replacement_ratio, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::detect_violations;

    #[test]
    fn schema_covers_every_rule_attribute() {
        let ds = HaiGenerator::default().with_rows(10).generate();
        let rules = HaiGenerator::rules();
        assert!(rules.is_valid_for(ds.schema()));
        assert_eq!(rules.len(), 7);
    }

    #[test]
    fn clean_data_satisfies_all_rules() {
        let ds = HaiGenerator::default().with_rows(500).generate();
        assert!(detect_violations(&ds, &HaiGenerator::rules()).is_empty());
    }

    #[test]
    fn dense_repetition_of_providers() {
        let gen = HaiGenerator::default().with_rows(1000).with_providers(20);
        let ds = gen.generate();
        let provider_attr = ds.schema().attr_id("ProviderID").unwrap();
        let distinct = ds.domain(provider_attr).len();
        assert!(distinct <= 20);
        // Dense: each provider appears many times on average.
        assert!(ds.len() / distinct >= 10);
    }

    #[test]
    fn dirty_respects_requested_rate() {
        let gen = HaiGenerator::default().with_rows(400);
        let dirty = gen.dirty(0.10, 0.5, 3);
        assert!(dirty.error_count() > 0);
        // Rate is defined over rule-related cells only; just check bounds.
        let rule_attrs = HaiGenerator::rules().constrained_attrs().len();
        let eligible = dirty.dirty.len() * rule_attrs;
        assert!(dirty.error_count() <= (eligible as f64 * 0.10).round() as usize);
    }
}
