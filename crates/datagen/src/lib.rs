//! Synthetic dataset generators standing in for the paper's evaluation
//! datasets.
//!
//! The paper evaluates on two real datasets — **HAI** (healthcare-associated
//! infections, 231 k tuples) and **CAR** (used-vehicle listings, 31 k tuples)
//! — plus a synthetic **TPC-H** join (6 M tuples).  None of the real data can
//! be redistributed here, so this crate generates schema-faithful synthetic
//! stand-ins:
//!
//! * the schemas match the attributes referenced by the paper's Table 4 rule
//!   sets, and the generators enforce those rules on the clean data, so the
//!   constraint structure (what determines what, how selective each rule is)
//!   is preserved;
//! * attribute cardinalities and co-occurrence skew approximate the real
//!   sources — HAI is dense (few hospitals × many measures), CAR is sparse
//!   (many models, many free-text-ish attribute values), TPC-H is a
//!   wide join keyed by customer;
//! * generation is fully seeded, so every experiment is reproducible.
//!
//! Each generator exposes the matching [`rules::RuleSet`] (Table 4) and a
//! convenience [`dirty`](HaiGenerator::dirty) method that injects errors on
//! the rule-related attributes following the paper's protocol.

pub mod car;
pub mod hai;
pub mod stream;
pub mod tpch;

pub use car::CarGenerator;
pub use hai::HaiGenerator;
pub use stream::{row_batches, BatchStream};
pub use tpch::TpchGenerator;

use dataset::{AttrId, Dataset, DirtyDataset, ErrorInjector, ErrorSpec};
use rules::RuleSet;

/// Shared helper: corrupt `clean` on the attributes constrained by `rules`,
/// at `error_rate`, with `replacement_ratio` (the paper's Rret) and `seed`.
pub fn make_dirty(
    clean: &Dataset,
    rules: &RuleSet,
    error_rate: f64,
    replacement_ratio: f64,
    seed: u64,
) -> DirtyDataset {
    let attrs: Vec<AttrId> = rules
        .constrained_attrs()
        .iter()
        .filter_map(|a| clean.schema().attr_id(a))
        .collect();
    let spec = ErrorSpec::new(error_rate, seed)
        .with_replacement_ratio(replacement_ratio)
        .on_attributes(attrs);
    ErrorInjector::new(spec).inject(clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::detect_violations;

    #[test]
    fn all_generators_produce_rule_consistent_clean_data() {
        let hai = HaiGenerator::default().with_rows(300).generate();
        assert!(detect_violations(&hai, &HaiGenerator::rules()).is_empty());

        let car = CarGenerator::default().with_rows(300).generate();
        assert!(detect_violations(&car, &CarGenerator::rules()).is_empty());

        let tpch = TpchGenerator::default().with_rows(300).generate();
        assert!(detect_violations(&tpch, &TpchGenerator::rules()).is_empty());
    }

    #[test]
    fn make_dirty_restricts_to_rule_attributes() {
        let clean = HaiGenerator::default().with_rows(200).generate();
        let rules = HaiGenerator::rules();
        let dirty = make_dirty(&clean, &rules, 0.1, 0.5, 7);
        let constrained = rules.constrained_attrs();
        for e in &dirty.errors {
            let name = clean.schema().attr_name(e.cell.attr).to_string();
            assert!(
                constrained.contains(&name),
                "error injected outside rule attributes: {name}"
            );
        }
        assert!(dirty.error_count() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CarGenerator::default()
            .with_rows(150)
            .with_seed(3)
            .generate();
        let b = CarGenerator::default()
            .with_rows(150)
            .with_seed(3)
            .generate();
        assert_eq!(a, b);
        let c = CarGenerator::default()
            .with_rows(150)
            .with_seed(4)
            .generate();
        assert_ne!(a, c);
    }
}
