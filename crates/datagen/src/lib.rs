//! Synthetic dataset generators standing in for the paper's evaluation
//! datasets.
//!
//! The paper evaluates on two real datasets — **HAI** (healthcare-associated
//! infections, 231 k tuples) and **CAR** (used-vehicle listings, 31 k tuples)
//! — plus a synthetic **TPC-H** join (6 M tuples).  None of the real data can
//! be redistributed here, so this crate generates schema-faithful synthetic
//! stand-ins:
//!
//! * the schemas match the attributes referenced by the paper's Table 4 rule
//!   sets, and the generators enforce those rules on the clean data, so the
//!   constraint structure (what determines what, how selective each rule is)
//!   is preserved;
//! * attribute cardinalities and co-occurrence skew approximate the real
//!   sources — HAI is dense (few hospitals × many measures), CAR is sparse
//!   (many models, many free-text-ish attribute values), TPC-H is a
//!   wide join keyed by customer;
//! * generation is fully seeded, so every experiment is reproducible.
//!
//! Each generator exposes the matching [`rules::RuleSet`] (Table 4) and a
//! convenience [`dirty`](HaiGenerator::dirty) method that injects errors on
//! the rule-related attributes following the paper's protocol.

pub mod car;
pub mod hai;
pub mod stream;
pub mod tpch;

pub use car::{CarGenerator, CarRows};
pub use hai::{HaiGenerator, HaiRows};
pub use stream::{batched, row_batches, BatchStream, Batched, DirtyRowStream, StreamColumn};
pub use tpch::{TpchGenerator, TpchRows};

use dataset::{AttrId, Dataset, DirtyDataset, ErrorInjector, ErrorSpec};
use rules::RuleSet;

/// Shared helper: corrupt `clean` on the attributes constrained by `rules`,
/// at `error_rate`, with `replacement_ratio` (the paper's Rret) and `seed`.
pub fn make_dirty(
    clean: &Dataset,
    rules: &RuleSet,
    error_rate: f64,
    replacement_ratio: f64,
    seed: u64,
) -> DirtyDataset {
    let attrs: Vec<AttrId> = rules
        .constrained_attrs()
        .iter()
        .filter_map(|a| clean.schema().attr_id(a))
        .collect();
    let spec = ErrorSpec::new(error_rate, seed)
        .with_replacement_ratio(replacement_ratio)
        .on_attributes(attrs);
    ErrorInjector::new(spec).inject(clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::detect_violations;

    #[test]
    fn all_generators_produce_rule_consistent_clean_data() {
        let hai = HaiGenerator::default().with_rows(300).generate();
        assert!(detect_violations(&hai, &HaiGenerator::rules()).is_empty());

        let car = CarGenerator::default().with_rows(300).generate();
        assert!(detect_violations(&car, &CarGenerator::rules()).is_empty());

        let tpch = TpchGenerator::default().with_rows(300).generate();
        assert!(detect_violations(&tpch, &TpchGenerator::rules()).is_empty());
    }

    #[test]
    fn make_dirty_restricts_to_rule_attributes() {
        let clean = HaiGenerator::default().with_rows(200).generate();
        let rules = HaiGenerator::rules();
        let dirty = make_dirty(&clean, &rules, 0.1, 0.5, 7);
        let constrained = rules.constrained_attrs();
        for e in &dirty.errors {
            let name = clean.schema().attr_name(e.cell.attr).to_string();
            assert!(
                constrained.contains(&name),
                "error injected outside rule attributes: {name}"
            );
        }
        assert!(dirty.error_count() > 0);
    }

    #[test]
    fn row_streams_match_the_materialised_datasets() {
        // The generators drain their own row streams, so an external consumer
        // of `row_stream()` must see exactly the rows of `generate()` — this
        // is what makes streamed ingest byte-identical to batch ingest.
        let hai = HaiGenerator::default().with_rows(120);
        let car = CarGenerator::default().with_rows(120);
        let tpch = TpchGenerator::default().with_rows(120);
        let hai_ds = hai.generate();
        let car_ds = car.generate();
        let tpch_ds = tpch.generate();
        for (i, row) in hai.row_stream().enumerate() {
            assert_eq!(row, hai_ds.tuple(dataset::TupleId(i)).owned_values());
        }
        for (i, row) in car.row_stream().enumerate() {
            assert_eq!(row, car_ds.tuple(dataset::TupleId(i)).owned_values());
        }
        for (i, row) in tpch.row_stream().enumerate() {
            assert_eq!(row, tpch_ds.tuple(dataset::TupleId(i)).owned_values());
        }
    }

    #[test]
    fn dirty_streams_are_batch_size_independent() {
        // Per-cell decisions depend only on (seed, row, column), so however
        // the stream is batched, the same seed yields the same dirty rows.
        let gen = TpchGenerator::default().with_rows(500).with_customers(40);
        let whole: Vec<Vec<String>> = gen.dirty_row_stream(0.08, 0.5, 9).collect();
        for batch_size in [1usize, 7, 128, 1000] {
            let rebatched: Vec<Vec<String>> =
                batched(gen.dirty_row_stream(0.08, 0.5, 9), batch_size)
                    .flatten()
                    .collect();
            assert_eq!(
                whole, rebatched,
                "batch size {batch_size} changed the stream"
            );
        }
        // A different seed yields a different corruption pattern.
        let reseeded: Vec<Vec<String>> = gen.dirty_row_stream(0.08, 0.5, 10).collect();
        assert_ne!(whole, reseeded);
    }

    #[test]
    fn row_streams_yield_exact_counts_at_rung_boundaries() {
        // The scale ladder trusts `row_stream()` to produce exactly the
        // requested number of rows at every rung.
        for rows in [0usize, 1, 99, 10_000] {
            assert_eq!(
                TpchGenerator::default()
                    .with_rows(rows)
                    .row_stream()
                    .count(),
                rows
            );
            assert_eq!(
                HaiGenerator::default().with_rows(rows).row_stream().count(),
                rows
            );
            assert_eq!(
                CarGenerator::default().with_rows(rows).row_stream().count(),
                rows
            );
        }
        // Batching covers every row exactly once: ceil-division batch count,
        // full batches except possibly the last.
        let sizes: Vec<usize> = batched(
            TpchGenerator::default().with_rows(10_000).row_stream(),
            4096,
        )
        .map(|b| b.len())
        .collect();
        assert_eq!(sizes, vec![4096, 4096, 1808]);
    }

    #[test]
    fn dirty_stream_rate_is_within_tolerance() {
        // The streaming protocol corrupts each eligible cell independently;
        // over tens of thousands of cells the achieved rate concentrates
        // around the requested one.
        let gen = TpchGenerator::default()
            .with_rows(20_000)
            .with_customers(800);
        let mut stream = gen.dirty_row_stream(0.05, 0.5, 3);
        let mut corrupted = 0usize;
        let clean = gen.row_stream();
        for (dirty, clean) in (&mut stream).zip(clean) {
            corrupted += dirty.iter().zip(&clean).filter(|(d, c)| d != c).count();
        }
        let eligible = stream.eligible_cells();
        assert_eq!(eligible, 40_000, "2 rule-related cells per row");
        let achieved = stream.injected_errors() as f64 / eligible as f64;
        assert!(
            (0.04..=0.06).contains(&achieved),
            "achieved rate {achieved} strays from the requested 0.05"
        );
        // Injected-error accounting matches the observable cell diffs.
        assert_eq!(corrupted as u64, stream.injected_errors());
        assert!(stream.typo_count() > 0 && stream.replacement_count() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CarGenerator::default()
            .with_rows(150)
            .with_seed(3)
            .generate();
        let b = CarGenerator::default()
            .with_rows(150)
            .with_seed(3)
            .generate();
        assert_eq!(a, b);
        let c = CarGenerator::default()
            .with_rows(150)
            .with_seed(4)
            .generate();
        assert_ne!(a, c);
    }
}
