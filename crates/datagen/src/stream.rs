//! Streaming ingest helpers: micro-batch slicing of generated datasets plus
//! the paper-scale row-producer plumbing.
//!
//! Two generations of helpers live here:
//!
//! * [`BatchStream`] / [`row_batches`] slice an already-materialised
//!   [`Dataset`] into contiguous row batches (the original micro-batch
//!   helpers — fine up to a few ten thousand rows).
//! * The **streaming datagen** layer ([`batched`], [`DirtyRowStream`],
//!   [`StreamColumn`]) works on *row iterators* instead: each generator
//!   exposes a `row_stream()` producing rows one at a time from formulaic
//!   master data, so 10⁵–10⁷ rows can be fed into a cleaning session
//!   batch-by-batch without ever holding all strings in memory.
//!
//! The streaming error injector corrupts cells with an independent per-cell
//! decision derived from `(seed, row, column)` alone, so the dirty stream is
//! deterministic and **batch-size independent**: the same seed yields the
//! same rows whether they are drawn one at a time or in 10⁶-row chunks.
//! (The batch-mode [`crate::make_dirty`] instead spends a global error
//! budget over a shuffled cell list — a protocol that inherently needs the
//! whole relation; the streaming protocol converges to the same rate by the
//! law of large numbers and is tested to stay within tolerance.)

use dataset::{Dataset, TupleId};

/// SplitMix64 finalizer: the stateless 64-bit mixer behind every per-cell
/// corruption decision.  Good avalanche behaviour means each `(seed, row,
/// column, draw)` tuple yields an independent-looking value.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a mixed 64-bit draw to the unit interval `[0, 1)` (53 mantissa bits).
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Batch adaptor over any row iterator: yields `Vec`s of up to `batch_size`
/// rows until the underlying iterator is exhausted.  The streaming analogue
/// of [`BatchStream`] for producers that never materialise a [`Dataset`].
#[derive(Debug, Clone)]
pub struct Batched<I> {
    inner: I,
    batch_size: usize,
}

impl<I: Iterator<Item = Vec<String>>> Iterator for Batched<I> {
    type Item = Vec<Vec<String>>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut batch = Vec::with_capacity(self.batch_size);
        for row in self.inner.by_ref() {
            batch.push(row);
            if batch.len() == self.batch_size {
                break;
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

/// Group `rows` into batches of `batch_size` (the last batch may be smaller;
/// a batch size of zero is treated as one).
pub fn batched<I: Iterator<Item = Vec<String>>>(rows: I, batch_size: usize) -> Batched<I> {
    Batched {
        inner: rows,
        batch_size: batch_size.max(1),
    }
}

/// One corruptible column of a streaming generator: the column index plus a
/// formulaic domain sampler used for replacement errors (maps a random draw
/// to *some* value of the attribute's domain, mirroring the batch injector's
/// "replace with another value from the same domain").
pub struct StreamColumn {
    pub(crate) col: usize,
    pub(crate) sample: Box<dyn Fn(u64) -> String + Send>,
}

impl StreamColumn {
    /// A corruptible column with its domain sampler.
    pub fn new(col: usize, sample: Box<dyn Fn(u64) -> String + Send>) -> Self {
        StreamColumn { col, sample }
    }
}

impl std::fmt::Debug for StreamColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamColumn")
            .field("col", &self.col)
            .finish_non_exhaustive()
    }
}

/// Streaming error injector: wraps a clean row iterator and corrupts each
/// eligible cell independently with probability `error_rate`, split between
/// typos and domain replacements by `replacement_ratio` (the paper's Rret).
///
/// Every decision is a pure function of `(seed, row index, column)` via
/// SplitMix64, so the dirty stream is deterministic, independent of batch
/// size, and needs O(1) memory.  Counters record how many errors were
/// actually injected so callers can report (and tests can bound) the
/// achieved rate.
pub struct DirtyRowStream<I> {
    inner: I,
    columns: Vec<StreamColumn>,
    error_rate: f64,
    replacement_ratio: f64,
    seed: u64,
    row: u64,
    eligible_cells: u64,
    typos: u64,
    replacements: u64,
}

impl<I> DirtyRowStream<I> {
    /// Wrap `inner`, corrupting the given columns at `error_rate` with the
    /// typo/replacement split `replacement_ratio`, all derived from `seed`.
    pub fn new(
        inner: I,
        columns: Vec<StreamColumn>,
        error_rate: f64,
        replacement_ratio: f64,
        seed: u64,
    ) -> Self {
        DirtyRowStream {
            inner,
            columns,
            error_rate: error_rate.clamp(0.0, 1.0),
            replacement_ratio: replacement_ratio.clamp(0.0, 1.0),
            seed,
            row: 0,
            eligible_cells: 0,
            typos: 0,
            replacements: 0,
        }
    }

    /// Number of errors injected so far (typos + replacements).
    pub fn injected_errors(&self) -> u64 {
        self.typos + self.replacements
    }

    /// Typos injected so far.
    pub fn typo_count(&self) -> u64 {
        self.typos
    }

    /// Replacement errors injected so far.
    pub fn replacement_count(&self) -> u64 {
        self.replacements
    }

    /// Eligible (corruptible) cells seen so far — the achieved error rate is
    /// [`DirtyRowStream::injected_errors`] over this.
    pub fn eligible_cells(&self) -> u64 {
        self.eligible_cells
    }

    /// Corrupt one cell in place; returns whether an error was recorded.
    fn corrupt(&mut self, column: usize, value: &mut String) -> bool {
        let StreamColumn { col, sample } = &self.columns[column];
        let cell = mix64(self.seed ^ mix64(self.row).rotate_left(17) ^ (*col as u64) << 1);
        if unit(mix64(cell ^ 0x01)) >= self.error_rate {
            return false;
        }
        let make_replacement = unit(mix64(cell ^ 0x02)) < self.replacement_ratio;
        if make_replacement {
            // Two draws at a different value of the domain; a formulaic
            // domain occasionally resamples the original, in which case we
            // fall through to a typo so the error budget is still spent.
            for attempt in [0x03u64, 0x04] {
                let candidate = sample(mix64(cell ^ attempt));
                if candidate != *value {
                    *value = candidate;
                    self.replacements += 1;
                    return true;
                }
            }
        }
        // Typo: delete one random character of the value.
        let chars: Vec<char> = value.chars().collect();
        if chars.is_empty() {
            return false;
        }
        let drop = (mix64(cell ^ 0x05) % chars.len() as u64) as usize;
        *value = chars
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, c)| *c)
            .collect();
        self.typos += 1;
        true
    }
}

impl<I: Iterator<Item = Vec<String>>> Iterator for DirtyRowStream<I> {
    type Item = Vec<String>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut row = self.inner.next()?;
        for c in 0..self.columns.len() {
            self.eligible_cells += 1;
            let mut value = std::mem::take(&mut row[self.columns[c].col]);
            self.corrupt(c, &mut value);
            row[self.columns[c].col] = value;
        }
        self.row += 1;
        Some(row)
    }
}

/// An iterator over contiguous micro-batches of string rows of a dataset,
/// in row order.  Every row appears in exactly one batch.
#[derive(Debug, Clone)]
pub struct BatchStream<'a> {
    ds: &'a Dataset,
    batch_size: usize,
    next: usize,
}

impl<'a> BatchStream<'a> {
    /// Stream `ds` in batches of `batch_size` rows (the last batch may be
    /// smaller).  A batch size of zero is treated as one.
    pub fn new(ds: &'a Dataset, batch_size: usize) -> Self {
        BatchStream {
            ds,
            batch_size: batch_size.max(1),
            next: 0,
        }
    }

    /// Number of batches the stream will yield in total.
    pub fn batch_count(&self) -> usize {
        self.ds.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchStream<'_> {
    type Item = Vec<Vec<String>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.ds.len() {
            return None;
        }
        let upto = (self.next + self.batch_size).min(self.ds.len());
        let batch: Vec<Vec<String>> = (self.next..upto)
            .map(|t| self.ds.tuple(TupleId(t)).owned_values())
            .collect();
        self.next = upto;
        Some(batch)
    }
}

/// Split `ds` into (at most) `batches` contiguous micro-batches of string
/// rows, covering every row in order.  Convenience over [`BatchStream`] for
/// "ingest this dataset in N batches" scenarios.
pub fn row_batches(ds: &Dataset, batches: usize) -> Vec<Vec<Vec<String>>> {
    if ds.is_empty() {
        return Vec::new();
    }
    let size = ds.len().div_ceil(batches.max(1));
    BatchStream::new(ds, size).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HaiGenerator;
    use dataset::Schema;

    #[test]
    fn batches_cover_every_row_in_order() {
        let ds = HaiGenerator::default().with_rows(103).generate();
        let batches = row_batches(&ds, 8);
        assert_eq!(batches.len(), 8);
        let mut rebuilt = Dataset::new(ds.schema().clone());
        for batch in &batches {
            rebuilt.extend_rows(batch.clone()).unwrap();
        }
        assert_eq!(rebuilt, ds, "streamed rows must reproduce the dataset");
    }

    #[test]
    fn stream_yields_fixed_size_batches() {
        let ds = HaiGenerator::default().with_rows(25).generate();
        let stream = BatchStream::new(&ds, 10);
        assert_eq!(stream.batch_count(), 3);
        let sizes: Vec<usize> = stream.map(|b| b.len()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn empty_dataset_streams_nothing() {
        let ds = Dataset::new(Schema::new(&["a"]));
        assert!(row_batches(&ds, 4).is_empty());
        assert_eq!(BatchStream::new(&ds, 3).count(), 0);
    }

    #[test]
    fn zero_batch_size_is_clamped() {
        let ds = HaiGenerator::default().with_rows(3).generate();
        let sizes: Vec<usize> = BatchStream::new(&ds, 0).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 1, 1]);
    }
}
