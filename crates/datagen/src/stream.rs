//! Micro-batch helpers for streaming ingest: split any generated dataset
//! into row batches that feed `mlnclean`'s incremental `CleaningSession`.
//!
//! The generators in this crate produce whole [`Dataset`]s (the paper's
//! protocol corrupts a complete clean relation).  Streaming scenarios want
//! the same data as an ordered sequence of micro-batches instead — these
//! helpers slice a dataset into contiguous row chunks without disturbing row
//! order, so a stream of batches reproduces the batch dataset exactly.

use dataset::{Dataset, TupleId};

/// An iterator over contiguous micro-batches of string rows of a dataset,
/// in row order.  Every row appears in exactly one batch.
#[derive(Debug, Clone)]
pub struct BatchStream<'a> {
    ds: &'a Dataset,
    batch_size: usize,
    next: usize,
}

impl<'a> BatchStream<'a> {
    /// Stream `ds` in batches of `batch_size` rows (the last batch may be
    /// smaller).  A batch size of zero is treated as one.
    pub fn new(ds: &'a Dataset, batch_size: usize) -> Self {
        BatchStream {
            ds,
            batch_size: batch_size.max(1),
            next: 0,
        }
    }

    /// Number of batches the stream will yield in total.
    pub fn batch_count(&self) -> usize {
        self.ds.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchStream<'_> {
    type Item = Vec<Vec<String>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.ds.len() {
            return None;
        }
        let upto = (self.next + self.batch_size).min(self.ds.len());
        let batch: Vec<Vec<String>> = (self.next..upto)
            .map(|t| self.ds.tuple(TupleId(t)).owned_values())
            .collect();
        self.next = upto;
        Some(batch)
    }
}

/// Split `ds` into (at most) `batches` contiguous micro-batches of string
/// rows, covering every row in order.  Convenience over [`BatchStream`] for
/// "ingest this dataset in N batches" scenarios.
pub fn row_batches(ds: &Dataset, batches: usize) -> Vec<Vec<Vec<String>>> {
    if ds.is_empty() {
        return Vec::new();
    }
    let size = ds.len().div_ceil(batches.max(1));
    BatchStream::new(ds, size).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HaiGenerator;
    use dataset::Schema;

    #[test]
    fn batches_cover_every_row_in_order() {
        let ds = HaiGenerator::default().with_rows(103).generate();
        let batches = row_batches(&ds, 8);
        assert_eq!(batches.len(), 8);
        let mut rebuilt = Dataset::new(ds.schema().clone());
        for batch in &batches {
            rebuilt.extend_rows(batch.clone()).unwrap();
        }
        assert_eq!(rebuilt, ds, "streamed rows must reproduce the dataset");
    }

    #[test]
    fn stream_yields_fixed_size_batches() {
        let ds = HaiGenerator::default().with_rows(25).generate();
        let stream = BatchStream::new(&ds, 10);
        assert_eq!(stream.batch_count(), 3);
        let sizes: Vec<usize> = stream.map(|b| b.len()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn empty_dataset_streams_nothing() {
        let ds = Dataset::new(Schema::new(&["a"]));
        assert!(row_batches(&ds, 4).is_empty());
        assert_eq!(BatchStream::new(&ds, 3).count(), 0);
    }

    #[test]
    fn zero_batch_size_is_clamped() {
        let ds = HaiGenerator::default().with_rows(3).generate();
        let sizes: Vec<usize> = BatchStream::new(&ds, 0).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![1, 1, 1]);
    }
}
