//! Synthetic TPC-H-style dataset.
//!
//! The paper builds its synthetic dataset by joining the two largest TPC-H
//! tables (`lineitem` and `customer`), constrained by the single FD
//! `CustKey → Address`.  This generator produces the equivalent wide join:
//! every row is one line item annotated with its customer's key, name,
//! address and phone, so the customer attributes repeat across that
//! customer's line items.

use crate::make_dirty;
use crate::stream::{DirtyRowStream, StreamColumn};
use dataset::{Dataset, DirtyDataset, Schema};
use rand::prelude::*;
use rand::rngs::StdRng;
use rules::{parse_rules, RuleSet};

/// Generator for the synthetic TPC-H join.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchGenerator {
    /// Number of distinct customers.
    pub customers: usize,
    /// Number of rows (line items) to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchGenerator {
    fn default() -> Self {
        TpchGenerator {
            customers: 200,
            rows: 5_000,
            seed: 31,
        }
    }
}

const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

impl TpchGenerator {
    /// Set the number of rows.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Set the number of distinct customers.
    pub fn with_customers(mut self, customers: usize) -> Self {
        self.customers = customers;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The TPC-H rule set of Table 4: `CustKey → Address`.
    pub fn rules() -> RuleSet {
        parse_rules("FD: CustKey -> Address").expect("the TPC-H rule set is well-formed")
    }

    /// The TPC-H join schema (customer attributes, then line-item ones).
    pub fn schema() -> Schema {
        Schema::new(&[
            "CustKey",
            "CustName",
            "Address",
            "Nation",
            "Phone",
            "OrderKey",
            "PartKey",
            "Quantity",
            "ExtendedPrice",
        ])
    }

    /// Customer key of the `i`-th customer (customer master data is a pure
    /// function of the index, so the row stream needs no customer table).
    fn customer_key(i: usize) -> String {
        format!("C{:07}", i + 1)
    }

    /// Customer name of the `i`-th customer.
    fn customer_name(i: usize) -> String {
        format!("Customer#{:09}", i + 1)
    }

    /// Address of the `i`-th customer.
    fn customer_address(i: usize) -> String {
        format!("{} MARKET ST SUITE {}", 100 + (i * 37) % 900, i + 1)
    }

    /// Nation of the `i`-th customer.
    fn customer_nation(i: usize) -> &'static str {
        NATIONS[i % NATIONS.len()]
    }

    /// Phone number of the `i`-th customer.
    fn customer_phone(i: usize) -> String {
        format!(
            "{:02}-{:03}-{:03}-{:04}",
            10 + i % 25,
            i % 1000,
            (i * 7) % 1000,
            (i * 13) % 10_000
        )
    }

    /// Stream the clean rows one at a time.  [`TpchGenerator::generate`]
    /// drains this same stream, so streamed rows are byte-identical to the
    /// materialised dataset whatever the consumer's batch size.
    pub fn row_stream(&self) -> TpchRows {
        TpchRows {
            rng: StdRng::seed_from_u64(self.seed),
            customers: self.customers.max(1),
            rows: self.rows,
            produced: 0,
        }
    }

    /// Generate the clean dataset by materialising the row stream.
    pub fn generate(&self) -> Dataset {
        let mut ds = Dataset::with_capacity(Self::schema(), self.rows);
        for row in self.row_stream() {
            ds.push_row(row).expect("row matches the TPC-H schema");
        }
        ds
    }

    /// Generate a clean dataset and corrupt it per the paper's protocol.
    pub fn dirty(&self, error_rate: f64, replacement_ratio: f64, seed: u64) -> DirtyDataset {
        let clean = self.generate();
        make_dirty(&clean, &Self::rules(), error_rate, replacement_ratio, seed)
    }

    /// Stream dirty rows: the clean row stream with the rule-related cells
    /// (`CustKey`, `Address`) corrupted by the per-cell streaming protocol —
    /// deterministic in `seed` and independent of how the consumer batches
    /// the stream.  Replacement errors draw another customer's key/address.
    pub fn dirty_row_stream(
        &self,
        error_rate: f64,
        replacement_ratio: f64,
        seed: u64,
    ) -> DirtyRowStream<TpchRows> {
        let n = self.customers.max(1) as u64;
        DirtyRowStream::new(
            self.row_stream(),
            vec![
                StreamColumn::new(
                    0,
                    Box::new(move |draw| Self::customer_key((draw % n) as usize)),
                ),
                StreamColumn::new(
                    2,
                    Box::new(move |draw| Self::customer_address((draw % n) as usize)),
                ),
            ],
            error_rate,
            replacement_ratio,
            seed,
        )
    }
}

/// Iterator over the clean TPC-H rows, in row order (see
/// [`TpchGenerator::row_stream`]).
#[derive(Debug, Clone)]
pub struct TpchRows {
    rng: StdRng,
    customers: usize,
    rows: usize,
    produced: usize,
}

impl Iterator for TpchRows {
    type Item = Vec<String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.produced >= self.rows {
            return None;
        }
        let row = self.produced;
        self.produced += 1;
        let c = self.rng.gen_range(0..self.customers);
        Some(vec![
            TpchGenerator::customer_key(c),
            TpchGenerator::customer_name(c),
            TpchGenerator::customer_address(c),
            TpchGenerator::customer_nation(c).to_string(),
            TpchGenerator::customer_phone(c),
            format!("O{:08}", row + 1),
            format!("P{:06}", self.rng.gen_range(1..20_000)),
            format!("{}", self.rng.gen_range(1..50)),
            format!("{:.2}", self.rng.gen_range(900.0..105_000.0)),
        ])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.rows - self.produced;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TpchRows {}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::detect_violations;

    #[test]
    fn clean_data_satisfies_the_fd() {
        let ds = TpchGenerator::default().with_rows(800).generate();
        assert!(detect_violations(&ds, &TpchGenerator::rules()).is_empty());
    }

    #[test]
    fn customers_repeat_across_line_items() {
        let ds = TpchGenerator::default()
            .with_rows(1000)
            .with_customers(50)
            .generate();
        let cust = ds.schema().attr_id("CustKey").unwrap();
        assert!(ds.domain(cust).len() <= 50);
    }

    #[test]
    fn order_keys_are_unique() {
        let ds = TpchGenerator::default().with_rows(500).generate();
        let order = ds.schema().attr_id("OrderKey").unwrap();
        assert_eq!(ds.domain(order).len(), 500);
    }

    #[test]
    fn dirty_injects_only_on_custkey_and_address() {
        let gen = TpchGenerator::default().with_rows(300);
        let dirty = gen.dirty(0.2, 0.5, 5);
        let schema = dirty.dirty.schema().clone();
        for e in &dirty.errors {
            let name = schema.attr_name(e.cell.attr);
            assert!(
                name == "CustKey" || name == "Address",
                "unexpected attribute {name}"
            );
        }
    }
}
