//! Synthetic TPC-H-style dataset.
//!
//! The paper builds its synthetic dataset by joining the two largest TPC-H
//! tables (`lineitem` and `customer`), constrained by the single FD
//! `CustKey → Address`.  This generator produces the equivalent wide join:
//! every row is one line item annotated with its customer's key, name,
//! address and phone, so the customer attributes repeat across that
//! customer's line items.

use crate::make_dirty;
use dataset::{Dataset, DirtyDataset, Schema};
use rand::prelude::*;
use rand::rngs::StdRng;
use rules::{parse_rules, RuleSet};

/// Generator for the synthetic TPC-H join.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchGenerator {
    /// Number of distinct customers.
    pub customers: usize,
    /// Number of rows (line items) to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchGenerator {
    fn default() -> Self {
        TpchGenerator {
            customers: 200,
            rows: 5_000,
            seed: 31,
        }
    }
}

const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

impl TpchGenerator {
    /// Set the number of rows.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Set the number of distinct customers.
    pub fn with_customers(mut self, customers: usize) -> Self {
        self.customers = customers;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The TPC-H rule set of Table 4: `CustKey → Address`.
    pub fn rules() -> RuleSet {
        parse_rules("FD: CustKey -> Address").expect("the TPC-H rule set is well-formed")
    }

    /// Generate the clean dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let schema = Schema::new(&[
            "CustKey",
            "CustName",
            "Address",
            "Nation",
            "Phone",
            "OrderKey",
            "PartKey",
            "Quantity",
            "ExtendedPrice",
        ]);

        struct Customer {
            key: String,
            name: String,
            address: String,
            nation: String,
            phone: String,
        }
        let customers: Vec<Customer> = (0..self.customers.max(1))
            .map(|i| Customer {
                key: format!("C{:07}", i + 1),
                name: format!("Customer#{:09}", i + 1),
                address: format!("{} MARKET ST SUITE {}", 100 + (i * 37) % 900, i + 1),
                nation: NATIONS[i % NATIONS.len()].to_string(),
                phone: format!(
                    "{:02}-{:03}-{:03}-{:04}",
                    10 + i % 25,
                    i % 1000,
                    (i * 7) % 1000,
                    (i * 13) % 10_000
                ),
            })
            .collect();

        let mut ds = Dataset::with_capacity(schema, self.rows);
        for row in 0..self.rows {
            let c = &customers[rng.gen_range(0..customers.len())];
            ds.push_row(vec![
                c.key.clone(),
                c.name.clone(),
                c.address.clone(),
                c.nation.clone(),
                c.phone.clone(),
                format!("O{:08}", row + 1),
                format!("P{:06}", rng.gen_range(1..20_000)),
                format!("{}", rng.gen_range(1..50)),
                format!("{:.2}", rng.gen_range(900.0..105_000.0)),
            ])
            .expect("row matches the TPC-H schema");
        }
        ds
    }

    /// Generate a clean dataset and corrupt it per the paper's protocol.
    pub fn dirty(&self, error_rate: f64, replacement_ratio: f64, seed: u64) -> DirtyDataset {
        let clean = self.generate();
        make_dirty(&clean, &Self::rules(), error_rate, replacement_ratio, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::detect_violations;

    #[test]
    fn clean_data_satisfies_the_fd() {
        let ds = TpchGenerator::default().with_rows(800).generate();
        assert!(detect_violations(&ds, &TpchGenerator::rules()).is_empty());
    }

    #[test]
    fn customers_repeat_across_line_items() {
        let ds = TpchGenerator::default()
            .with_rows(1000)
            .with_customers(50)
            .generate();
        let cust = ds.schema().attr_id("CustKey").unwrap();
        assert!(ds.domain(cust).len() <= 50);
    }

    #[test]
    fn order_keys_are_unique() {
        let ds = TpchGenerator::default().with_rows(500).generate();
        let order = ds.schema().attr_id("OrderKey").unwrap();
        assert_eq!(ds.domain(order).len(), 500);
    }

    #[test]
    fn dirty_injects_only_on_custkey_and_address() {
        let gen = TpchGenerator::default().with_rows(300);
        let dirty = gen.dirty(0.2, 0.5, 5);
        let schema = dirty.dirty.schema().clone();
        for e in &dirty.errors {
            let name = schema.attr_name(e.cell.attr);
            assert!(
                name == "CustKey" || name == "Address",
                "unexpected attribute {name}"
            );
        }
    }
}
