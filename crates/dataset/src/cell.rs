//! Cell references: a (tuple, attribute) coordinate in a dataset.

use crate::schema::AttrId;
use crate::tuple::TupleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single cell position in a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellRef {
    /// Tuple containing the cell.
    pub tuple: TupleId,
    /// Attribute (column) of the cell.
    pub attr: AttrId,
}

impl CellRef {
    /// Create a cell reference.
    pub fn new(tuple: TupleId, attr: AttrId) -> Self {
        CellRef { tuple, attr }
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.[{}]", self.tuple, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_row_major() {
        let a = CellRef::new(TupleId(0), AttrId(3));
        let b = CellRef::new(TupleId(1), AttrId(0));
        assert!(a < b);
    }

    #[test]
    fn display() {
        let c = CellRef::new(TupleId(2), AttrId(1));
        assert_eq!(c.to_string(), "t3.[A1]");
    }
}
