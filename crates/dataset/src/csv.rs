//! Minimal CSV reading/writing for datasets.
//!
//! This is intentionally a small, dependency-free implementation supporting
//! the subset of CSV we need for experiment inputs and outputs: a header row,
//! comma separators, optional double-quote quoting with `""` escapes.

use crate::dataset::Dataset;
use crate::schema::Schema;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Errors raised while parsing CSV content.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file had no header row.
    MissingHeader,
    /// A record had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number of the offending record.
        line: usize,
        /// Number of fields expected (header width).
        expected: usize,
        /// Number of fields found.
        actual: usize,
    },
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line number where the quoted field started.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::RaggedRow {
                line,
                expected,
                actual,
            } => {
                write!(f, "line {line}: expected {expected} fields, found {actual}")
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Split one CSV record into fields, honouring double-quote quoting.  A
/// trailing `\r` (CRLF line endings, as written by Windows tools) is stripped
/// before parsing so it never leaks into the last field.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: line_no });
    }
    fields.push(field);
    Ok(fields)
}

/// Quote a field if it contains a comma, quote, newline, or carriage return
/// (the latter so a trailing `\r` in a value survives the CRLF stripping on
/// re-parse).
fn write_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Parse CSV text (header + records) into a [`Dataset`].
pub fn parse_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.is_empty() && *l != "\r");
    let (header_no, header_line) = lines.next().ok_or(CsvError::MissingHeader)?;
    let header = parse_record(header_line, header_no + 1)?;
    let schema = Schema::new(&header);
    let mut ds = Dataset::new(schema);
    for (idx, line) in lines {
        let record = parse_record(line, idx + 1)?;
        if record.len() != header.len() {
            return Err(CsvError::RaggedRow {
                line: idx + 1,
                expected: header.len(),
                actual: record.len(),
            });
        }
        ds.push_row(record).expect("arity checked above");
    }
    Ok(ds)
}

/// Serialize a dataset to CSV text (header + records).
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    let names: Vec<&str> = ds.schema().attr_names().collect();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, name);
    }
    out.push('\n');
    for t in ds.tuple_ids() {
        for (i, a) in ds.schema().attr_ids().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, ds.value(t, a));
        }
        out.push('\n');
    }
    out
}

/// Read a dataset from a CSV file.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<Dataset, CsvError> {
    let text = fs::read_to_string(path)?;
    parse_csv(&text)
}

/// Write a dataset to a CSV file.
pub fn write_csv_file<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<(), CsvError> {
    let mut file = fs::File::create(path)?;
    file.write_all(to_csv(ds).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_hospital_dataset;

    #[test]
    fn round_trip_sample() {
        let ds = sample_hospital_dataset();
        let text = to_csv(&ds);
        let back = parse_csv(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn quoting_round_trip() {
        let mut ds = Dataset::new(Schema::new(&["name", "note"]));
        ds.push_row(vec!["St. Mary's, Inc".into(), "said \"hello\"".into()])
            .unwrap();
        ds.push_row(vec!["plain".into(), "".into()]).unwrap();
        // A value ending in '\r' must be quoted on write, or the CRLF
        // stripping on re-parse would silently eat it.
        ds.push_row(vec!["trailing\r".into(), "\r".into()]).unwrap();
        let text = to_csv(&ds);
        let back = parse_csv(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        // Regression: the splitter used to leave a trailing '\r' in the last
        // field of Windows-authored files.
        let ds = parse_csv("HN,CT\r\nALABAMA,DOTHAN\r\nELIZA,BOAZ\r\n").unwrap();
        assert_eq!(ds.len(), 2);
        let ct = ds.schema().attr_id("CT").unwrap();
        assert_eq!(ds.value(crate::TupleId(0), ct), "DOTHAN");
        assert_eq!(ds.value(crate::TupleId(1), ct), "BOAZ");
        // The parsed dataset is identical to its LF-authored twin.
        let lf = parse_csv("HN,CT\nALABAMA,DOTHAN\nELIZA,BOAZ\n").unwrap();
        assert_eq!(ds, lf);
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(parse_csv(""), Err(CsvError::MissingHeader)));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = parse_csv("a,b\n1,2\n3\n").unwrap_err();
        match err {
            CsvError::RaggedRow {
                line,
                expected,
                actual,
            } => {
                assert_eq!((line, expected, actual), (3, 2, 1));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        assert!(matches!(
            parse_csv("a,b\n\"oops,2\n"),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let ds = sample_hospital_dataset();
        let dir = std::env::temp_dir().join("mlnclean-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        write_csv_file(&ds, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(ds, back);
    }
}
