//! The in-memory dataset: a schema plus an ordered collection of tuples,
//! with cell-level access, attribute domains, and duplicate detection.

use crate::cell::CellRef;
use crate::schema::{AttrId, Schema};
use crate::tuple::{Tuple, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error returned when a row does not match the dataset schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArityMismatch {
    /// Number of attributes the schema expects.
    pub expected: usize,
    /// Number of values the offending row carried.
    pub actual: usize,
}

impl fmt::Display for ArityMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row has {} values but the schema has {} attributes",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for ArityMismatch {}

/// An in-memory relation: schema + tuples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Dataset {
    /// Create an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        Dataset {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Create a dataset with pre-allocated capacity.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        Dataset {
            schema,
            tuples: Vec::with_capacity(capacity),
        }
    }

    /// The schema of this dataset.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the dataset has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a row, assigning it the next [`TupleId`].
    pub fn push_row(&mut self, values: Vec<String>) -> Result<TupleId, ArityMismatch> {
        if values.len() != self.schema.arity() {
            return Err(ArityMismatch {
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        let id = TupleId(self.tuples.len());
        self.tuples.push(Tuple::new(id, values));
        Ok(id)
    }

    /// The tuple with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.0]
    }

    /// Mutable access to the tuple with id `id`.
    pub fn tuple_mut(&mut self, id: TupleId) -> &mut Tuple {
        &mut self.tuples[id.0]
    }

    /// Value of a single cell.
    pub fn value(&self, tuple: TupleId, attr: AttrId) -> &str {
        self.tuples[tuple.0].value(attr)
    }

    /// Value of a cell given a [`CellRef`].
    pub fn cell(&self, cell: CellRef) -> &str {
        self.value(cell.tuple, cell.attr)
    }

    /// Overwrite a single cell.
    pub fn set_value(&mut self, tuple: TupleId, attr: AttrId, value: impl Into<String>) {
        self.tuples[tuple.0].set_value(attr, value);
    }

    /// Iterate over all tuples in insertion order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Iterate over all tuple ids.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> {
        (0..self.tuples.len()).map(TupleId)
    }

    /// Iterate over every cell of the dataset in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (CellRef, &str)> {
        self.tuples.iter().flat_map(move |t| {
            (0..self.schema.arity())
                .map(move |a| (CellRef::new(t.id(), AttrId(a)), t.value(AttrId(a))))
        })
    }

    /// Total number of cells (tuples × attributes); the denominator of the
    /// error rate in the paper's evaluation protocol.
    pub fn cell_count(&self) -> usize {
        self.tuples.len() * self.schema.arity()
    }

    /// The active domain of an attribute: the distinct values appearing in
    /// that column, sorted.  Quantitative cleaners (HoloClean-style) draw
    /// their repair candidates from this set.
    pub fn domain(&self, attr: AttrId) -> BTreeSet<String> {
        self.tuples
            .iter()
            .map(|t| t.value(attr).to_string())
            .collect()
    }

    /// Frequency of each value in the column `attr`.
    pub fn value_counts(&self, attr: AttrId) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for t in &self.tuples {
            *counts.entry(t.value(attr).to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Co-occurrence counts between values of `a` and values of `b`:
    /// how many tuples carry each (value-of-a, value-of-b) pair.
    pub fn cooccurrence(&self, a: AttrId, b: AttrId) -> BTreeMap<(String, String), usize> {
        let mut counts = BTreeMap::new();
        for t in &self.tuples {
            *counts
                .entry((t.value(a).to_string(), t.value(b).to_string()))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Group tuple ids by their exact values: each group with more than one
    /// member is a set of exact duplicates.
    pub fn duplicate_groups(&self) -> Vec<Vec<TupleId>> {
        let mut groups: BTreeMap<Vec<String>, Vec<TupleId>> = BTreeMap::new();
        for t in &self.tuples {
            groups.entry(t.values().to_vec()).or_default().push(t.id());
        }
        groups.into_values().filter(|g| g.len() > 1).collect()
    }

    /// Return a copy of the dataset keeping only the first tuple of every
    /// exact-duplicate family (tuple ids are reassigned densely).  This is the
    /// final deduplication step of the MLNClean pipeline.
    pub fn deduplicated(&self) -> Dataset {
        let mut seen = BTreeSet::new();
        let mut out = Dataset::with_capacity(self.schema.clone(), self.tuples.len());
        for t in &self.tuples {
            if seen.insert(t.values().to_vec()) {
                out.push_row(t.values().to_vec()).expect("same schema");
            }
        }
        out
    }

    /// Number of cells where `self` and `other` differ.  The two datasets
    /// must have the same shape.
    pub fn diff_cells(&self, other: &Dataset) -> Vec<CellRef> {
        assert_eq!(
            self.schema.arity(),
            other.schema.arity(),
            "schemas must agree"
        );
        assert_eq!(
            self.len(),
            other.len(),
            "datasets must have the same number of tuples"
        );
        let mut out = Vec::new();
        for t in self.tuple_ids() {
            for a in self.schema.attr_ids() {
                if self.value(t, a) != other.value(t, a) {
                    out.push(CellRef::new(t, a));
                }
            }
        }
        out
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_hospital_dataset;

    #[test]
    fn push_row_checks_arity() {
        let mut ds = Dataset::new(Schema::new(&["a", "b"]));
        assert!(ds.push_row(vec!["1".into(), "2".into()]).is_ok());
        let err = ds.push_row(vec!["1".into()]).unwrap_err();
        assert_eq!(
            err,
            ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn domain_and_counts() {
        let ds = sample_hospital_dataset();
        let ct = ds.schema().attr_id("CT").unwrap();
        let domain = ds.domain(ct);
        assert_eq!(domain.len(), 3); // DOTHAN, DOTH, BOAZ
        let counts = ds.value_counts(ct);
        assert_eq!(counts["BOAZ"], 3);
        assert_eq!(counts["DOTH"], 1);
    }

    #[test]
    fn cooccurrence_counts_pairs() {
        let ds = sample_hospital_dataset();
        let ct = ds.schema().attr_id("CT").unwrap();
        let st = ds.schema().attr_id("ST").unwrap();
        let co = ds.cooccurrence(ct, st);
        assert_eq!(co[&("BOAZ".to_string(), "AL".to_string())], 2);
        assert_eq!(co[&("BOAZ".to_string(), "AK".to_string())], 1);
    }

    #[test]
    fn duplicates_and_dedup() {
        let truth = crate::sample_hospital_truth();
        let groups = truth.duplicate_groups();
        // t1/t2 are duplicates and t3..t6 are duplicates in the ground truth.
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&4));
        let dedup = truth.deduplicated();
        assert_eq!(dedup.len(), 2);
    }

    #[test]
    fn diff_cells_finds_injected_differences() {
        let dirty = sample_hospital_dataset();
        let truth = crate::sample_hospital_truth();
        let diff = dirty.diff_cells(&truth);
        // t2.CT, t3.CT, t3.PN, t4.ST are the erroneous cells of Table 1.
        assert_eq!(diff.len(), 4);
    }

    #[test]
    fn cells_iterator_covers_every_cell() {
        let ds = sample_hospital_dataset();
        assert_eq!(ds.cells().count(), ds.cell_count());
        assert_eq!(ds.cell_count(), 24);
    }

    #[test]
    fn set_value_updates_cell() {
        let mut ds = sample_hospital_dataset();
        let st = ds.schema().attr_id("ST").unwrap();
        ds.set_value(TupleId(3), st, "AL");
        assert_eq!(ds.value(TupleId(3), st), "AL");
    }
}
