//! The in-memory dataset: a schema plus columnar value storage, with
//! cell-level access, attribute domains, and duplicate detection.
//!
//! Storage is **columnar and interned**: one `Vec<ValueId>` per attribute,
//! with every distinct string held once in the dataset's [`ValuePool`].  Row
//! access is preserved through the [`Tuple`] view type and [`TupleId`], so
//! call sites keep their row-oriented shape while cell equality, grouping and
//! cross-worker shipping all operate on compact ids.

use crate::cell::CellRef;
use crate::pool::{ValueId, ValuePool};
use crate::schema::{AttrId, Schema};
use crate::tuple::{Tuple, TupleId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Error returned when a row does not match the dataset schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArityMismatch {
    /// Number of attributes the schema expects.
    pub expected: usize,
    /// Number of values the offending row carried.
    pub actual: usize,
}

impl fmt::Display for ArityMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row has {} values but the schema has {} attributes",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for ArityMismatch {}

/// Error returned when two datasets' schemas differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemaMismatch;

impl fmt::Display for SchemaMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the datasets have different schemas")
    }
}

impl std::error::Error for SchemaMismatch {}

/// An in-memory relation: schema + interned columnar cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub(crate) schema: Schema,
    pub(crate) pool: ValuePool,
    /// One column of interned cell ids per attribute, all of equal length.
    pub(crate) columns: Vec<Vec<ValueId>>,
    pub(crate) rows: usize,
}

impl Dataset {
    /// Create an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Dataset {
            schema,
            pool: ValuePool::new(),
            columns: vec![Vec::new(); arity],
            rows: 0,
        }
    }

    /// Create a dataset with pre-allocated capacity.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let arity = schema.arity();
        Dataset {
            schema,
            pool: ValuePool::new(),
            columns: (0..arity).map(|_| Vec::with_capacity(capacity)).collect(),
            rows: 0,
        }
    }

    /// Create an empty dataset that shares (a snapshot of) an existing value
    /// pool, so ids remain comparable with the source.  This is how the
    /// distributed runner builds per-worker partitions: rows travel as
    /// `Vec<ValueId>` plus one compact pool snapshot instead of cloned
    /// strings.
    pub fn with_pool(schema: Schema, pool: ValuePool, capacity: usize) -> Self {
        let arity = schema.arity();
        Dataset {
            schema,
            pool,
            columns: (0..arity).map(|_| Vec::with_capacity(capacity)).collect(),
            rows: 0,
        }
    }

    /// The schema of this dataset.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dataset's value pool.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Intern an arbitrary string into this dataset's pool (without touching
    /// any cell), returning its id.  Useful for comparing external constants
    /// against cells by id.
    pub fn intern(&mut self, value: &str) -> ValueId {
        self.pool.intern(value)
    }

    /// Catch this dataset's pool up to an append-only descendant (see
    /// [`ValuePool::sync_from`]) so ids minted by the descendant resolve here
    /// too — the O(new values) alternative to cloning the whole pool when a
    /// session keeps a derived dataset (e.g. the repaired copy) in step with
    /// the dirty one.
    pub fn sync_pool_from(&mut self, descendant: &ValuePool) {
        self.pool.sync_from(descendant);
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the dataset has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append a row of strings, assigning it the next [`TupleId`].
    pub fn push_row(&mut self, values: Vec<String>) -> Result<TupleId, ArityMismatch> {
        if values.len() != self.schema.arity() {
            return Err(ArityMismatch {
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        for (column, value) in self.columns.iter_mut().zip(&values) {
            column.push(self.pool.intern(value));
        }
        let id = TupleId(self.rows);
        self.rows += 1;
        Ok(id)
    }

    /// Append a row of already-interned ids (they must come from this
    /// dataset's pool or a snapshot ancestor of it).
    pub fn push_row_ids(&mut self, values: &[ValueId]) -> Result<TupleId, ArityMismatch> {
        if values.len() != self.schema.arity() {
            return Err(ArityMismatch {
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        debug_assert!(
            values.iter().all(|&v| self.pool.contains(v)),
            "push_row_ids with an out-of-range ValueId (same-pool ancestry is the caller's contract)"
        );
        for (column, &value) in self.columns.iter_mut().zip(values) {
            column.push(value);
        }
        let id = TupleId(self.rows);
        self.rows += 1;
        Ok(id)
    }

    /// Append a batch of string rows, returning the range of assigned row
    /// indices.  The batch is atomic: every row's arity is validated before
    /// any row is appended, so a failed call leaves the dataset untouched.
    pub fn extend_rows<I>(&mut self, rows: I) -> Result<std::ops::Range<usize>, ArityMismatch>
    where
        I: IntoIterator<Item = Vec<String>>,
    {
        let rows: Vec<Vec<String>> = rows.into_iter().collect();
        let arity = self.schema.arity();
        for row in &rows {
            if row.len() != arity {
                return Err(ArityMismatch {
                    expected: arity,
                    actual: row.len(),
                });
            }
        }
        let start = self.rows;
        for row in rows {
            self.push_row(row).expect("arity validated above");
        }
        Ok(start..self.rows)
    }

    /// Append every row of `other` (which must have the same schema),
    /// returning the range of assigned row indices.
    ///
    /// This is the micro-batch ingest primitive: values are re-interned into
    /// this dataset's pool **once per distinct id** of `other`'s pool (not
    /// once per cell), so appending a batch that mostly repeats known values
    /// costs one hash probe per distinct value plus one `u32` push per cell.
    pub fn extend_from(
        &mut self,
        other: &Dataset,
    ) -> Result<std::ops::Range<usize>, SchemaMismatch> {
        if self.schema != other.schema {
            return Err(SchemaMismatch);
        }
        let mut map: Vec<Option<ValueId>> = vec![None; other.pool.len()];
        let start = self.rows;
        let Dataset { pool, columns, .. } = self;
        for (column, other_column) in columns.iter_mut().zip(&other.columns) {
            column.reserve(other.rows);
            for &id in other_column {
                let mapped = match map[id.index()] {
                    Some(mapped) => mapped,
                    None => {
                        let mapped = pool.intern(other.pool.resolve(id));
                        map[id.index()] = Some(mapped);
                        mapped
                    }
                };
                column.push(mapped);
            }
        }
        self.rows += other.rows;
        Ok(start..self.rows)
    }

    /// Remove one row, compacting the dataset: every tuple id greater than
    /// `t` shifts down by one, exactly as if the dataset had been built
    /// without the removed row.  The pool is untouched (interned values are
    /// append-only, so ids held elsewhere keep resolving).
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn remove_row(&mut self, t: TupleId) {
        assert!(t.0 < self.rows, "tuple id {t} out of range");
        for column in &mut self.columns {
            column.remove(t.0);
        }
        self.rows -= 1;
    }

    /// Remove several rows at once (ids interpreted against the *current*
    /// numbering, i.e. all relative to the same pre-removal state).  The
    /// surviving rows are compacted in order, as if the dataset had been
    /// built from them alone.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn remove_rows(&mut self, ids: &[TupleId]) {
        if ids.is_empty() {
            return;
        }
        let mut removed: Vec<usize> = ids.iter().map(|t| t.0).collect();
        removed.sort_unstable();
        removed.dedup();
        assert!(
            removed.last().is_none_or(|&t| t < self.rows),
            "tuple id out of range"
        );
        for column in &mut self.columns {
            let mut keep = 0usize;
            let mut next = removed.iter().peekable();
            for i in 0..column.len() {
                if next.peek().is_some_and(|&&r| r == i) {
                    next.next();
                    continue;
                }
                column[keep] = column[i];
                keep += 1;
            }
            column.truncate(keep);
        }
        self.rows -= removed.len();
    }

    /// A row view of the tuple with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn tuple(&self, id: TupleId) -> Tuple<'_> {
        assert!(id.0 < self.rows, "tuple id {id} out of range");
        Tuple::new(id, self)
    }

    /// Value of a single cell.
    pub fn value(&self, tuple: TupleId, attr: AttrId) -> &str {
        self.pool.resolve(self.columns[attr.0][tuple.0])
    }

    /// Interned id of a single cell.
    pub fn value_id(&self, tuple: TupleId, attr: AttrId) -> ValueId {
        self.columns[attr.0][tuple.0]
    }

    /// Value of a cell given a [`CellRef`].
    pub fn cell(&self, cell: CellRef) -> &str {
        self.value(cell.tuple, cell.attr)
    }

    /// Interned id of a cell given a [`CellRef`].
    pub fn cell_id(&self, cell: CellRef) -> ValueId {
        self.value_id(cell.tuple, cell.attr)
    }

    /// Overwrite a single cell with a string (interning it if new).
    pub fn set_value(&mut self, tuple: TupleId, attr: AttrId, value: impl Into<String>) {
        let id = self.pool.intern(&value.into());
        self.columns[attr.0][tuple.0] = id;
    }

    /// Overwrite a single cell with an id from this dataset's pool.
    pub fn set_value_id(&mut self, tuple: TupleId, attr: AttrId, value: ValueId) {
        debug_assert!(
            self.pool.contains(value),
            "set_value_id with an out-of-range ValueId (same-pool ancestry is the caller's contract)"
        );
        self.columns[attr.0][tuple.0] = value;
    }

    /// Iterate over all tuples (as row views) in insertion order.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple<'_>> {
        (0..self.rows).map(move |i| Tuple::new(TupleId(i), self))
    }

    /// Iterate over all tuple ids.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> {
        (0..self.rows).map(TupleId)
    }

    /// Iterate over every cell of the dataset in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (CellRef, &str)> {
        (0..self.rows).flat_map(move |t| {
            (0..self.schema.arity()).map(move |a| {
                let cell = CellRef::new(TupleId(t), AttrId(a));
                (cell, self.cell(cell))
            })
        })
    }

    /// Total number of cells (tuples × attributes); the denominator of the
    /// error rate in the paper's evaluation protocol.
    pub fn cell_count(&self) -> usize {
        self.rows * self.schema.arity()
    }

    /// The active domain of an attribute: the distinct values appearing in
    /// that column, sorted.  Quantitative cleaners (HoloClean-style) draw
    /// their repair candidates from this set.
    pub fn domain(&self, attr: AttrId) -> BTreeSet<String> {
        self.domain_ids(attr)
            .into_iter()
            .map(|id| self.pool.resolve(id).to_string())
            .collect()
    }

    /// The active domain of an attribute as interned ids (ordered by id, i.e.
    /// first appearance — not lexicographically).
    pub fn domain_ids(&self, attr: AttrId) -> BTreeSet<ValueId> {
        self.columns[attr.0].iter().copied().collect()
    }

    /// Number of distinct values in the column `attr`.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        self.domain_ids(attr).len()
    }

    /// Frequency of each value in the column `attr`.
    pub fn value_counts(&self, attr: AttrId) -> BTreeMap<String, usize> {
        let mut by_id: HashMap<ValueId, usize> = HashMap::new();
        for &id in &self.columns[attr.0] {
            *by_id.entry(id).or_insert(0) += 1;
        }
        by_id
            .into_iter()
            .map(|(id, n)| (self.pool.resolve(id).to_string(), n))
            .collect()
    }

    /// Co-occurrence counts between values of `a` and values of `b`:
    /// how many tuples carry each (value-of-a, value-of-b) pair.
    pub fn cooccurrence(&self, a: AttrId, b: AttrId) -> BTreeMap<(String, String), usize> {
        let mut by_id: HashMap<(ValueId, ValueId), usize> = HashMap::new();
        for (&va, &vb) in self.columns[a.0].iter().zip(&self.columns[b.0]) {
            *by_id.entry((va, vb)).or_insert(0) += 1;
        }
        by_id
            .into_iter()
            .map(|((va, vb), n)| {
                (
                    (
                        self.pool.resolve(va).to_string(),
                        self.pool.resolve(vb).to_string(),
                    ),
                    n,
                )
            })
            .collect()
    }

    /// The full row of interned ids for one tuple, in schema order.
    pub fn row_ids(&self, tuple: TupleId) -> Vec<ValueId> {
        self.columns.iter().map(|c| c[tuple.0]).collect()
    }

    /// Group tuple ids by their exact values: each group with more than one
    /// member is a set of exact duplicates.  Groups are returned in order of
    /// their first member.
    pub fn duplicate_groups(&self) -> Vec<Vec<TupleId>> {
        let mut groups: HashMap<Vec<ValueId>, Vec<TupleId>> = HashMap::new();
        let mut order: Vec<Vec<ValueId>> = Vec::new();
        for t in self.tuple_ids() {
            let key = self.row_ids(t);
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                Vec::new()
            });
            entry.push(t);
        }
        order
            .into_iter()
            .filter_map(|key| {
                let g = groups.remove(&key).expect("keys come from the map");
                (g.len() > 1).then_some(g)
            })
            .collect()
    }

    /// Return a copy of the dataset keeping only the first tuple of every
    /// exact-duplicate family (tuple ids are reassigned densely).  This is the
    /// final deduplication step of the MLNClean pipeline.  The copy shares a
    /// pool snapshot with `self`, so ids remain comparable.
    pub fn deduplicated(&self) -> Dataset {
        let mut seen: std::collections::HashSet<Vec<ValueId>> = std::collections::HashSet::new();
        let mut out = Dataset::with_pool(self.schema.clone(), self.pool.clone(), self.rows);
        for t in self.tuple_ids() {
            let key = self.row_ids(t);
            if seen.insert(key.clone()) {
                out.push_row_ids(&key).expect("same schema");
            }
        }
        out
    }

    /// Extract the given rows (in the given order) into a new dataset that
    /// shares a pool snapshot with `self` — the partition primitive of the
    /// distributed runner: only `Vec<ValueId>` row images move, never strings.
    pub fn project_rows(&self, ids: &[TupleId]) -> Dataset {
        let mut out = Dataset::with_pool(self.schema.clone(), self.pool.clone(), ids.len());
        for &t in ids {
            let key = self.row_ids(t);
            out.push_row_ids(&key).expect("same schema");
        }
        out
    }

    /// Cells where `self` and `other` differ.  The two datasets must have the
    /// same shape.
    pub fn diff_cells(&self, other: &Dataset) -> Vec<CellRef> {
        assert_eq!(
            self.schema.arity(),
            other.schema.arity(),
            "schemas must agree"
        );
        assert_eq!(
            self.len(),
            other.len(),
            "datasets must have the same number of tuples"
        );
        // When the pools agree (the common case: `other` is a repaired clone
        // of `self`), cells compare as pure id equality.
        let same_pool = self.pool == other.pool;
        let mut out = Vec::new();
        for t in self.tuple_ids() {
            for a in self.schema.attr_ids() {
                let differs = if same_pool {
                    self.value_id(t, a) != other.value_id(t, a)
                } else {
                    self.value(t, a) != other.value(t, a)
                };
                if differs {
                    out.push(CellRef::new(t, a));
                }
            }
        }
        out
    }
}

impl PartialEq for Dataset {
    /// Semantic equality: same schema and the same string value in every
    /// cell.  Id assignment (interning order) is irrelevant.
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.rows != other.rows {
            return false;
        }
        if self.pool == other.pool {
            return self.columns == other.columns;
        }
        self.tuple_ids().all(|t| {
            self.schema
                .attr_ids()
                .all(|a| self.value(t, a) == other.value(t, a))
        })
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in self.tuples() {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_hospital_dataset;

    #[test]
    fn push_row_checks_arity() {
        let mut ds = Dataset::new(Schema::new(&["a", "b"]));
        assert!(ds.push_row(vec!["1".into(), "2".into()]).is_ok());
        let err = ds.push_row(vec!["1".into()]).unwrap_err();
        assert_eq!(
            err,
            ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn domain_and_counts() {
        let ds = sample_hospital_dataset();
        let ct = ds.schema().attr_id("CT").unwrap();
        let domain = ds.domain(ct);
        assert_eq!(domain.len(), 3); // DOTHAN, DOTH, BOAZ
        assert_eq!(ds.distinct_count(ct), 3);
        let counts = ds.value_counts(ct);
        assert_eq!(counts["BOAZ"], 3);
        assert_eq!(counts["DOTH"], 1);
    }

    #[test]
    fn cooccurrence_counts_pairs() {
        let ds = sample_hospital_dataset();
        let ct = ds.schema().attr_id("CT").unwrap();
        let st = ds.schema().attr_id("ST").unwrap();
        let co = ds.cooccurrence(ct, st);
        assert_eq!(co[&("BOAZ".to_string(), "AL".to_string())], 2);
        assert_eq!(co[&("BOAZ".to_string(), "AK".to_string())], 1);
    }

    #[test]
    fn duplicates_and_dedup() {
        let truth = crate::sample_hospital_truth();
        let groups = truth.duplicate_groups();
        // t1/t2 are duplicates and t3..t6 are duplicates in the ground truth.
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&4));
        let dedup = truth.deduplicated();
        assert_eq!(dedup.len(), 2);
    }

    #[test]
    fn diff_cells_finds_injected_differences() {
        let dirty = sample_hospital_dataset();
        let truth = crate::sample_hospital_truth();
        let diff = dirty.diff_cells(&truth);
        // t2.CT, t3.CT, t3.PN, t4.ST are the erroneous cells of Table 1.
        assert_eq!(diff.len(), 4);
    }

    #[test]
    fn cells_iterator_covers_every_cell() {
        let ds = sample_hospital_dataset();
        assert_eq!(ds.cells().count(), ds.cell_count());
        assert_eq!(ds.cell_count(), 24);
    }

    #[test]
    fn set_value_updates_cell() {
        let mut ds = sample_hospital_dataset();
        let st = ds.schema().attr_id("ST").unwrap();
        ds.set_value(TupleId(3), st, "AL");
        assert_eq!(ds.value(TupleId(3), st), "AL");
    }

    #[test]
    fn set_value_id_and_ids_round_trip() {
        let mut ds = sample_hospital_dataset();
        let st = ds.schema().attr_id("ST").unwrap();
        let al = ds.pool().lookup("AL").unwrap();
        ds.set_value_id(TupleId(3), st, al);
        assert_eq!(ds.value_id(TupleId(3), st), al);
        assert_eq!(ds.value(TupleId(3), st), "AL");
    }

    #[test]
    fn equality_ignores_interning_order() {
        // Same content, different insertion order of *values* within rows →
        // different id assignment, still equal.
        let mut a = Dataset::new(Schema::new(&["x", "y"]));
        a.push_row(vec!["p".into(), "q".into()]).unwrap();
        a.push_row(vec!["r".into(), "s".into()]).unwrap();
        let mut b = Dataset::new(Schema::new(&["x", "y"]));
        b.intern("s");
        b.intern("r");
        b.push_row(vec!["p".into(), "q".into()]).unwrap();
        b.push_row(vec!["r".into(), "s".into()]).unwrap();
        assert_ne!(a.pool(), b.pool());
        assert_eq!(a, b);
    }

    #[test]
    fn extend_rows_is_atomic_on_arity_errors() {
        let mut ds = Dataset::new(Schema::new(&["a", "b"]));
        ds.push_row(vec!["1".into(), "2".into()]).unwrap();
        let err = ds
            .extend_rows(vec![vec!["3".into(), "4".into()], vec!["5".into()]])
            .unwrap_err();
        assert_eq!(
            err,
            ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
        assert_eq!(ds.len(), 1, "a failed batch must not append anything");
        let range = ds
            .extend_rows(vec![
                vec!["3".into(), "4".into()],
                vec!["5".into(), "6".into()],
            ])
            .unwrap();
        assert_eq!(range, 1..3);
        assert_eq!(ds.value(TupleId(2), AttrId(0)), "5");
    }

    #[test]
    fn extend_from_remaps_foreign_pool_ids() {
        let dirty = sample_hospital_dataset();
        // A receiving dataset whose pool assigns different ids to the same
        // strings (values interned in a scrambled order first).
        let mut out = Dataset::new(dirty.schema().clone());
        out.intern("BOAZ");
        out.intern("DOTHAN");
        let range = out.extend_from(&dirty).unwrap();
        assert_eq!(range, 0..dirty.len());
        assert_eq!(out, dirty, "cell values must survive the id remap");
        assert_ne!(out.pool(), dirty.pool());

        // Appending the same batch again only pushes ids, never new strings.
        let before = out.pool().len();
        out.extend_from(&dirty).unwrap();
        assert_eq!(out.pool().len(), before);
        assert_eq!(out.len(), 2 * dirty.len());
    }

    #[test]
    fn extend_from_rejects_different_schemas() {
        let dirty = sample_hospital_dataset();
        let mut out = Dataset::new(Schema::new(&["x"]));
        assert_eq!(out.extend_from(&dirty), Err(SchemaMismatch));
        assert!(out.is_empty());
    }

    #[test]
    fn remove_row_compacts_like_a_rebuild() {
        let ds = sample_hospital_dataset();
        let mut removed = ds.clone();
        removed.remove_row(TupleId(2));
        let survivors: Vec<TupleId> = (0..ds.len()).filter(|&t| t != 2).map(TupleId).collect();
        let rebuilt = ds.project_rows(&survivors);
        assert_eq!(removed, rebuilt);
        // Ids above the removal point shifted down by one.
        let ct = ds.schema().attr_id("CT").unwrap();
        assert_eq!(removed.value(TupleId(2), ct), ds.value(TupleId(3), ct));
    }

    #[test]
    fn remove_rows_handles_unsorted_and_duplicate_ids() {
        let ds = sample_hospital_dataset();
        let mut removed = ds.clone();
        removed.remove_rows(&[TupleId(4), TupleId(1), TupleId(4)]);
        let rebuilt = ds.project_rows(&[TupleId(0), TupleId(2), TupleId(3), TupleId(5)]);
        assert_eq!(removed, rebuilt);
        assert_eq!(removed.len(), 4);
        // Removing nothing is a no-op.
        let before = removed.clone();
        removed.remove_rows(&[]);
        assert_eq!(removed, before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remove_row_rejects_out_of_range_ids() {
        let mut ds = sample_hospital_dataset();
        ds.remove_row(TupleId(6));
    }

    #[test]
    fn project_rows_shares_pool_snapshot() {
        let ds = sample_hospital_dataset();
        let part = ds.project_rows(&[TupleId(3), TupleId(0)]);
        assert_eq!(part.len(), 2);
        // Ids are directly comparable across the snapshot boundary.
        let st = ds.schema().attr_id("ST").unwrap();
        assert_eq!(part.value_id(TupleId(0), st), ds.value_id(TupleId(3), st));
        assert_eq!(part.value(TupleId(1), st), "AL");
    }
}
