//! Reproducible error injection following the paper's evaluation protocol
//! (Section 7.1):
//!
//! * errors are injected on attributes related to the integrity constraints;
//! * the error rate is the fraction of erroneous attribute values over all
//!   attribute values (cells);
//! * two instance-level error types are injected: **typos** (a random letter
//!   of the value is deleted) and **replacement errors** (the value is
//!   replaced with another value drawn from the same attribute domain);
//! * by default errors are split 50/50 between the two types; the
//!   replacement-error ratio `Rret` is configurable (Figure 7 sweeps it from
//!   0 to 100%).

use crate::cell::CellRef;
use crate::dataset::Dataset;
use crate::schema::AttrId;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The kind of an injected instance-level error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorType {
    /// A random character was removed from the value (a "misprint").
    Typo,
    /// The value was replaced with a different value from the same attribute
    /// domain.
    Replacement,
}

/// One injected error, with full provenance so evaluation can compute exact
/// precision/recall.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedError {
    /// Which cell was corrupted.
    pub cell: CellRef,
    /// How it was corrupted.
    pub error_type: ErrorType,
    /// The value before corruption (the ground truth).
    pub original: String,
    /// The value after corruption.
    pub dirty: String,
}

/// Specification of an injection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSpec {
    /// Fraction of *eligible* cells to corrupt, in `[0, 1]`.  The paper
    /// defines the error rate over attribute values of the rule-related
    /// attributes; eligible cells are those in [`ErrorSpec::attributes`].
    pub error_rate: f64,
    /// Fraction of injected errors that are replacement errors (the paper's
    /// `Rret`); the remainder are typos.  Default `0.5`.
    pub replacement_ratio: f64,
    /// Attributes eligible for corruption.  Empty means "all attributes".
    pub attributes: Vec<AttrId>,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl ErrorSpec {
    /// A 5% error rate with the paper's default 50/50 typo/replacement split.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        ErrorSpec {
            error_rate,
            replacement_ratio: 0.5,
            attributes: Vec::new(),
            seed,
        }
    }

    /// Restrict injection to the given attributes (the rule-related ones).
    pub fn on_attributes(mut self, attributes: Vec<AttrId>) -> Self {
        self.attributes = attributes;
        self
    }

    /// Set the replacement-error ratio `Rret`.
    pub fn with_replacement_ratio(mut self, ratio: f64) -> Self {
        self.replacement_ratio = ratio;
        self
    }
}

/// A dirty dataset paired with its ground truth and the exact set of injected
/// errors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirtyDataset {
    /// The corrupted dataset handed to a cleaner.
    pub dirty: Dataset,
    /// The clean dataset the corruption started from.
    pub clean: Dataset,
    /// Every injected error, in injection order.
    pub errors: Vec<InjectedError>,
}

impl DirtyDataset {
    /// The set of cells that were corrupted.
    pub fn erroneous_cells(&self) -> BTreeSet<CellRef> {
        self.errors.iter().map(|e| e.cell).collect()
    }

    /// Number of injected errors.
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }

    /// The achieved error rate over the whole dataset (all cells).
    pub fn overall_error_rate(&self) -> f64 {
        if self.dirty.cell_count() == 0 {
            0.0
        } else {
            self.errors.len() as f64 / self.dirty.cell_count() as f64
        }
    }
}

/// Seeded error injector.
#[derive(Debug, Clone)]
pub struct ErrorInjector {
    spec: ErrorSpec,
}

impl ErrorInjector {
    /// Create an injector from a spec.
    pub fn new(spec: ErrorSpec) -> Self {
        ErrorInjector { spec }
    }

    /// Corrupt `clean` according to the spec and return the dirty dataset
    /// together with full error provenance.
    pub fn inject(&self, clean: &Dataset) -> DirtyDataset {
        let mut rng = StdRng::seed_from_u64(self.spec.seed);
        let mut dirty = clean.clone();

        let attributes: Vec<AttrId> = if self.spec.attributes.is_empty() {
            clean.schema().attr_ids().collect()
        } else {
            self.spec.attributes.clone()
        };

        // Candidate cells: every (tuple, eligible attribute) pair.
        let mut candidates: Vec<CellRef> = clean
            .tuple_ids()
            .flat_map(|t| attributes.iter().map(move |&a| CellRef::new(t, a)))
            .collect();
        candidates.shuffle(&mut rng);

        let target =
            ((candidates.len() as f64) * self.spec.error_rate.clamp(0.0, 1.0)).round() as usize;
        let mut errors = Vec::with_capacity(target);

        // Pre-compute attribute domains from the clean data so replacement
        // errors always draw a *different* value of the same domain.
        let domains: Vec<Vec<String>> = clean
            .schema()
            .attr_ids()
            .map(|a| clean.domain(a).into_iter().collect())
            .collect();

        for cell in candidates.into_iter().take(target) {
            let original = clean.value(cell.tuple, cell.attr).to_string();
            let make_replacement = rng.gen_bool(self.spec.replacement_ratio.clamp(0.0, 1.0));
            let (error_type, corrupted) = if make_replacement {
                match replacement_of(&original, &domains[cell.attr.index()], &mut rng) {
                    Some(v) => (ErrorType::Replacement, v),
                    // Domain has a single value: fall back to a typo so the
                    // requested error budget is still spent.
                    None => (ErrorType::Typo, typo_of(&original, &mut rng)),
                }
            } else {
                (ErrorType::Typo, typo_of(&original, &mut rng))
            };
            if corrupted == original {
                // Cannot corrupt this cell (e.g. empty value with a
                // single-value domain); skip it rather than record a no-op.
                continue;
            }
            dirty.set_value(cell.tuple, cell.attr, corrupted.clone());
            errors.push(InjectedError {
                cell,
                error_type,
                original,
                dirty: corrupted,
            });
        }

        DirtyDataset {
            dirty,
            clean: clean.clone(),
            errors,
        }
    }
}

/// Delete one random character of `value` ("we randomly delete any letter of
/// an attribute value to construct a typo").  Empty values are returned
/// unchanged.
fn typo_of(value: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = value.chars().collect();
    if chars.is_empty() {
        return value.to_string();
    }
    let drop = rng.gen_range(0..chars.len());
    chars
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != drop)
        .map(|(_, c)| *c)
        .collect()
}

/// Pick a different value from the same domain, or `None` if there is none.
fn replacement_of(value: &str, domain: &[String], rng: &mut StdRng) -> Option<String> {
    let others: Vec<&String> = domain.iter().filter(|v| v.as_str() != value).collect();
    others.choose(rng).map(|v| (*v).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use proptest::prelude::*;

    fn big_dataset(rows: usize) -> Dataset {
        let schema = Schema::new(&["city", "state", "zip"]);
        let cities = ["DOTHAN", "BOAZ", "HUNTSVILLE", "MOBILE", "AUBURN"];
        let states = ["AL", "AK", "AZ", "AR", "CA"];
        let mut ds = Dataset::new(schema);
        for i in 0..rows {
            ds.push_row(vec![
                cities[i % cities.len()].to_string(),
                states[i % states.len()].to_string(),
                format!("{:05}", 10000 + i % 50),
            ])
            .unwrap();
        }
        ds
    }

    #[test]
    fn injection_hits_requested_rate() {
        let clean = big_dataset(400);
        let spec = ErrorSpec::new(0.10, 7);
        let dirty = ErrorInjector::new(spec).inject(&clean);
        let expected = (clean.cell_count() as f64 * 0.10).round() as usize;
        // A handful of cells can be skipped when corruption is impossible,
        // but the bulk of the budget must be spent.
        assert!(
            dirty.error_count() >= expected * 9 / 10,
            "{}",
            dirty.error_count()
        );
        assert!(dirty.error_count() <= expected);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let clean = big_dataset(100);
        let a = ErrorInjector::new(ErrorSpec::new(0.2, 42)).inject(&clean);
        let b = ErrorInjector::new(ErrorSpec::new(0.2, 42)).inject(&clean);
        assert_eq!(a.dirty, b.dirty);
        assert_eq!(a.errors, b.errors);
        let c = ErrorInjector::new(ErrorSpec::new(0.2, 43)).inject(&clean);
        assert_ne!(a.dirty, c.dirty);
    }

    #[test]
    fn replacement_ratio_extremes() {
        let clean = big_dataset(300);
        let all_typos =
            ErrorInjector::new(ErrorSpec::new(0.1, 1).with_replacement_ratio(0.0)).inject(&clean);
        assert!(all_typos
            .errors
            .iter()
            .all(|e| e.error_type == ErrorType::Typo));

        let all_repl =
            ErrorInjector::new(ErrorSpec::new(0.1, 1).with_replacement_ratio(1.0)).inject(&clean);
        assert!(all_repl
            .errors
            .iter()
            .all(|e| e.error_type == ErrorType::Replacement));
    }

    #[test]
    fn attribute_restriction_is_respected() {
        let clean = big_dataset(200);
        let only_city = vec![AttrId(0)];
        let dirty = ErrorInjector::new(ErrorSpec::new(0.3, 5).on_attributes(only_city.clone()))
            .inject(&clean);
        assert!(!dirty.errors.is_empty());
        assert!(dirty.errors.iter().all(|e| e.cell.attr == AttrId(0)));
    }

    #[test]
    fn dirty_differs_from_clean_exactly_at_injected_cells() {
        let clean = big_dataset(150);
        let dirty = ErrorInjector::new(ErrorSpec::new(0.15, 9)).inject(&clean);
        let diff: BTreeSet<CellRef> = dirty.dirty.diff_cells(&clean).into_iter().collect();
        assert_eq!(diff, dirty.erroneous_cells());
    }

    #[test]
    fn typos_shorten_by_one_character() {
        let clean = big_dataset(200);
        let dirty =
            ErrorInjector::new(ErrorSpec::new(0.2, 11).with_replacement_ratio(0.0)).inject(&clean);
        for e in &dirty.errors {
            assert_eq!(
                e.dirty.chars().count() + 1,
                e.original.chars().count(),
                "{e:?}"
            );
        }
    }

    #[test]
    fn replacements_stay_in_domain() {
        let clean = big_dataset(200);
        let dirty =
            ErrorInjector::new(ErrorSpec::new(0.2, 13).with_replacement_ratio(1.0)).inject(&clean);
        for e in &dirty.errors {
            let domain = clean.domain(e.cell.attr);
            assert!(domain.contains(&e.dirty), "{e:?} not in domain");
            assert_ne!(e.dirty, e.original);
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let clean = big_dataset(50);
        let dirty = ErrorInjector::new(ErrorSpec::new(0.0, 3)).inject(&clean);
        assert_eq!(dirty.error_count(), 0);
        assert_eq!(dirty.dirty, clean);
    }

    proptest! {
        #[test]
        fn error_rate_never_exceeds_requested(rate in 0.0f64..0.5, seed in 0u64..1000) {
            let clean = big_dataset(120);
            let dirty = ErrorInjector::new(ErrorSpec::new(rate, seed)).inject(&clean);
            let budget = (clean.cell_count() as f64 * rate).round() as usize;
            prop_assert!(dirty.error_count() <= budget);
        }

        #[test]
        fn ground_truth_is_never_mutated(rate in 0.0f64..0.4, seed in 0u64..500) {
            let clean = big_dataset(80);
            let dirty = ErrorInjector::new(ErrorSpec::new(rate, seed)).inject(&clean);
            prop_assert_eq!(&dirty.clean, &clean);
        }
    }
}
