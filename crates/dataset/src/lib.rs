//! Relational substrate for MLNClean: schemas, tuples, datasets, cell-level
//! provenance, CSV I/O, reproducible error injection, and the cleaning
//! quality metrics used throughout the paper's evaluation (F1 as well as the
//! component-level Precision/Recall-A/R/F measures).
//!
//! The dataset model is deliberately simple — an in-memory table whose cells
//! are all strings — because MLNClean (like most constraint-based cleaners)
//! treats attribute values as strings and reasons about them through
//! integrity constraints and string distances.  Storage, however, is
//! **interned and columnar**: every distinct value lives once in a
//! [`ValuePool`] and cells are `Vec<ValueId>` columns, so equality, grouping
//! and cross-worker shipping work on `u32` ids while row-oriented call sites
//! keep the [`Tuple`] view API.

pub mod cell;
pub mod csv;
pub mod dataset;
pub mod errors;
pub mod metrics;
pub mod pool;
pub mod schema;
pub mod spill;
pub mod tuple;

pub use cell::CellRef;
pub use dataset::{ArityMismatch, Dataset, SchemaMismatch};
pub use errors::{DirtyDataset, ErrorInjector, ErrorSpec, ErrorType, InjectedError};
pub use metrics::{ComponentMetrics, RepairEvaluation, RepairReport};
pub use pool::{ValueId, ValuePool};
pub use schema::{AttrId, Schema};
pub use spill::{SpillDir, SpillSlot};
pub use tuple::{remap_ids_after_removal, Tuple, TupleId};

/// Build the six-tuple hospital sample of Table 1 in the paper, used by the
/// documentation examples and the paper-walkthrough integration tests.
pub fn sample_hospital_dataset() -> Dataset {
    let schema = Schema::new(&["HN", "CT", "ST", "PN"]);
    let rows = [
        ["ALABAMA", "DOTHAN", "AL", "3347938701"],
        ["ALABAMA", "DOTH", "AL", "3347938701"],
        ["ELIZA", "DOTHAN", "AL", "2567638410"],
        ["ELIZA", "BOAZ", "AK", "2567688400"],
        ["ELIZA", "BOAZ", "AL", "2567688400"],
        ["ELIZA", "BOAZ", "AL", "2567688400"],
    ];
    let mut ds = Dataset::new(schema);
    for row in rows {
        ds.push_row(row.iter().map(|s| s.to_string()).collect())
            .expect("sample rows match the schema");
    }
    ds
}

/// Ground-truth version of the Table 1 sample: every cell repaired to the
/// values the paper's running example treats as correct.
pub fn sample_hospital_truth() -> Dataset {
    let schema = Schema::new(&["HN", "CT", "ST", "PN"]);
    let rows = [
        ["ALABAMA", "DOTHAN", "AL", "3347938701"],
        ["ALABAMA", "DOTHAN", "AL", "3347938701"],
        ["ELIZA", "BOAZ", "AL", "2567688400"],
        ["ELIZA", "BOAZ", "AL", "2567688400"],
        ["ELIZA", "BOAZ", "AL", "2567688400"],
        ["ELIZA", "BOAZ", "AL", "2567688400"],
    ];
    let mut ds = Dataset::new(schema);
    for row in rows {
        ds.push_row(row.iter().map(|s| s.to_string()).collect())
            .expect("sample rows match the schema");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_dataset_matches_paper_table1() {
        let ds = sample_hospital_dataset();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.schema().arity(), 4);
        assert_eq!(
            ds.value(TupleId(1), ds.schema().attr_id("CT").unwrap()),
            "DOTH"
        );
        assert_eq!(
            ds.value(TupleId(3), ds.schema().attr_id("ST").unwrap()),
            "AK"
        );
    }

    #[test]
    fn truth_and_dirty_have_same_shape() {
        let dirty = sample_hospital_dataset();
        let truth = sample_hospital_truth();
        assert_eq!(dirty.len(), truth.len());
        assert_eq!(dirty.schema(), truth.schema());
    }
}
