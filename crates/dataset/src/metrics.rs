//! Cleaning-quality metrics.
//!
//! The paper's headline metric (Eq. 7) is the F1-score over repaired cells:
//!
//! * **precision** — correctly repaired attribute values / all updated
//!   attribute values;
//! * **recall** — correctly repaired attribute values / all erroneous values.
//!
//! Section 7.3 additionally defines per-component precision/recall pairs
//! (Precision-A / Recall-A for AGP, -R for RSC, -F for FSCR); those are all
//! plain count ratios, so they share the [`ComponentMetrics`] type here.

use crate::dataset::Dataset;
use crate::errors::DirtyDataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Precision / recall / F1 computed from raw counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentMetrics {
    /// Number of correct decisions (e.g. correctly repaired cells).
    pub correct: usize,
    /// Number of decisions made (e.g. cells updated) — the precision
    /// denominator.
    pub attempted: usize,
    /// Number of decisions that should have been made (e.g. truly erroneous
    /// cells) — the recall denominator.
    pub relevant: usize,
}

impl ComponentMetrics {
    /// Build metrics from counts.
    pub fn from_counts(correct: usize, attempted: usize, relevant: usize) -> Self {
        ComponentMetrics {
            correct,
            attempted,
            relevant,
        }
    }

    /// Precision (`1.0` when nothing was attempted — no wrong decision was
    /// made).
    pub fn precision(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.correct as f64 / self.attempted as f64
        }
    }

    /// Recall (`1.0` when there was nothing to find).
    pub fn recall(&self) -> f64 {
        if self.relevant == 0 {
            1.0
        } else {
            self.correct as f64 / self.relevant as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for ComponentMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision={:.3} recall={:.3} f1={:.3} ({}/{} attempted, {} relevant)",
            self.precision(),
            self.recall(),
            self.f1(),
            self.correct,
            self.attempted,
            self.relevant
        )
    }
}

/// Full repair report: cell-level counts plus derived precision/recall/F1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Cells whose value in the repaired dataset differs from the dirty one.
    pub updated_cells: usize,
    /// Updated cells whose repaired value equals the ground truth.
    pub correctly_repaired: usize,
    /// Cells that were erroneous in the dirty dataset.
    pub erroneous_cells: usize,
    /// Erroneous cells that remain wrong after repair.
    pub remaining_errors: usize,
    /// Clean cells that the repair corrupted (false positives that also
    /// changed the value away from the truth).
    pub newly_introduced_errors: usize,
}

impl RepairReport {
    /// Precision per Eq. 7: correctly repaired / updated.
    pub fn precision(&self) -> f64 {
        ComponentMetrics::from_counts(self.correctly_repaired, self.updated_cells, 0).precision()
    }

    /// Recall per Eq. 7: correctly repaired / erroneous.
    pub fn recall(&self) -> f64 {
        if self.erroneous_cells == 0 {
            1.0
        } else {
            self.correctly_repaired as f64 / self.erroneous_cells as f64
        }
    }

    /// F1-score per Eq. 7.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "F1={:.3} (precision={:.3}, recall={:.3}; {} updated, {} correct, {} erroneous, {} introduced)",
            self.f1(),
            self.precision(),
            self.recall(),
            self.updated_cells,
            self.correctly_repaired,
            self.erroneous_cells,
            self.newly_introduced_errors
        )
    }
}

/// Evaluator comparing a repaired dataset against the dirty/clean pair.
pub struct RepairEvaluation;

impl RepairEvaluation {
    /// Evaluate `repaired` against the ground truth of `dirty`.
    ///
    /// The repaired dataset must have the same shape (tuples × attributes) as
    /// the dirty one; evaluation happens *before* duplicate elimination so
    /// every original tuple still has a row.
    pub fn evaluate(dirty: &DirtyDataset, repaired: &Dataset) -> RepairReport {
        assert_eq!(
            dirty.dirty.len(),
            repaired.len(),
            "repaired dataset must keep one row per original tuple for evaluation"
        );
        assert_eq!(dirty.dirty.schema().arity(), repaired.schema().arity());

        let erroneous = dirty.erroneous_cells();
        let mut updated_cells = 0usize;
        let mut correctly_repaired = 0usize;
        let mut remaining_errors = 0usize;
        let mut newly_introduced = 0usize;

        for t in dirty.dirty.tuple_ids() {
            for a in dirty.dirty.schema().attr_ids() {
                let cell = crate::cell::CellRef::new(t, a);
                let dirty_v = dirty.dirty.value(t, a);
                let truth_v = dirty.clean.value(t, a);
                let repaired_v = repaired.value(t, a);

                let was_updated = repaired_v != dirty_v;
                let was_erroneous = erroneous.contains(&cell);

                if was_updated {
                    updated_cells += 1;
                    if repaired_v == truth_v {
                        // Counted as a correct repair only if the cell was
                        // actually dirty; rewriting an already-clean cell to
                        // itself cannot happen (was_updated implies change).
                        if was_erroneous {
                            correctly_repaired += 1;
                        }
                    } else if !was_erroneous {
                        newly_introduced += 1;
                    }
                }
                if was_erroneous && repaired_v != truth_v {
                    remaining_errors += 1;
                }
            }
        }

        RepairReport {
            updated_cells,
            correctly_repaired,
            erroneous_cells: erroneous.len(),
            remaining_errors,
            newly_introduced_errors: newly_introduced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::{ErrorInjector, ErrorSpec};
    use crate::schema::Schema;
    use proptest::prelude::*;

    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::new(Schema::new(&["a", "b"]));
        for i in 0..20 {
            ds.push_row(vec![format!("val{}", i % 4), format!("w{}", i % 3)])
                .unwrap();
        }
        ds
    }

    #[test]
    fn perfect_repair_scores_one() {
        let clean = toy_dataset();
        let dirty = ErrorInjector::new(ErrorSpec::new(0.2, 1)).inject(&clean);
        let report = RepairEvaluation::evaluate(&dirty, &clean);
        assert_eq!(report.f1(), 1.0);
        assert_eq!(report.remaining_errors, 0);
        assert_eq!(report.newly_introduced_errors, 0);
    }

    #[test]
    fn no_repair_scores_zero_recall() {
        let clean = toy_dataset();
        let dirty = ErrorInjector::new(ErrorSpec::new(0.2, 2)).inject(&clean);
        assert!(dirty.error_count() > 0);
        let report = RepairEvaluation::evaluate(&dirty, &dirty.dirty);
        assert_eq!(report.updated_cells, 0);
        assert_eq!(report.recall(), 0.0);
        assert_eq!(report.f1(), 0.0);
        // Precision is vacuously 1 when nothing was updated.
        assert_eq!(report.precision(), 1.0);
    }

    #[test]
    fn corrupting_repair_is_penalized() {
        let clean = toy_dataset();
        let dirty = ErrorInjector::new(ErrorSpec::new(0.1, 3)).inject(&clean);
        // "Repair" by wrecking a clean cell.
        let mut repaired = dirty.dirty.clone();
        let clean_cell = dirty
            .dirty
            .cells()
            .map(|(c, _)| c)
            .find(|c| !dirty.erroneous_cells().contains(c))
            .unwrap();
        repaired.set_value(clean_cell.tuple, clean_cell.attr, "GARBAGE");
        let report = RepairEvaluation::evaluate(&dirty, &repaired);
        assert_eq!(report.newly_introduced_errors, 1);
        assert_eq!(report.correctly_repaired, 0);
        assert!(report.precision() < 1.0);
    }

    #[test]
    fn partial_repair_counts() {
        let clean = toy_dataset();
        let dirty = ErrorInjector::new(ErrorSpec::new(0.2, 4)).inject(&clean);
        let errors = dirty.errors.clone();
        assert!(errors.len() >= 2);
        // Repair exactly the first injected error.
        let mut repaired = dirty.dirty.clone();
        let e = &errors[0];
        repaired.set_value(e.cell.tuple, e.cell.attr, e.original.clone());
        let report = RepairEvaluation::evaluate(&dirty, &repaired);
        assert_eq!(report.updated_cells, 1);
        assert_eq!(report.correctly_repaired, 1);
        assert_eq!(report.precision(), 1.0);
        assert!((report.recall() - 1.0 / errors.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn component_metrics_edge_cases() {
        let empty = ComponentMetrics::from_counts(0, 0, 0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);

        let hopeless = ComponentMetrics::from_counts(0, 10, 10);
        assert_eq!(hopeless.precision(), 0.0);
        assert_eq!(hopeless.recall(), 0.0);
        assert_eq!(hopeless.f1(), 0.0);

        let half = ComponentMetrics::from_counts(5, 10, 10);
        assert_eq!(half.precision(), 0.5);
        assert_eq!(half.recall(), 0.5);
        assert!((half.f1() - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn f1_is_bounded(correct in 0usize..50, extra_attempted in 0usize..50, extra_relevant in 0usize..50) {
            let m = ComponentMetrics::from_counts(correct, correct + extra_attempted, correct + extra_relevant);
            prop_assert!((0.0..=1.0).contains(&m.precision()));
            prop_assert!((0.0..=1.0).contains(&m.recall()));
            prop_assert!((0.0..=1.0).contains(&m.f1()));
            prop_assert!(m.f1() <= m.precision().max(m.recall()) + 1e-12);
            prop_assert!(m.f1() + 1e-12 >= m.precision().min(m.recall()) * 2.0 * m.precision().max(m.recall()) / (m.precision() + m.recall() + 1e-12) - 1e-9);
        }
    }
}
