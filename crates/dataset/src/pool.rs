//! The shared value pool: every distinct attribute value is stored exactly
//! once and referred to by a compact, copyable [`ValueId`].
//!
//! # Why interning
//!
//! MLNClean's Stage-I cost is dominated by comparing and regrouping attribute
//! values: the two-layer MLN index groups tuples by projected value vectors,
//! AGP/RSC compare γs by string distance, and the distributed runner ships
//! rows between workers.  Interning turns all equality work into `u32`
//! compares, makes group keys cheaply `Ord`/`Hash`, and lets distance results
//! be cached per *value pair* instead of per *occurrence pair*.
//!
//! # Id stability under in-place repairs
//!
//! Ids are assigned densely in first-appearance order and are **never reused
//! or renumbered**.  A repair that rewrites a cell (e.g. `DOTH → DOTHAN`)
//! only swaps which id the cell stores; the old value stays in the pool so
//! every previously handed-out `ValueId` (in γs, provenance records, cached
//! distances, partition snapshots) remains valid for the lifetime of the
//! pool.  New values introduced by a repair are appended, so a pool snapshot
//! taken at time *t* agrees with any later version of the same pool on all
//! ids below its length — the invariant the distributed gather phase relies
//! on.
//!
//! # Concurrency
//!
//! Lookups ([`ValuePool::resolve`], [`ValuePool::lookup`]) take `&self` and
//! touch no interior mutability, so a pool shared behind a `&` reference can
//! be read lock-free from any number of worker threads (the values are
//! `Arc<str>`, making clones of the pool cheap snapshots that share the
//! underlying string storage).  Interning requires `&mut self`;
//! [`ValuePool::intern_all`] batches it for whole rows or columns.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of an interned value within a [`ValuePool`].
///
/// Ids are dense (`0..pool.len()`), stable for the lifetime of the pool, and
/// ordered by first appearance — **not** lexicographically.  Code that needs
/// string order (e.g. the deterministic group ordering of the MLN index)
/// must resolve and compare the strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The raw index of this value in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An append-only interner mapping strings to stable [`ValueId`]s.
#[derive(Clone, Default)]
pub struct ValuePool {
    values: Vec<Arc<str>>,
    by_value: HashMap<Arc<str>, ValueId>,
}

impl fmt::Debug for ValuePool {
    /// Deterministic output: only the id-ordered value list (the reverse map
    /// is derived state whose hash order would make equal pools format
    /// differently).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValuePool")
            .field("values", &self.values)
            .finish()
    }
}

impl ValuePool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty pool sized for roughly `capacity` distinct values.
    pub fn with_capacity(capacity: usize) -> Self {
        ValuePool {
            values: Vec::with_capacity(capacity),
            by_value: HashMap::with_capacity(capacity),
        }
    }

    /// Intern `value`, returning its id (existing or newly assigned).
    pub fn intern(&mut self, value: &str) -> ValueId {
        if let Some(&id) = self.by_value.get(value) {
            return id;
        }
        let arc: Arc<str> = Arc::from(value);
        let id = ValueId(
            u32::try_from(self.values.len()).expect("value pool overflow (>4G distinct values)"),
        );
        self.values.push(Arc::clone(&arc));
        self.by_value.insert(arc, id);
        id
    }

    /// Catch this pool up to an append-only descendant of itself by copying
    /// the descendant's tail of new values.
    ///
    /// Because ids are assigned densely in first-appearance order and never
    /// renumbered, a snapshot taken at time *t* agrees with any later version
    /// of the same pool on all ids below its length — so syncing is a pure
    /// append of `Arc<str>` clones (no re-hashing of the shared prefix, no
    /// clone of the whole map).  This is what lets long-lived sessions keep
    /// several pool snapshots (cleaned index, repaired dataset) in step with
    /// the dirty dataset's pool at O(new values) per change set instead of
    /// O(pool) clones.
    pub fn sync_from(&mut self, descendant: &ValuePool) {
        debug_assert!(
            descendant.values.len() >= self.values.len(),
            "sync_from target must be an append-only descendant"
        );
        for value in &descendant.values[self.values.len()..] {
            let id = ValueId(
                u32::try_from(self.values.len())
                    .expect("value pool overflow (>4G distinct values)"),
            );
            self.values.push(Arc::clone(value));
            self.by_value.insert(Arc::clone(value), id);
        }
    }

    /// Intern a batch of values, returning their ids in order (a convenience
    /// over calling [`ValuePool::intern`] per value — same cost, one hash
    /// probe per value).
    pub fn intern_all<I, S>(&mut self, values: I) -> Vec<ValueId>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        values
            .into_iter()
            .map(|v| self.intern(v.as_ref()))
            .collect()
    }

    /// Look up a value without interning it.
    pub fn lookup(&self, value: &str) -> Option<ValueId> {
        self.by_value.get(value).copied()
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this pool (or a snapshot ancestor of
    /// it).
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.values[id.index()]
    }

    /// The string behind `id`, or `None` if the id is out of range.
    pub fn get(&self, id: ValueId) -> Option<&str> {
        self.values.get(id.index()).map(|s| &**s)
    }

    /// Resolve a slice of ids in order.
    pub fn resolve_all<'p>(&'p self, ids: &[ValueId]) -> Vec<&'p str> {
        ids.iter().map(|&id| self.resolve(id)).collect()
    }

    /// Whether `id` is in range for this pool.  This is a pure index-range
    /// check: it cannot tell an id issued by this pool from one issued by an
    /// unrelated pool that happens to be at least as large — callers moving
    /// ids between pools must guarantee a shared snapshot ancestry themselves
    /// (as the distributed gather phase does with its prefix-length bound).
    pub fn contains(&self, id: ValueId) -> bool {
        id.index() < self.values.len()
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total bytes of distinct string payload held by the pool (the
    /// memory-side statistic the bench smoke run records).
    pub fn string_bytes(&self) -> usize {
        self.values.iter().map(|v| v.len()).sum()
    }

    /// Iterate over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId(i as u32), &**v))
    }
}

impl PartialEq for ValuePool {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl Eq for ValuePool {}

/// Serialized as the id-ordered value list only; the reverse map is derived
/// state and is rebuilt on deserialization.  Because ids are dense in
/// first-appearance order and the stored list is duplicate-free, re-interning
/// the list reassigns every value its original id, so the round trip is
/// exact.
impl Serialize for ValuePool {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(self.values.len()))?;
        for value in &self.values {
            seq.serialize_element(&**value)?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for ValuePool {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let values = Vec::<String>::deserialize(deserializer)?;
        let mut pool = ValuePool::with_capacity(values.len());
        for value in &values {
            pool.intern(value);
        }
        if pool.len() != values.len() {
            return Err(serde::de::Error::custom(
                "value pool payload contains duplicate values",
            ));
        }
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut pool = ValuePool::new();
        let a = pool.intern("DOTHAN");
        let b = pool.intern("BOAZ");
        assert_eq!(a, ValueId(0));
        assert_eq!(b, ValueId(1));
        assert_eq!(pool.intern("DOTHAN"), a);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a), "DOTHAN");
        assert_eq!(pool.lookup("BOAZ"), Some(b));
        assert_eq!(pool.lookup("AL"), None);
    }

    #[test]
    fn batch_interning_matches_sequential() {
        let mut batch = ValuePool::new();
        let ids = batch.intern_all(["a", "b", "a", "c"]);
        let mut seq = ValuePool::new();
        let expected: Vec<ValueId> = ["a", "b", "a", "c"].iter().map(|v| seq.intern(v)).collect();
        assert_eq!(ids, expected);
        assert_eq!(batch, seq);
    }

    #[test]
    fn snapshot_clone_shares_ids() {
        let mut pool = ValuePool::new();
        let a = pool.intern("AL");
        let snapshot = pool.clone();
        let b = pool.intern("AK"); // extends the original only
        assert_eq!(snapshot.resolve(a), "AL");
        assert!(snapshot.contains(a));
        assert!(!snapshot.contains(b));
        assert_eq!(pool.resolve(b), "AK");
    }

    #[test]
    fn iter_is_in_id_order() {
        let mut pool = ValuePool::new();
        pool.intern_all(["x", "y", "z"]);
        let pairs: Vec<(ValueId, &str)> = pool.iter().collect();
        assert_eq!(
            pairs,
            vec![(ValueId(0), "x"), (ValueId(1), "y"), (ValueId(2), "z")]
        );
        assert_eq!(pool.string_bytes(), 3);
    }

    proptest! {
        #[test]
        fn intern_resolve_round_trips(values in proptest::collection::vec("\\PC{0,24}", 0..64)) {
            let mut pool = ValuePool::new();
            let ids: Vec<ValueId> = values.iter().map(|v| pool.intern(v)).collect();
            // Round-trip: every id resolves back to exactly the interned string.
            for (value, id) in values.iter().zip(&ids) {
                prop_assert_eq!(pool.resolve(*id), value.as_str());
                prop_assert_eq!(pool.lookup(value), Some(*id));
            }
            // Injectivity: equal strings share an id, distinct strings never do.
            for (i, a) in values.iter().enumerate() {
                for (j, b) in values.iter().enumerate() {
                    prop_assert_eq!(ids[i] == ids[j], a == b, "{} vs {}", i, j);
                }
            }
            // Density: ids cover 0..distinct-count.
            let distinct: std::collections::BTreeSet<&String> = values.iter().collect();
            prop_assert_eq!(pool.len(), distinct.len());
        }
    }
}
