//! Relation schemas: an ordered list of named attributes.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an attribute (its position in the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The position of the attribute within its schema.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// An ordered, named list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<String>,
    by_name: HashMap<String, usize>,
}

/// Serialized as the attribute-name list only; the name→position map is
/// derived state and is rebuilt on deserialization (unlike a derived impl
/// with `#[serde(skip)]`, which would leave it empty and break name lookups
/// on decoded schemas).
impl Serialize for Schema {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.attributes.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Schema {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let attributes = Vec::<String>::deserialize(deserializer)?;
        let mut by_name = HashMap::with_capacity(attributes.len());
        for (idx, name) in attributes.iter().enumerate() {
            if by_name.insert(name.clone(), idx).is_some() {
                return Err(serde::de::Error::custom(format!(
                    "duplicate attribute name {name:?} in serialized schema"
                )));
            }
        }
        Ok(Schema {
            attributes,
            by_name,
        })
    }
}

impl Schema {
    /// Create a schema from attribute names.
    ///
    /// # Panics
    /// Panics if two attributes share a name: a relation schema must have
    /// distinct attribute names.
    pub fn new<S: AsRef<str>>(attributes: &[S]) -> Self {
        let attributes: Vec<String> = attributes.iter().map(|s| s.as_ref().to_string()).collect();
        let mut by_name = HashMap::with_capacity(attributes.len());
        for (idx, name) in attributes.iter().enumerate() {
            let prev = by_name.insert(name.clone(), idx);
            assert!(
                prev.is_none(),
                "duplicate attribute name {name:?} in schema"
            );
        }
        Schema {
            attributes,
            by_name,
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Name of the attribute `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this schema.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attributes[id.0]
    }

    /// Look up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        // `by_name` is skipped by serde; fall back to a scan if it is empty
        // but attributes exist (i.e. the schema was deserialized).
        if self.by_name.len() == self.attributes.len() {
            self.by_name.get(name).copied().map(AttrId)
        } else {
            self.attributes.iter().position(|a| a == name).map(AttrId)
        }
    }

    /// All attribute ids, in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len()).map(AttrId)
    }

    /// All attribute names, in schema order.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|s| s.as_str())
    }

    /// Whether `id` refers to an attribute of this schema.
    pub fn contains(&self, id: AttrId) -> bool {
        id.0 < self.attributes.len()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.attributes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_id() {
        let s = Schema::new(&["HN", "CT", "ST", "PN"]);
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr_id("CT"), Some(AttrId(1)));
        assert_eq!(s.attr_id("PN"), Some(AttrId(3)));
        assert_eq!(s.attr_id("missing"), None);
        assert_eq!(s.attr_name(AttrId(2)), "ST");
    }

    #[test]
    fn attr_ids_are_ordered() {
        let s = Schema::new(&["a", "b", "c"]);
        let ids: Vec<usize> = s.attr_ids().map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let names: Vec<&str> = s.attr_names().collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_panic() {
        Schema::new(&["a", "a"]);
    }

    #[test]
    fn display_formats() {
        let s = Schema::new(&["x", "y"]);
        assert_eq!(s.to_string(), "(x, y)");
        assert_eq!(AttrId(3).to_string(), "A3");
    }

    #[test]
    fn contains_checks_range() {
        let s = Schema::new(&["a", "b"]);
        assert!(s.contains(AttrId(1)));
        assert!(!s.contains(AttrId(2)));
    }
}
