//! Disk-backed spill segments for memory-budgeted sessions.
//!
//! The out-of-core session work (see `mlnclean::session`) sheds cold state —
//! per-block γ caches, fusion memos, coordinator id tables — to disk when a
//! memory budget is in force.  This module owns the file
//! plumbing and nothing else: callers hand it opaque byte blobs (already
//! encoded through the `mlnw` codec) and get back a [`SpillSlot`] handle that
//! faults the blob back in on demand.
//!
//! Lifetime rules, chosen so `#[derive(Clone)]` on the owning session stays
//! sound:
//!
//! * a [`SpillDir`] is shared by reference counting; the directory is
//!   removed (best-effort) when the last handle drops;
//! * a [`SpillSlot`] likewise shares its file; cloning a session clones the
//!   handle, not the bytes, and re-spilling writes a *new* file — slots are
//!   immutable once written;
//! * all cleanup is best-effort: spill files live under the OS temp
//!   directory, so a leaked file is reclaimed by the platform, never a
//!   correctness problem.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide counter making spill directory names unique within a run.
static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temp directory holding spill segments, removed when the last clone of
/// the handle drops.
#[derive(Debug, Clone)]
pub struct SpillDir {
    inner: Arc<DirInner>,
}

#[derive(Debug)]
struct DirInner {
    path: PathBuf,
    /// Names files within the directory (slots are immutable, so every
    /// store gets a fresh name).
    next_slot: AtomicU64,
}

impl Drop for DirInner {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

impl SpillDir {
    /// Open a fresh spill directory under the OS temp dir.
    pub fn new() -> io::Result<SpillDir> {
        Self::under(&std::env::temp_dir())
    }

    /// Open a fresh spill directory under `base` (created if missing).
    pub fn under(base: &Path) -> io::Result<SpillDir> {
        let name = format!(
            "mlnclean-spill-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed),
        );
        let path = base.join(name);
        std::fs::create_dir_all(&path)?;
        Ok(SpillDir {
            inner: Arc::new(DirInner {
                path,
                next_slot: AtomicU64::new(0),
            }),
        })
    }

    /// Where the segments live.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Write `bytes` as a new immutable segment and return its handle.
    pub fn store(&self, bytes: &[u8]) -> io::Result<SpillSlot> {
        let id = self.inner.next_slot.fetch_add(1, Ordering::Relaxed);
        let path = self.inner.path.join(format!("seg-{id}.mlnw"));
        std::fs::write(&path, bytes)?;
        Ok(SpillSlot {
            inner: Arc::new(SlotInner {
                path,
                len: bytes.len(),
                _dir: self.inner.clone(),
            }),
        })
    }
}

/// Handle to one immutable spilled segment; the file is deleted when the
/// last clone drops.
#[derive(Debug, Clone)]
pub struct SpillSlot {
    inner: Arc<SlotInner>,
}

#[derive(Debug)]
struct SlotInner {
    path: PathBuf,
    len: usize,
    /// Keeps the owning directory alive at least as long as its segments.
    _dir: Arc<DirInner>,
}

impl Drop for SlotInner {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl SpillSlot {
    /// Fault the segment back in.
    pub fn load(&self) -> io::Result<Vec<u8>> {
        std::fs::read(&self.inner.path)
    }

    /// Size of the segment on disk, in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_load_round_trip() {
        let dir = SpillDir::new().expect("temp dir is writable");
        let slot = dir.store(b"gamma state").unwrap();
        assert_eq!(slot.len(), 11);
        assert!(!slot.is_empty());
        assert_eq!(slot.load().unwrap(), b"gamma state");
        // Slots are independent files.
        let other = dir.store(b"").unwrap();
        assert!(other.is_empty());
        assert_eq!(other.load().unwrap(), Vec::<u8>::new());
        assert_eq!(slot.load().unwrap(), b"gamma state");
    }

    #[test]
    fn clones_share_the_file_and_cleanup_is_on_last_drop() {
        let dir = SpillDir::new().unwrap();
        let slot = dir.store(b"shared").unwrap();
        let path = dir.path().join("seg-0.mlnw");
        assert!(path.exists());
        let clone = slot.clone();
        drop(slot);
        // First drop must not delete the file out from under the clone.
        assert!(path.exists());
        assert_eq!(clone.load().unwrap(), b"shared");
        drop(clone);
        assert!(!path.exists());
    }

    #[test]
    fn directory_is_removed_with_its_last_handle() {
        let dir = SpillDir::new().unwrap();
        let path = dir.path().to_path_buf();
        let slot = dir.store(b"x").unwrap();
        drop(dir);
        // A live slot keeps the directory alive.
        assert!(path.exists());
        drop(slot);
        assert!(!path.exists());
    }
}
