//! Tuples: a row of string values identified by a stable [`TupleId`].

use crate::schema::AttrId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a tuple within a dataset.  Tuple ids are assigned on
/// insertion and never reused, so they survive cleaning operations that
/// rewrite values in place and deduplication passes that mark tuples removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId(pub usize);

impl TupleId {
    /// The raw index of this tuple.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0 + 1)
    }
}

/// A row of attribute values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    id: TupleId,
    values: Vec<String>,
}

impl Tuple {
    /// Create a tuple with the given id and values.
    pub fn new(id: TupleId, values: Vec<String>) -> Self {
        Tuple { id, values }
    }

    /// The stable identifier of this tuple.
    pub fn id(&self) -> TupleId {
        self.id
    }

    /// Value of the attribute `attr`.
    pub fn value(&self, attr: AttrId) -> &str {
        &self.values[attr.0]
    }

    /// Mutable access for in-place repairs.
    pub fn set_value(&mut self, attr: AttrId, value: impl Into<String>) {
        self.values[attr.0] = value.into();
    }

    /// All values in schema order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of attributes in the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Project the tuple onto a subset of attributes (in the given order).
    pub fn project(&self, attrs: &[AttrId]) -> Vec<&str> {
        attrs.iter().map(|a| self.value(*a)).collect()
    }

    /// Whether two tuples agree on every attribute value (ignoring the id).
    /// This is the duplicate test MLNClean applies after conflict resolution.
    pub fn same_values(&self, other: &Tuple) -> bool {
        self.values == other.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.id, self.values.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> Tuple {
        Tuple::new(
            TupleId(0),
            vec![
                "ELIZA".into(),
                "BOAZ".into(),
                "AL".into(),
                "2567688400".into(),
            ],
        )
    }

    #[test]
    fn value_access_and_update() {
        let mut t = tuple();
        assert_eq!(t.value(AttrId(1)), "BOAZ");
        t.set_value(AttrId(1), "DOTHAN");
        assert_eq!(t.value(AttrId(1)), "DOTHAN");
        assert_eq!(t.arity(), 4);
    }

    #[test]
    fn projection_preserves_order() {
        let t = tuple();
        assert_eq!(t.project(&[AttrId(2), AttrId(0)]), vec!["AL", "ELIZA"]);
    }

    #[test]
    fn same_values_ignores_id() {
        let a = tuple();
        let mut b = tuple();
        b = Tuple::new(TupleId(5), b.values().to_vec());
        assert!(a.same_values(&b));
        b.set_value(AttrId(0), "ALABAMA");
        assert!(!a.same_values(&b));
    }

    #[test]
    fn display_is_one_indexed_like_the_paper() {
        assert_eq!(TupleId(0).to_string(), "t1");
        assert_eq!(TupleId(5).to_string(), "t6");
    }
}
