//! Tuples: a zero-copy row view over the columnar [`Dataset`], identified by
//! a stable [`TupleId`].

use crate::dataset::Dataset;
use crate::pool::ValueId;
use crate::schema::AttrId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a tuple within a dataset.  Tuple ids are assigned on
/// insertion and never reused, so they survive cleaning operations that
/// rewrite values in place and deduplication passes that mark tuples removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId(pub usize);

impl TupleId {
    /// The raw index of this tuple.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0 + 1)
    }
}

/// Remap a tuple-id list past a row removal: ids matching a removed row are
/// dropped, and every surviving id shifts down by the number of removed rows
/// below it — the id-space compaction that follows
/// [`Dataset::remove_rows`](crate::Dataset::remove_rows).  `removed` must be
/// sorted, deduplicated pre-removal row indices.  This is the single source
/// of truth for post-removal renumbering; every structure caching `TupleId`s
/// across a compaction (MLN-index γs, provenance records) goes through it.
pub fn remap_ids_after_removal(ids: &mut Vec<TupleId>, removed: &[usize]) {
    debug_assert!(removed.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    ids.retain_mut(|t| {
        let below = removed.partition_point(|&r| r < t.0);
        if removed.get(below).is_some_and(|&r| r == t.0) {
            return false;
        }
        t.0 -= below;
        true
    });
}

/// A row view: one tuple of a dataset, read through the columnar storage.
///
/// `Tuple` is a cheap `Copy` handle (a row index plus a dataset reference);
/// per-cell access resolves through the dataset's value pool without cloning
/// strings.  Comparisons between tuples of the same dataset (or of datasets
/// sharing a pool snapshot) reduce to [`ValueId`] equality.
#[derive(Clone, Copy)]
pub struct Tuple<'a> {
    id: TupleId,
    ds: &'a Dataset,
}

impl<'a> Tuple<'a> {
    pub(crate) fn new(id: TupleId, ds: &'a Dataset) -> Self {
        Tuple { id, ds }
    }

    /// The stable identifier of this tuple.
    pub fn id(&self) -> TupleId {
        self.id
    }

    /// Value of the attribute `attr`.
    pub fn value(&self, attr: AttrId) -> &'a str {
        self.ds.value(self.id, attr)
    }

    /// Interned id of the attribute `attr`'s value.
    pub fn value_id(&self, attr: AttrId) -> ValueId {
        self.ds.value_id(self.id, attr)
    }

    /// All values in schema order (materialized as string slices).
    pub fn values(&self) -> Vec<&'a str> {
        (0..self.arity()).map(|a| self.value(AttrId(a))).collect()
    }

    /// All interned ids in schema order.
    pub fn value_ids(&self) -> Vec<ValueId> {
        self.ds.row_ids(self.id)
    }

    /// All values in schema order as owned strings (for crossing pool
    /// boundaries).
    pub fn owned_values(&self) -> Vec<String> {
        self.values().into_iter().map(str::to_string).collect()
    }

    /// Number of attributes in the tuple.
    pub fn arity(&self) -> usize {
        self.ds.schema().arity()
    }

    /// Project the tuple onto a subset of attributes (in the given order).
    pub fn project(&self, attrs: &[AttrId]) -> Vec<&'a str> {
        attrs.iter().map(|&a| self.value(a)).collect()
    }

    /// Project the tuple onto a subset of attributes as interned ids.
    pub fn project_ids(&self, attrs: &[AttrId]) -> Vec<ValueId> {
        attrs.iter().map(|&a| self.value_id(a)).collect()
    }

    /// Whether two tuples agree on every attribute value (ignoring the id).
    /// This is the duplicate test MLNClean applies after conflict resolution.
    /// Within one dataset the comparison is pure id equality; across datasets
    /// it compares strings (still `O(arity)` — checking whether two *pools*
    /// are equal snapshots would cost `O(distinct values)` and is never
    /// cheaper than just comparing the row).
    pub fn same_values(&self, other: &Tuple<'_>) -> bool {
        if self.arity() != other.arity() {
            return false;
        }
        if std::ptr::eq(self.ds, other.ds) {
            (0..self.arity()).all(|a| self.value_id(AttrId(a)) == other.value_id(AttrId(a)))
        } else {
            (0..self.arity()).all(|a| self.value(AttrId(a)) == other.value(AttrId(a)))
        }
    }
}

impl fmt::Debug for Tuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuple")
            .field("id", &self.id)
            .field("values", &self.values())
            .finish()
    }
}

impl PartialEq for Tuple<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.same_values(other)
    }
}

impl fmt::Display for Tuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.id, self.values().join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new(Schema::new(&["HN", "CT", "ST", "PN"]));
        ds.push_row(vec![
            "ELIZA".into(),
            "BOAZ".into(),
            "AL".into(),
            "2567688400".into(),
        ])
        .unwrap();
        ds
    }

    #[test]
    fn value_access_and_update() {
        let mut ds = dataset();
        assert_eq!(ds.tuple(TupleId(0)).value(AttrId(1)), "BOAZ");
        ds.set_value(TupleId(0), AttrId(1), "DOTHAN");
        let t = ds.tuple(TupleId(0));
        assert_eq!(t.value(AttrId(1)), "DOTHAN");
        assert_eq!(t.arity(), 4);
    }

    #[test]
    fn projection_preserves_order() {
        let ds = dataset();
        let t = ds.tuple(TupleId(0));
        assert_eq!(t.project(&[AttrId(2), AttrId(0)]), vec!["AL", "ELIZA"]);
        assert_eq!(
            t.project_ids(&[AttrId(2), AttrId(0)]),
            vec![t.value_id(AttrId(2)), t.value_id(AttrId(0))]
        );
    }

    #[test]
    fn same_values_ignores_id_and_pool() {
        let ds = dataset();
        let mut other = Dataset::new(Schema::new(&["HN", "CT", "ST", "PN"]));
        // Different interning order → different ids, same strings.
        other.intern("2567688400");
        other
            .push_row(vec![
                "ELIZA".into(),
                "BOAZ".into(),
                "AL".into(),
                "2567688400".into(),
            ])
            .unwrap();
        other
            .push_row(vec![
                "ALABAMA".into(),
                "BOAZ".into(),
                "AL".into(),
                "2567688400".into(),
            ])
            .unwrap();
        let a = ds.tuple(TupleId(0));
        assert!(a.same_values(&other.tuple(TupleId(0))));
        assert!(!a.same_values(&other.tuple(TupleId(1))));
    }

    #[test]
    fn remap_after_removal_drops_and_shifts() {
        let mut ids: Vec<TupleId> = [0, 2, 3, 5, 7].into_iter().map(TupleId).collect();
        remap_ids_after_removal(&mut ids, &[2, 6]);
        // 2 dropped; 3 → 2, 5 → 4, 7 → 5; 0 untouched.
        assert_eq!(ids, vec![TupleId(0), TupleId(2), TupleId(4), TupleId(5)]);
        // Empty removal is a no-op.
        let before = ids.clone();
        remap_ids_after_removal(&mut ids, &[]);
        assert_eq!(ids, before);
    }

    #[test]
    fn display_is_one_indexed_like_the_paper() {
        assert_eq!(TupleId(0).to_string(), "t1");
        assert_eq!(TupleId(5).to_string(), "t6");
        let ds = dataset();
        assert_eq!(
            ds.tuple(TupleId(0)).to_string(),
            "t1[ELIZA, BOAZ, AL, 2567688400]"
        );
    }
}
