//! Cosine similarity / distance over character q-gram frequency vectors.
//!
//! Table 5 of the paper compares MLNClean's accuracy under the Levenshtein
//! distance against the cosine distance; the cosine variant suffers when the
//! leading characters of a string are misspelled because the q-gram profile
//! shifts substantially.

use std::collections::HashMap;

/// The q-gram width used for the cosine profile (bigram by default, padded
/// with sentinels so single-character strings still produce grams).
const Q: usize = 2;
const PAD: char = '\u{1}';

fn qgram_profile(s: &str) -> HashMap<Vec<char>, usize> {
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (Q - 1));
    padded.extend(std::iter::repeat_n(PAD, Q - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat_n(PAD, Q - 1));
    let mut profile = HashMap::new();
    if padded.len() < Q {
        return profile;
    }
    for window in padded.windows(Q) {
        *profile.entry(window.to_vec()).or_insert(0) += 1;
    }
    profile
}

/// Cosine similarity in `[0, 1]` between the character-bigram profiles of
/// `a` and `b`.  Two empty strings are considered identical (similarity 1).
pub fn cosine_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let pa = qgram_profile(a);
    let pb = qgram_profile(b);
    if pa.is_empty() || pb.is_empty() {
        return if pa.is_empty() && pb.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let dot: f64 = pa
        .iter()
        .filter_map(|(gram, &ca)| pb.get(gram).map(|&cb| (ca * cb) as f64))
        .sum();
    let norm_a: f64 = pa.values().map(|&c| (c * c) as f64).sum::<f64>().sqrt();
    let norm_b: f64 = pb.values().map(|&c| (c * c) as f64).sum::<f64>().sqrt();
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    (dot / (norm_a * norm_b)).clamp(0.0, 1.0)
}

/// Cosine distance `1 - cosine_similarity`, in `[0, 1]`.
pub fn cosine_distance(a: &str, b: &str) -> f64 {
    1.0 - cosine_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings() {
        assert_eq!(cosine_similarity("BOAZ", "BOAZ"), 1.0);
        assert_eq!(cosine_distance("BOAZ", "BOAZ"), 0.0);
        assert_eq!(cosine_similarity("", ""), 1.0);
    }

    #[test]
    fn disjoint_strings() {
        let s = cosine_similarity("abc", "xyz");
        assert!(
            s < 0.2,
            "disjoint bigrams should have near-zero similarity, got {s}"
        );
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(cosine_similarity("", "abc"), 0.0);
        assert_eq!(cosine_distance("", "abc"), 1.0);
    }

    #[test]
    fn leading_typo_hurts_cosine_more_than_levenshtein() {
        // This is the phenomenon behind Table 5: a typo in the first character
        // perturbs the q-gram profile a lot.
        let lev = crate::normalized_levenshtein("XOTHAN", "DOTHAN");
        let cos = cosine_distance("XOTHAN", "DOTHAN");
        assert!(
            cos > lev,
            "cosine {cos} should exceed normalized levenshtein {lev}"
        );
    }

    #[test]
    fn similar_strings_rank_correctly() {
        assert!(cosine_distance("DOTHAN", "DOTH") < cosine_distance("DOTHAN", "BOAZ"));
    }

    proptest! {
        #[test]
        fn similarity_in_unit_interval(a in "\\PC{0,20}", b in "\\PC{0,20}") {
            let s = cosine_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn symmetric(a in "\\PC{0,20}", b in "\\PC{0,20}") {
            let ab = cosine_similarity(&a, &b);
            let ba = cosine_similarity(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
        }

        #[test]
        fn self_similarity_is_one(a in "\\PC{0,20}") {
            prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
