//! Jaccard similarity over character q-gram sets.

use std::collections::HashSet;

const Q: usize = 2;

fn qgram_set(s: &str) -> HashSet<Vec<char>> {
    let chars: Vec<char> = s.chars().collect();
    let mut set = HashSet::new();
    if chars.is_empty() {
        return set;
    }
    if chars.len() < Q {
        set.insert(chars);
        return set;
    }
    for window in chars.windows(Q) {
        set.insert(window.to_vec());
    }
    set
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over character bigram sets,
/// in `[0, 1]`.  Two empty strings are identical (similarity 1).
pub fn jaccard_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let sa = qgram_set(a);
    let sb = qgram_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        return 1.0;
    }
    intersection / union
}

/// Jaccard distance `1 - jaccard_similarity`.
pub fn jaccard_distance(a: &str, b: &str) -> f64 {
    1.0 - jaccard_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical() {
        assert_eq!(jaccard_similarity("abc", "abc"), 1.0);
        assert_eq!(jaccard_similarity("", ""), 1.0);
    }

    #[test]
    fn disjoint() {
        assert_eq!(jaccard_similarity("aaa", "bbb"), 0.0);
        assert_eq!(jaccard_distance("aaa", "bbb"), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let s = jaccard_similarity("DOTHAN", "DOTH");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn single_char_strings() {
        assert_eq!(jaccard_similarity("a", "a"), 1.0);
        assert_eq!(jaccard_similarity("a", "b"), 0.0);
    }

    proptest! {
        #[test]
        fn in_unit_interval(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            let s = jaccard_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn symmetric(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            prop_assert!((jaccard_similarity(&a, &b) - jaccard_similarity(&b, &a)).abs() < 1e-12);
        }
    }
}
