//! Jaro and Jaro-Winkler similarity, which favour strings sharing a prefix.
//! These are common in record-linkage / duplicate-detection settings, which
//! is the instance-level "duplicates" error class MLNClean removes at the end
//! of its pipeline.

/// Jaro similarity in `[0, 1]`.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (la, lb) = (ac.len(), bc.len());
    if la == 0 || lb == 0 {
        return 0.0;
    }

    let match_window = (la.max(lb) / 2).saturating_sub(1);
    let mut b_matched = vec![false; lb];
    let mut a_matched = vec![false; la];
    let mut matches = 0usize;

    for i in 0..la {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(lb);
        for j in lo..hi {
            if !b_matched[j] && ac[i] == bc[j] {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }

    if matches == 0 {
        return 0.0;
    }

    // Count transpositions among matched characters.
    let mut transpositions = 0usize;
    let mut j = 0usize;
    for i in 0..la {
        if a_matched[i] {
            while !b_matched[j] {
                j += 1;
            }
            if ac[i] != bc[j] {
                transpositions += 1;
            }
            j += 1;
        }
    }
    let m = matches as f64;
    let t = (transpositions / 2) as f64;
    (m / la as f64 + m / lb as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix of up to 4
/// characters with the standard scaling factor 0.1.
pub fn jaro_winkler_similarity(a: &str, b: &str) -> f64 {
    let jaro = jaro_similarity(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (jaro + prefix * 0.1 * (1.0 - jaro)).clamp(0.0, 1.0)
}

/// Jaro-Winkler distance `1 - similarity`.
pub fn jaro_winkler_distance(a: &str, b: &str) -> f64 {
    1.0 - jaro_winkler_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical() {
        assert_eq!(jaro_similarity("MARTHA", "MARTHA"), 1.0);
        assert_eq!(jaro_winkler_distance("MARTHA", "MARTHA"), 0.0);
    }

    #[test]
    fn known_value() {
        // Classic textbook example: jaro(MARTHA, MARHTA) = 0.944...
        let j = jaro_similarity("MARTHA", "MARHTA");
        assert!((j - 0.944444).abs() < 1e-4, "got {j}");
        let jw = jaro_winkler_similarity("MARTHA", "MARHTA");
        assert!((jw - 0.961111).abs() < 1e-4, "got {jw}");
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaro_similarity("", "abc"), 0.0);
        assert_eq!(jaro_similarity("abc", ""), 0.0);
        assert_eq!(jaro_similarity("", ""), 1.0);
    }

    #[test]
    fn no_common_characters() {
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler_distance("abc", "xyz"), 1.0);
    }

    #[test]
    fn prefix_boost() {
        // Same Jaro core mismatch, but shared prefix should make JW higher.
        let plain = jaro_similarity("DOTHAN", "DOTHXX");
        let boosted = jaro_winkler_similarity("DOTHAN", "DOTHXX");
        assert!(boosted >= plain);
    }

    proptest! {
        #[test]
        fn in_unit_interval(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            let j = jaro_similarity(&a, &b);
            let jw = jaro_winkler_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&jw));
        }

        #[test]
        fn symmetric_jaro(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            prop_assert!((jaro_similarity(&a, &b) - jaro_similarity(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn winkler_at_least_jaro(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            prop_assert!(jaro_winkler_similarity(&a, &b) + 1e-12 >= jaro_similarity(&a, &b));
        }
    }
}
