//! Edit-distance metrics: Levenshtein and Damerau-Levenshtein.
//!
//! Levenshtein distance is the default metric in MLNClean: the paper argues
//! (Section 7.3.3) that it copes better than cosine distance with typos in
//! the leading characters of a value, because it counts character edits
//! irrespective of position.
//!
//! These functions sit on the pipeline's hottest path (every AGP group
//! comparison and RSC reliability score bottoms out here), so they avoid
//! per-call allocation: the char decodings and DP rows live in reusable
//! thread-local buffers, and a common prefix/suffix trim shrinks the dynamic
//! program before it runs (typo'd values share almost their entire text with
//! their correction).

use std::cell::RefCell;

/// Reusable scratch space for the dynamic programs, one set per thread.
#[derive(Default)]
struct Scratch {
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    prev2: Vec<usize>,
    prev: Vec<usize>,
    curr: Vec<usize>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Decode `a`/`b` into the thread-local char buffers and return the length of
/// the common prefix and suffix (in chars, non-overlapping).
fn decode_and_trim(scratch: &mut Scratch, a: &str, b: &str) -> (usize, usize) {
    scratch.a_chars.clear();
    scratch.a_chars.extend(a.chars());
    scratch.b_chars.clear();
    scratch.b_chars.extend(b.chars());
    let (na, nb) = (scratch.a_chars.len(), scratch.b_chars.len());
    let max_trim = na.min(nb);
    let mut prefix = 0;
    while prefix < max_trim && scratch.a_chars[prefix] == scratch.b_chars[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < max_trim - prefix
        && scratch.a_chars[na - 1 - suffix] == scratch.b_chars[nb - 1 - suffix]
    {
        suffix += 1;
    }
    (prefix, suffix)
}

/// Levenshtein distance plus the char length of the longer input, computed in
/// one pass over the decoded buffers (so [`normalized_levenshtein`] never
/// re-counts chars).
fn levenshtein_with_max_len(a: &str, b: &str) -> (usize, usize) {
    if a == b {
        // Equal as UTF-8 ⇒ equal char count; only needed for normalization
        // of two identical strings, where the distance is 0 anyway.
        return (0, a.chars().count());
    }
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let (prefix, suffix) = decode_and_trim(scratch, a, b);
        let (na, nb) = (scratch.a_chars.len(), scratch.b_chars.len());
        let max_len = na.max(nb);
        let sa = &scratch.a_chars[prefix..na - suffix];
        let sb = &scratch.b_chars[prefix..nb - suffix];
        // Keep the shorter trimmed string as the DP row.
        let (short, long) = if sa.len() <= sb.len() {
            (sa, sb)
        } else {
            (sb, sa)
        };
        if short.is_empty() {
            return (long.len(), max_len);
        }

        let prev = &mut scratch.prev;
        let curr = &mut scratch.curr;
        prev.clear();
        prev.extend(0..=short.len());
        curr.clear();
        curr.resize(short.len() + 1, 0);

        for (i, lc) in long.iter().enumerate() {
            curr[0] = i + 1;
            for (j, sc) in short.iter().enumerate() {
                let cost = usize::from(lc != sc);
                curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
            }
            std::mem::swap(prev, curr);
        }
        (prev[short.len()], max_len)
    })
}

/// Classic Levenshtein edit distance (insertions, deletions, substitutions),
/// computed with a two-row dynamic program in `O(|a|·|b|)` time after common
/// prefix/suffix trimming, using thread-local buffers (no per-call
/// allocation in steady state).
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    levenshtein_with_max_len(a, b).0
}

/// Levenshtein distance normalized to `[0, 1]` by the length of the longer
/// string.  Two empty strings have distance `0`.  The length is produced by
/// the same pass that decodes the strings for the distance — no second scan.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let (distance, max_len) = levenshtein_with_max_len(a, b);
    if max_len == 0 {
        0.0
    } else {
        distance as f64 / max_len as f64
    }
}

/// Damerau-Levenshtein distance (restricted variant: adjacent transpositions
/// count as a single edit).  Useful for typo-heavy data where character swaps
/// are common.  Shares the thread-local buffers and the prefix/suffix trim
/// with [`levenshtein`] (trimming is safe for the restricted variant: a
/// transposition never pays to cross into a run of already-equal characters).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let (prefix, suffix) = decode_and_trim(scratch, a, b);
        let (na, nb) = (scratch.a_chars.len(), scratch.b_chars.len());
        let ac = &scratch.a_chars[prefix..na - suffix];
        let bc = &scratch.b_chars[prefix..nb - suffix];
        let (n, m) = (ac.len(), bc.len());
        if n == 0 {
            return m;
        }
        if m == 0 {
            return n;
        }

        // Three-row dynamic program: d[i-2], d[i-1], d[i].
        let prev2 = &mut scratch.prev2;
        let prev = &mut scratch.prev;
        let curr = &mut scratch.curr;
        prev2.clear();
        prev2.resize(m + 1, 0);
        prev.clear();
        prev.extend(0..=m);
        curr.clear();
        curr.resize(m + 1, 0);

        for i in 1..=n {
            curr[0] = i;
            for j in 1..=m {
                let cost = usize::from(ac[i - 1] != bc[j - 1]);
                let mut best = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
                if i > 1 && j > 1 && ac[i - 1] == bc[j - 2] && ac[i - 2] == bc[j - 1] {
                    best = best.min(prev2[j - 2] + 1);
                }
                curr[j] = best;
            }
            std::mem::swap(prev2, prev);
            std::mem::swap(prev, curr);
        }
        prev[m]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Allocation-per-call reference implementations, kept to pin the
    /// buffer-reusing, trimming versions above to the textbook recurrences.
    mod reference {
        pub fn levenshtein(a: &str, b: &str) -> usize {
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            let mut prev: Vec<usize> = (0..=bc.len()).collect();
            let mut curr = vec![0usize; bc.len() + 1];
            for (i, x) in ac.iter().enumerate() {
                curr[0] = i + 1;
                for (j, y) in bc.iter().enumerate() {
                    let cost = usize::from(x != y);
                    curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
                }
                std::mem::swap(&mut prev, &mut curr);
            }
            prev[bc.len()]
        }

        pub fn damerau(a: &str, b: &str) -> usize {
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            let (n, m) = (ac.len(), bc.len());
            let mut d = vec![vec![0usize; m + 1]; n + 1];
            for (i, row) in d.iter_mut().enumerate() {
                row[0] = i;
            }
            for (j, cell) in d[0].iter_mut().enumerate() {
                *cell = j;
            }
            for i in 1..=n {
                for j in 1..=m {
                    let cost = usize::from(ac[i - 1] != bc[j - 1]);
                    let mut best = (d[i - 1][j] + 1)
                        .min(d[i][j - 1] + 1)
                        .min(d[i - 1][j - 1] + cost);
                    if i > 1 && j > 1 && ac[i - 1] == bc[j - 2] && ac[i - 2] == bc[j - 1] {
                        best = best.min(d[i - 2][j - 2] + 1);
                    }
                    d[i][j] = best;
                }
            }
            d[n][m]
        }
    }

    #[test]
    fn basic_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("DOTHAN", "DOTH"), 2);
        assert_eq!(levenshtein("AL", "AK"), 1);
    }

    #[test]
    fn unicode_aware() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn trimming_edge_cases() {
        // Entire shorter string is a prefix of the longer one.
        assert_eq!(levenshtein("DOTH", "DOTHAN"), 2);
        // Shared prefix AND suffix around a middle edit.
        assert_eq!(levenshtein("abcXdef", "abcYdef"), 1);
        // Overlapping prefix/suffix candidates ("aaa" vs "aa").
        assert_eq!(levenshtein("aaa", "aa"), 1);
        assert_eq!(damerau_levenshtein("aaa", "aa"), 1);
        // Transposition straddling a shared prefix.
        assert_eq!(damerau_levenshtein("aab", "aba"), 1);
    }

    #[test]
    fn paper_example_group_distance() {
        // The typo "DOTH" should be closer to "DOTHAN" than to "BOAZ",
        // which is what makes AGP merge G12 into G11 in the paper's Figure 2.
        assert!(levenshtein("DOTH", "DOTHAN") < levenshtein("DOTH", "BOAZ"));
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        let d = normalized_levenshtein("abcd", "abxd");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("a cat", "an act"), 2);
        assert_eq!(damerau_levenshtein("", "xyz"), 3);
        assert_eq!(damerau_levenshtein("xyz", ""), 3);
    }

    proptest! {
        #[test]
        fn matches_reference_implementation(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            prop_assert_eq!(levenshtein(&a, &b), reference::levenshtein(&a, &b));
            prop_assert_eq!(damerau_levenshtein(&a, &b), reference::damerau(&a, &b));
        }

        #[test]
        fn matches_reference_on_trim_heavy_inputs(
            prefix in "[ab]{0,10}", mid_a in "[abc]{0,6}", mid_b in "[abc]{0,6}", suffix in "[ab]{0,10}"
        ) {
            // Inputs engineered to exercise the prefix/suffix trimming paths,
            // including transpositions at the trim boundaries.
            let a = format!("{prefix}{mid_a}{suffix}");
            let b = format!("{prefix}{mid_b}{suffix}");
            prop_assert_eq!(levenshtein(&a, &b), reference::levenshtein(&a, &b));
            prop_assert_eq!(damerau_levenshtein(&a, &b), reference::damerau(&a, &b));
        }

        #[test]
        fn symmetric(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn identity(a in "\\PC{0,24}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
        }

        #[test]
        fn triangle_inequality(a in "[a-f]{0,12}", b in "[a-f]{0,12}", c in "[a-f]{0,12}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn bounded_by_longer_length(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            let d = levenshtein(&a, &b);
            let max_len = a.chars().count().max(b.chars().count());
            let min_len = a.chars().count().min(b.chars().count());
            prop_assert!(d <= max_len);
            prop_assert!(d >= max_len - min_len);
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn normalized_in_unit_interval(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            let d = normalized_levenshtein(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
