//! Edit-distance metrics: Levenshtein and Damerau-Levenshtein.
//!
//! Levenshtein distance is the default metric in MLNClean: the paper argues
//! (Section 7.3.3) that it copes better than cosine distance with typos in
//! the leading characters of a value, because it counts character edits
//! irrespective of position.

/// Classic Levenshtein edit distance (insertions, deletions, substitutions),
/// computed with a two-row dynamic program in `O(|a|·|b|)` time and
/// `O(min(|a|,|b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }

    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];

    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein distance normalized to `[0, 1]` by the length of the longer
/// string.  Two empty strings have distance `0`.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

/// Damerau-Levenshtein distance (restricted variant: adjacent transpositions
/// count as a single edit).  Useful for typo-heavy data where character swaps
/// are common.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (n, m) = (ac.len(), bc.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }

    // Three-row dynamic program: d[i-2], d[i-1], d[i].
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr: Vec<usize> = vec![0; m + 1];

    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let cost = usize::from(ac[i - 1] != bc[j - 1]);
            let mut best = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && ac[i - 1] == bc[j - 2] && ac[i - 2] == bc[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            curr[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("DOTHAN", "DOTH"), 2);
        assert_eq!(levenshtein("AL", "AK"), 1);
    }

    #[test]
    fn unicode_aware() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn paper_example_group_distance() {
        // The typo "DOTH" should be closer to "DOTHAN" than to "BOAZ",
        // which is what makes AGP merge G12 into G11 in the paper's Figure 2.
        assert!(levenshtein("DOTH", "DOTHAN") < levenshtein("DOTH", "BOAZ"));
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        let d = normalized_levenshtein("abcd", "abxd");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("a cat", "an act"), 2);
        assert_eq!(damerau_levenshtein("", "xyz"), 3);
        assert_eq!(damerau_levenshtein("xyz", ""), 3);
    }

    proptest! {
        #[test]
        fn symmetric(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn identity(a in "\\PC{0,24}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
        }

        #[test]
        fn triangle_inequality(a in "[a-f]{0,12}", b in "[a-f]{0,12}", c in "[a-f]{0,12}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn bounded_by_longer_length(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            let d = levenshtein(&a, &b);
            let max_len = a.chars().count().max(b.chars().count());
            let min_len = a.chars().count().min(b.chars().count());
            prop_assert!(d <= max_len);
            prop_assert!(d >= max_len - min_len);
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn normalized_in_unit_interval(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            let d = normalized_levenshtein(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
