//! String distance metrics used by MLNClean.
//!
//! The paper uses the Levenshtein distance as its default metric (for the
//! abnormal-group-processing step and the reliability score) and compares it
//! against a cosine distance over character n-grams (Table 5).  This crate
//! provides both, plus a few additional metrics that are useful when
//! experimenting with the framework (Damerau-Levenshtein, Jaro-Winkler,
//! Jaccard over q-grams), together with normalized variants in `[0, 1]`.
//!
//! All metrics operate on `&str` and are Unicode-aware (they work on
//! `char`s, not bytes).

pub mod cosine;
pub mod jaccard;
pub mod jaro;
pub mod levenshtein;
pub mod metric;

pub use cosine::{cosine_distance, cosine_similarity};
pub use jaccard::{jaccard_distance, jaccard_similarity};
pub use jaro::{jaro_similarity, jaro_winkler_distance, jaro_winkler_similarity};
pub use levenshtein::{damerau_levenshtein, levenshtein, normalized_levenshtein};
pub use metric::{DistanceMetric, Metric};

/// Distance between two multi-attribute records, computed attribute-wise and
/// summed.  This is how MLNClean compares two pieces of data (γs) that span
/// several attributes: the distance of a γ to another γ is the sum of the
/// per-attribute string distances.
pub fn record_distance(metric: &Metric, a: &[&str], b: &[&str]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "records must have the same arity");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| metric.distance(x, y))
        .sum()
}

/// Normalized record distance in `[0, 1]`: the attribute-wise normalized
/// distances are averaged.  Returns `0.0` for two empty records.
pub fn normalized_record_distance(metric: &Metric, a: &[&str], b: &[&str]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "records must have the same arity");
    if a.is_empty() {
        return 0.0;
    }
    let total: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| metric.normalized_distance(x, y))
        .sum();
    total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_distance_sums_attribute_distances() {
        let m = Metric::Levenshtein;
        let a = ["BOAZ", "AL"];
        let b = ["DOTHAN", "AL"];
        assert_eq!(
            record_distance(&m, &a, &b),
            levenshtein("BOAZ", "DOTHAN") as f64
        );
    }

    #[test]
    fn normalized_record_distance_is_bounded() {
        let m = Metric::Levenshtein;
        let a = ["abc", "def", "ghi"];
        let b = ["xyz", "uvw", "rst"];
        let d = normalized_record_distance(&m, &a, &b);
        assert!((0.0..=1.0).contains(&d));
        assert!(
            (d - 1.0).abs() < 1e-9,
            "completely different strings should be distance 1"
        );
    }

    #[test]
    fn normalized_record_distance_empty() {
        let m = Metric::Levenshtein;
        assert_eq!(normalized_record_distance(&m, &[], &[]), 0.0);
    }

    #[test]
    fn identical_records_have_zero_distance() {
        for m in [
            Metric::Levenshtein,
            Metric::Cosine,
            Metric::JaroWinkler,
            Metric::Jaccard,
        ] {
            let a = ["ELIZA", "BOAZ", "2567688400"];
            assert_eq!(record_distance(&m, &a, &a), 0.0, "metric {m:?}");
        }
    }
}
