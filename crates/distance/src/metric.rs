//! A unified interface over the individual string metrics so that the
//! cleaning pipeline can be parameterized by distance metric (Table 5 in the
//! paper swaps Levenshtein for cosine distance).

use crate::{
    cosine_distance, damerau_levenshtein, jaccard_distance, jaro_winkler_distance, levenshtein,
    normalized_levenshtein,
};
use serde::{Deserialize, Serialize};

/// Trait for string distance metrics.  `distance` returns a raw
/// (metric-specific) value; `normalized_distance` is always in `[0, 1]`.
pub trait DistanceMetric {
    /// Raw distance between `a` and `b` (larger means more different).
    fn distance(&self, a: &str, b: &str) -> f64;

    /// Distance normalized into `[0, 1]`.
    fn normalized_distance(&self, a: &str, b: &str) -> f64;

    /// Similarity `1 - normalized_distance`, in `[0, 1]`.
    fn similarity(&self, a: &str, b: &str) -> f64 {
        1.0 - self.normalized_distance(a, b)
    }
}

/// The built-in metrics available to MLNClean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Classic Levenshtein edit distance (paper default).
    #[default]
    Levenshtein,
    /// Damerau-Levenshtein (adjacent transpositions count once).
    DamerauLevenshtein,
    /// Cosine distance over character bigram profiles (Table 5 comparison).
    Cosine,
    /// Jaccard distance over character bigram sets.
    Jaccard,
    /// Jaro-Winkler distance (prefix-weighted).
    JaroWinkler,
}

impl Metric {
    /// All built-in metrics, handy for sweeps/benchmarks.
    pub const ALL: [Metric; 5] = [
        Metric::Levenshtein,
        Metric::DamerauLevenshtein,
        Metric::Cosine,
        Metric::Jaccard,
        Metric::JaroWinkler,
    ];

    /// Parse a metric from its (case-insensitive) name.
    pub fn parse(name: &str) -> Option<Metric> {
        match name.to_ascii_lowercase().as_str() {
            "levenshtein" | "edit" => Some(Metric::Levenshtein),
            "damerau" | "damerau-levenshtein" | "damerau_levenshtein" => {
                Some(Metric::DamerauLevenshtein)
            }
            "cosine" => Some(Metric::Cosine),
            "jaccard" => Some(Metric::Jaccard),
            "jaro-winkler" | "jaro_winkler" | "jarowinkler" | "jw" => Some(Metric::JaroWinkler),
            _ => None,
        }
    }

    /// Human-readable name of the metric.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Levenshtein => "levenshtein",
            Metric::DamerauLevenshtein => "damerau-levenshtein",
            Metric::Cosine => "cosine",
            Metric::Jaccard => "jaccard",
            Metric::JaroWinkler => "jaro-winkler",
        }
    }
}

impl DistanceMetric for Metric {
    fn distance(&self, a: &str, b: &str) -> f64 {
        match self {
            Metric::Levenshtein => levenshtein(a, b) as f64,
            Metric::DamerauLevenshtein => damerau_levenshtein(a, b) as f64,
            Metric::Cosine => cosine_distance(a, b),
            Metric::Jaccard => jaccard_distance(a, b),
            Metric::JaroWinkler => jaro_winkler_distance(a, b),
        }
    }

    fn normalized_distance(&self, a: &str, b: &str) -> f64 {
        match self {
            Metric::Levenshtein => normalized_levenshtein(a, b),
            Metric::DamerauLevenshtein => {
                let max_len = a.chars().count().max(b.chars().count());
                if max_len == 0 {
                    0.0
                } else {
                    damerau_levenshtein(a, b) as f64 / max_len as f64
                }
            }
            Metric::Cosine => cosine_distance(a, b),
            Metric::Jaccard => jaccard_distance(a, b),
            Metric::JaroWinkler => jaro_winkler_distance(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_round_trips() {
        for m in Metric::ALL {
            assert_eq!(Metric::parse(m.name()), Some(m));
        }
        assert_eq!(Metric::parse("LEVENSHTEIN"), Some(Metric::Levenshtein));
        assert_eq!(Metric::parse("unknown"), None);
    }

    #[test]
    fn default_is_levenshtein() {
        assert_eq!(Metric::default(), Metric::Levenshtein);
    }

    #[test]
    fn all_metrics_zero_on_identical() {
        for m in Metric::ALL {
            assert_eq!(m.distance("DOTHAN", "DOTHAN"), 0.0, "{m:?}");
            assert_eq!(m.normalized_distance("DOTHAN", "DOTHAN"), 0.0, "{m:?}");
            assert_eq!(m.similarity("DOTHAN", "DOTHAN"), 1.0, "{m:?}");
        }
    }

    #[test]
    fn levenshtein_raw_distance_is_integer_valued() {
        let m = Metric::Levenshtein;
        assert_eq!(m.distance("AL", "AK"), 1.0);
        assert_eq!(m.distance("DOTH", "DOTHAN"), 2.0);
    }

    proptest! {
        #[test]
        fn normalized_always_in_unit_interval(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            for m in Metric::ALL {
                let d = m.normalized_distance(&a, &b);
                prop_assert!((0.0..=1.0).contains(&d), "{:?} gave {}", m, d);
            }
        }

        #[test]
        fn similarity_complements_distance(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            for m in Metric::ALL {
                let s = m.similarity(&a, &b);
                let d = m.normalized_distance(&a, &b);
                prop_assert!((s + d - 1.0).abs() < 1e-12);
            }
        }
    }
}
