//! The partition boundary of the streaming coordinator, as a trait.
//!
//! [`crate::DistributedStreamingSession`] routes mutations, merges per-block
//! state and gathers outcomes — but everything it wants from a partition fits
//! through a narrow, message-shaped surface: *apply this slice*, *send me
//! your pool tail*, *send me these pristine blocks*, *send me your rows*.
//! [`PartitionBackend`] names that surface, so the same coordinator brain can
//! drive
//!
//! * [`LocalPartitions`] — in-process [`CleaningSession`]s, one worker thread
//!   per partition (the execution plan of PR 5), or
//! * a wire-backed pool (the `transport` crate) where every call crosses a
//!   simulated network as a serialized request/response pair.
//!
//! Every method is *by-value*: inputs and outputs are owned, serializable
//! payloads, never borrows into partition state.  That is what makes the
//! boundary promotable to a message boundary — and it is why the local
//! backend clones pristine blocks instead of lending them (the merged block
//! Stage I rewrites is a fresh allocation of the same order anyway).

use dataset::{Schema, TupleId, ValueId};
use mlnclean::{
    BatchReport, Block, ChangeSet, CleanConfig, CleanError, CleaningSession, Mutation, Report,
    SessionWeights,
};
use rules::RuleSet;
use std::time::Duration;

/// What the streaming coordinator asks of its partition pool — each method a
/// request/response pair over owned payloads (see the [module docs](self)).
///
/// Calls take `&mut self` even when logically read-only: a wire backend must
/// pump its network to serve them.
pub trait PartitionBackend {
    /// Number of partitions behind this backend (fixed for its lifetime).
    fn partitions(&self) -> usize;

    /// Apply one routed change set: `slices[p]` holds partition `p`'s
    /// mutations in partition-local coordinates.  Returns each partition's
    /// [`BatchReport`], `None` for partitions whose slice was empty (their
    /// session state is untouched).
    ///
    /// The coordinator pre-validates the change set, so a slice cannot fail
    /// validation; backends may panic on a malformed slice.
    fn apply_slices(&mut self, slices: Vec<Vec<Mutation>>) -> Vec<Option<BatchReport>>;

    /// The values partition `p` interned since the coordinator last asked:
    /// its pool's values with ids `from..`, in id order.
    fn pool_tail(&mut self, p: usize, from: usize) -> Vec<String>;

    /// For every partition, the pristine (pre-Stage-I) state of the listed
    /// blocks, in the listed order: `result[p][i]` is partition `p`'s copy of
    /// block `blocks[i]`, in partition-local pool/tuple coordinates.
    fn pristine_blocks(&mut self, blocks: &[usize]) -> Vec<Vec<Block>>;

    /// Partition `p`'s current rows in local order, as partition-local value
    /// ids (the coordinator translates them through its tables).
    fn gather_rows(&mut self, p: usize) -> Vec<Vec<ValueId>>;

    /// Aggregate index-maintenance wall clock across all partitions (the
    /// per-worker stage sum a [`Report`] folds into its timings).
    fn index_clock(&mut self) -> Duration;

    /// Inject the merged weight table into partition `p` and draw its local
    /// outcome (provenance and row ids in partition coordinates).
    fn partition_outcome(&mut self, p: usize, weights: SessionWeights) -> Report;
}

/// The in-process backend: one [`CleaningSession`] per partition, change-set
/// slices applied concurrently on scoped worker threads.
#[derive(Debug)]
pub struct LocalPartitions {
    sessions: Vec<CleaningSession>,
}

impl LocalPartitions {
    /// Open `partitions` sessions for `schema` under `rules`.
    ///
    /// Fails like [`CleaningSession::new`] does (empty rule set, rule
    /// referencing an unknown attribute), plus [`CleanError::Partition`] on
    /// zero partitions.
    pub fn new(
        config: CleanConfig,
        schema: Schema,
        rules: RuleSet,
        partitions: usize,
    ) -> Result<Self, CleanError> {
        if partitions == 0 {
            return Err(CleanError::Partition { workers: 0 });
        }
        let mut sessions = Vec::with_capacity(partitions);
        for _ in 0..partitions {
            sessions.push(CleaningSession::new(
                config.clone(),
                schema.clone(),
                rules.clone(),
            )?);
        }
        Ok(LocalPartitions { sessions })
    }
}

impl PartitionBackend for LocalPartitions {
    fn partitions(&self) -> usize {
        self.sessions.len()
    }

    fn apply_slices(&mut self, slices: Vec<Vec<Mutation>>) -> Vec<Option<BatchReport>> {
        // Partition ingest: every session applies its slice on its own
        // worker thread (sessions hold disjoint rows, so the incremental
        // index maintenance parallelizes across partitions).
        let sessions = &mut self.sessions;
        std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .iter_mut()
                .zip(slices)
                .map(|(session, muts)| {
                    scope.spawn(move || {
                        if muts.is_empty() {
                            None
                        } else {
                            let changes: ChangeSet = muts.into_iter().collect();
                            Some(
                                session
                                    .apply(changes)
                                    .expect("the coordinator pre-validated the change set"),
                            )
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked"))
                .collect()
        })
    }

    fn pool_tail(&mut self, p: usize, from: usize) -> Vec<String> {
        self.sessions[p]
            .dataset()
            .pool()
            .iter()
            .skip(from)
            .map(|(_, value)| value.to_string())
            .collect()
    }

    fn pristine_blocks(&mut self, blocks: &[usize]) -> Vec<Vec<Block>> {
        self.sessions
            .iter()
            .map(|session| {
                let index = session.pristine_index();
                blocks.iter().map(|&b| index.blocks[b].clone()).collect()
            })
            .collect()
    }

    fn gather_rows(&mut self, p: usize) -> Vec<Vec<ValueId>> {
        let dataset = self.sessions[p].dataset();
        (0..dataset.len())
            .map(|t| dataset.row_ids(TupleId(t)).to_vec())
            .collect()
    }

    fn index_clock(&mut self) -> Duration {
        self.sessions
            .iter()
            .map(|session| session.timings().index)
            .sum()
    }

    fn partition_outcome(&mut self, p: usize, weights: SessionWeights) -> Report {
        self.sessions[p].inject_weights(weights);
        self.sessions[p].outcome()
    }
}
