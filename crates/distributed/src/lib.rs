//! Distributed MLNClean (Section 6 of the paper).
//!
//! The paper deploys MLNClean on Spark; here the same execution structure is
//! reproduced with an in-process worker pool (one thread per worker), which
//! exercises the identical code path — partition → per-partition cleaning →
//! global weight adjustment → gather/fuse/deduplicate — while remaining
//! runnable on a single machine:
//!
//! 1. the dataset is split into `k` parts with the capacity-bounded
//!    nearest-centroid partitioner of Algorithm 3 ([`partition`]);
//! 2. every worker builds the MLN index of its part, runs AGP and learns the
//!    local γ weights;
//! 3. the coordinator merges the per-part weights with the evidence-weighted
//!    average of Eq. 6 and pushes the merged weights back to every part
//!    ([`weights`]);
//! 4. every worker finishes its part with RSC and FSCR;
//! 5. the repaired parts are gathered back in the original tuple order and
//!    duplicates are removed globally ([`runner`]).

//!
//! Both runners implement the unified [`mlnclean::Engine`] trait: they
//! return the same [`mlnclean::Report`] (with a [`mlnclean::PartitionReport`]
//! attached and provenance remapped to global tuple ids) and the same
//! [`mlnclean::CleanError`] as the batch and incremental drivers.
//!
//! Besides the batch runner there is a **streaming** driver
//! ([`streaming::DistributedStreamingSession`] /
//! [`DistributedStreamingMlnClean`]): one typed [`mlnclean::ChangeSet`]
//! stream routed across per-partition [`mlnclean::CleaningSession`]s, with a
//! periodic cross-partition per-block state and weight merge whose outcome
//! is byte-identical to a single session over the same stream (pinned by
//! `tests/streaming_equivalence.rs`).

pub mod backend;
pub mod partition;
pub mod runner;
pub mod streaming;
pub mod weights;

pub use backend::{LocalPartitions, PartitionBackend};
pub use partition::{partition_dataset, route_row, PartitionConfig, Partitioning};
pub use runner::DistributedMlnClean;
pub use streaming::{DistributedStreamingMlnClean, DistributedStreamingSession};
pub use weights::{merge_weights, merged_weight_table};
