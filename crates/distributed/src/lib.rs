//! Distributed MLNClean (Section 6 of the paper).
//!
//! The paper deploys MLNClean on Spark; here the same execution structure is
//! reproduced with an in-process worker pool (one thread per worker), which
//! exercises the identical code path — partition → per-partition cleaning →
//! global weight adjustment → gather/fuse/deduplicate — while remaining
//! runnable on a single machine:
//!
//! 1. the dataset is split into `k` parts with the capacity-bounded
//!    nearest-centroid partitioner of Algorithm 3 ([`partition`]);
//! 2. every worker builds the MLN index of its part, runs AGP and learns the
//!    local γ weights;
//! 3. the coordinator merges the per-part weights with the evidence-weighted
//!    average of Eq. 6 and pushes the merged weights back to every part
//!    ([`weights`]);
//! 4. every worker finishes its part with RSC and FSCR;
//! 5. the repaired parts are gathered back in the original tuple order and
//!    duplicates are removed globally ([`runner`]).

pub mod partition;
pub mod runner;
pub mod weights;

pub use partition::{partition_dataset, PartitionConfig, Partitioning};
pub use runner::{DistributedMlnClean, DistributedOutcome, PhaseTimings};
pub use weights::{merge_weights, GammaKey};
