//! Algorithm 3: capacity-bounded nearest-centroid data partitioning.
//!
//! The goal is to avoid data skew across workers: every part has a maximum
//! capacity `s = ⌈|T| / k⌉`.  Each part keeps its tuples in a max-heap keyed
//! by the distance to the part's centroid; when a closer tuple arrives at a
//! full part, the farthest resident tuple is evicted to its own closest
//! non-full part.

use dataset::{Dataset, TupleId, ValueId};
use distance::Metric;
use mlnclean::DistanceCache;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of the partitioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of parts (workers).
    pub parts: usize,
    /// Distance metric between tuples and centroids.
    pub metric: Metric,
    /// Attributes used for the tuple-to-centroid distance.  Empty means "all
    /// attributes"; the distributed runner passes the rule-constrained
    /// attributes so that tuples the rules relate end up co-located and the
    /// per-tuple distance stays cheap on wide schemas.
    pub attributes: Vec<dataset::AttrId>,
    /// RNG seed for centroid selection.
    pub seed: u64,
}

impl PartitionConfig {
    /// Create a configuration with the default (Levenshtein) metric over all
    /// attributes.
    pub fn new(parts: usize, seed: u64) -> Self {
        PartitionConfig {
            parts: parts.max(1),
            metric: Metric::Levenshtein,
            attributes: Vec::new(),
            seed,
        }
    }

    /// Restrict the partitioning distance to the given attributes.
    pub fn on_attributes(mut self, attributes: Vec<dataset::AttrId>) -> Self {
        self.attributes = attributes;
        self
    }
}

/// The result of partitioning: tuple ids per part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioning {
    /// `parts[i]` lists the tuples assigned to part `i`.
    pub parts: Vec<Vec<TupleId>>,
    /// The centroid tuple of each part.
    pub centroids: Vec<TupleId>,
    /// The capacity bound `s` used.
    pub capacity: usize,
}

impl Partitioning {
    /// Sizes of the parts.
    pub fn sizes(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Largest part divided by smallest part — the skew factor the algorithm
    /// bounds.
    pub fn skew(&self) -> f64 {
        let sizes = self.sizes();
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let min = sizes.iter().copied().min().unwrap_or(0).max(1) as f64;
        max / min
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    distance: f64,
    tuple: TupleId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on distance; ties broken by tuple id for determinism.
        self.distance
            .partial_cmp(&other.distance)
            .unwrap_or(Ordering::Equal)
            .then(self.tuple.cmp(&other.tuple))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic stream router: FNV-1a over the row's values (with a
/// separator octet between cells), reduced modulo `parts`.
///
/// The capacity-bounded centroid partitioner of Algorithm 3
/// ([`partition_dataset`]) needs the whole dataset up front; a live
/// [`mlnclean::ChangeSet`] stream does not have it, so the streaming driver
/// hashes each inserted row to its partition instead — stable across runs,
/// partition counts permitting, and independent of insertion order.
pub fn route_row(row: &[String], parts: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for value in row {
        for &byte in value.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        // Cell separator so ["ab", "c"] and ["a", "bc"] hash differently.
        hash ^= 0xff;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % parts.max(1) as u64) as usize
}

/// Partition `ds` into `config.parts` parts per Algorithm 3.
pub fn partition_dataset(ds: &Dataset, config: &PartitionConfig) -> Partitioning {
    let k = config.parts.max(1).min(ds.len().max(1));
    let capacity = ds.len().div_ceil(k);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Line 3: randomly select k distinct centroids.
    let mut all: Vec<TupleId> = ds.tuple_ids().collect();
    all.shuffle(&mut rng);
    let centroids: Vec<TupleId> = all.iter().take(k).copied().collect();

    let projection: Vec<dataset::AttrId> = if config.attributes.is_empty() {
        ds.schema().attr_ids().collect()
    } else {
        config.attributes.clone()
    };
    // Project every tuple onto interned ids once; tuple-to-centroid distances
    // then run through a value-pair memo, so each distinct value pair pays
    // the string metric exactly once for the whole partitioning pass.
    let projected: Vec<Vec<ValueId>> = ds
        .tuple_ids()
        .map(|t| ds.tuple(t).project_ids(&projection))
        .collect();
    let cache = RefCell::new(DistanceCache::new(config.metric));
    let distance = |a: TupleId, b: TupleId| -> f64 {
        cache
            .borrow_mut()
            .record_distance(ds.pool(), &projected[a.0], &projected[b.0])
    };

    let mut heaps: Vec<BinaryHeap<HeapEntry>> = (0..k).map(|_| BinaryHeap::new()).collect();
    for (i, &c) in centroids.iter().enumerate() {
        heaps[i].push(HeapEntry {
            distance: 0.0,
            tuple: c,
        });
    }

    // Helper: index of the closest part to `t` among parts satisfying `pred`.
    let closest_part =
        |t: TupleId, heaps: &Vec<BinaryHeap<HeapEntry>>, only_non_full: bool| -> usize {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, &c) in centroids.iter().enumerate() {
                if only_non_full && heaps[i].len() >= capacity {
                    continue;
                }
                let d = distance(t, c);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            if best_d.is_infinite() {
                // Every part is full (can happen for the very last tuples when
                // |T| is not divisible by k): fall back to the globally smallest
                // part.
                heaps
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, h)| h.len())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            } else {
                best
            }
        };

    // Lines 5–14: place every non-centroid tuple.
    for t in ds.tuple_ids() {
        if centroids.contains(&t) {
            continue;
        }
        let j = closest_part(t, &heaps, false);
        let d_j = distance(t, centroids[j]);
        if heaps[j].len() < capacity {
            heaps[j].push(HeapEntry {
                distance: d_j,
                tuple: t,
            });
            continue;
        }
        // The preferred part is full: either evict its farthest tuple or
        // redirect the new tuple, whichever keeps the closer tuple in place.
        let top_distance = heaps[j].peek().map(|e| e.distance).unwrap_or(f64::INFINITY);
        let evicted = if d_j < top_distance {
            let top = heaps[j].pop().expect("heap is full, hence non-empty");
            heaps[j].push(HeapEntry {
                distance: d_j,
                tuple: t,
            });
            top.tuple
        } else {
            t
        };
        let target = closest_part(evicted, &heaps, true);
        let d_target = distance(evicted, centroids[target]);
        heaps[target].push(HeapEntry {
            distance: d_target,
            tuple: evicted,
        });
    }

    let mut parts: Vec<Vec<TupleId>> = heaps
        .into_iter()
        .map(|h| {
            let mut v: Vec<TupleId> = h.into_iter().map(|e| e.tuple).collect();
            v.sort();
            v
        })
        .collect();
    for p in &mut parts {
        p.dedup();
    }
    Partitioning {
        parts,
        centroids,
        capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, Schema};
    use proptest::prelude::*;

    #[test]
    fn route_row_is_deterministic_and_in_range() {
        let rows: Vec<Vec<String>> = vec![
            vec!["ELIZA".into(), "BOAZ".into()],
            vec!["EL".into(), "IZABOAZ".into()],
            vec!["".into(), "".into()],
        ];
        for parts in [1usize, 2, 4, 7] {
            for row in &rows {
                let p = route_row(row, parts);
                assert!(p < parts);
                assert_eq!(p, route_row(row, parts), "routing must be stable");
            }
        }
        // The separator keeps different cell splits of the same bytes apart.
        assert_ne!(route_row(&rows[0], 1 << 30), route_row(&rows[1], 1 << 30));
        // Zero parts is clamped rather than a division by zero.
        assert_eq!(route_row(&rows[0], 0), 0);
    }

    #[test]
    fn every_tuple_lands_in_exactly_one_part() {
        let ds = sample_hospital_dataset();
        let p = partition_dataset(&ds, &PartitionConfig::new(2, 7));
        let mut all: Vec<TupleId> = p.parts.iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, ds.tuple_ids().collect::<Vec<_>>());
        assert_eq!(p.parts.len(), 2);
        assert_eq!(p.capacity, 3);
    }

    #[test]
    fn capacity_bounds_skew() {
        let mut ds = dataset::Dataset::new(Schema::new(&["a", "b"]));
        for i in 0..100 {
            ds.push_row(vec![format!("v{}", i % 7), format!("w{}", i % 3)])
                .unwrap();
        }
        let p = partition_dataset(&ds, &PartitionConfig::new(4, 1));
        // Capacity 25; parts may be slightly uneven but never exceed capacity+1
        // (the +1 absorbs the final fallback placement).
        for size in p.sizes() {
            assert!(
                size <= p.capacity + 1,
                "part of size {size} exceeds capacity {}",
                p.capacity
            );
        }
        assert!(
            p.skew() <= 2.0,
            "skew {} too high: {:?}",
            p.skew(),
            p.sizes()
        );
    }

    #[test]
    fn single_part_keeps_everything_together() {
        let ds = sample_hospital_dataset();
        let p = partition_dataset(&ds, &PartitionConfig::new(1, 3));
        assert_eq!(p.parts.len(), 1);
        assert_eq!(p.parts[0].len(), ds.len());
    }

    #[test]
    fn more_parts_than_tuples_is_clamped() {
        let ds = sample_hospital_dataset();
        let p = partition_dataset(&ds, &PartitionConfig::new(100, 3));
        assert!(p.parts.len() <= ds.len());
        let total: usize = p.sizes().iter().sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = sample_hospital_dataset();
        let a = partition_dataset(&ds, &PartitionConfig::new(3, 11));
        let b = partition_dataset(&ds, &PartitionConfig::new(3, 11));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn partitioning_is_a_permutation(rows in 1usize..120, parts in 1usize..8, seed in 0u64..50) {
            let mut ds = dataset::Dataset::new(Schema::new(&["x", "y"]));
            for i in 0..rows {
                ds.push_row(vec![format!("a{}", i % 11), format!("b{}", i % 5)]).unwrap();
            }
            let p = partition_dataset(&ds, &PartitionConfig::new(parts, seed));
            let mut all: Vec<TupleId> = p.parts.iter().flatten().copied().collect();
            all.sort();
            all.dedup();
            prop_assert_eq!(all.len(), rows, "every tuple exactly once");
        }
    }
}
