//! The distributed execution driver: partition, clean every part on its own
//! worker thread, merge weights globally, finish the parts, and gather the
//! final clean dataset.
//!
//! The per-part work drives the same explicit stage objects
//! ([`mlnclean::AgpStage`], [`mlnclean::WeightLearningStage`],
//! [`mlnclean::RscStage`], [`mlnclean::FscrStage`]) the batch and
//! incremental paths compose — the distributed plan merely splits Stage I
//! around the coordinator's Eq. 6 weight merge.

use crate::partition::{partition_dataset, PartitionConfig, Partitioning};
use crate::weights::merge_weights;
use dataset::{Dataset, TupleId};
use mlnclean::{
    AgpRecord, AgpStage, CleanConfig, CleaningError, FscrRecord, FscrStage, MlnIndex,
    PipelineStage, RscRecord, RscStage, StageContext, StageRecords, WeightLearningStage,
};
use rules::RuleSet;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Wall-clock timings of the distributed phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Data partitioning (Algorithm 3).
    pub partition: Duration,
    /// Parallel phase A: index construction, AGP, local weight learning.
    pub local_learning: Duration,
    /// Coordinator phase: Eq. 6 weight merging.
    pub weight_merge: Duration,
    /// Parallel phase B: RSC + FSCR per part.
    pub local_cleaning: Duration,
    /// Gathering parts and removing duplicates.
    pub gather: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.partition + self.local_learning + self.weight_merge + self.local_cleaning + self.gather
    }
}

/// The outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The repaired dataset with one row per input tuple.
    pub repaired: Dataset,
    /// The repaired dataset after global duplicate removal, or `None` when
    /// deduplication is disabled (access through
    /// [`DistributedOutcome::deduplicated`]).
    deduplicated: Option<Dataset>,
    /// How the data was partitioned.
    pub partitioning: Partitioning,
    /// Per-part AGP records.
    pub agp: Vec<AgpRecord>,
    /// Per-part RSC records.
    pub rsc: Vec<RscRecord>,
    /// Per-part FSCR records (cell references are in *local* part
    /// coordinates; see [`DistributedOutcome::partitioning`] for the
    /// local-to-global tuple mapping).
    pub fscr: Vec<FscrRecord>,
    /// Number of γs whose weight was adjusted with cross-partition evidence.
    pub shared_gammas: usize,
    /// Phase timings.
    pub timings: PhaseTimings,
}

impl DistributedOutcome {
    /// The final output: the repaired dataset after global duplicate
    /// removal.  When deduplication is disabled this is the repaired dataset
    /// itself (no copy is made).
    pub fn deduplicated(&self) -> &Dataset {
        self.deduplicated.as_ref().unwrap_or(&self.repaired)
    }

    /// Consume the outcome, keeping only the final (deduplicated) dataset.
    pub fn into_deduplicated(self) -> Dataset {
        self.deduplicated.unwrap_or(self.repaired)
    }
}

/// Distributed MLNClean: the stand-alone pipeline executed over `workers`
/// parallel partitions.
#[derive(Debug, Clone)]
pub struct DistributedMlnClean {
    /// Number of workers (= partitions).
    pub workers: usize,
    /// The per-part cleaning configuration.
    pub config: CleanConfig,
    /// Seed for the partitioner.
    pub seed: u64,
}

impl DistributedMlnClean {
    /// Create a distributed cleaner.
    pub fn new(workers: usize, config: CleanConfig) -> Self {
        DistributedMlnClean {
            workers: workers.max(1),
            config,
            seed: 42,
        }
    }

    /// Set the partitioning seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Clean `dirty` against `rules` using the distributed execution plan.
    pub fn clean(
        &self,
        dirty: &Dataset,
        rules: &RuleSet,
    ) -> Result<DistributedOutcome, CleaningError> {
        if rules.is_empty() {
            return Err(CleaningError::NoRules);
        }
        let mut timings = PhaseTimings::default();

        // Partition (Algorithm 3), measuring tuple distance over the
        // rule-constrained attributes so related tuples co-locate.
        let start = Instant::now();
        let constrained: Vec<dataset::AttrId> = rules
            .constrained_attrs()
            .iter()
            .filter_map(|a| dirty.schema().attr_id(a))
            .collect();
        let partition_config = PartitionConfig {
            parts: self.workers,
            metric: self.config.metric,
            attributes: constrained,
            seed: self.seed,
        };
        let partitioning = partition_dataset(dirty, &partition_config);
        // Each part is a row projection sharing a snapshot of the parent's
        // value pool: what moves to a worker is `Vec<ValueId>` row images
        // plus one compact pool of distinct strings, never per-row clones —
        // and ids stay comparable across all workers and the coordinator.
        let parts: Vec<Dataset> = partitioning
            .parts
            .iter()
            .map(|ids| dirty.project_rows(ids))
            .collect();
        timings.partition = start.elapsed();

        // Phase A (parallel): index + AGP + local weight learning — the same
        // stage objects the batch pipeline composes, driven per partition.
        // (The workers already provide one level of parallelism; the stages
        // only nest block-level parallelism when the config asks for it.)
        let start = Instant::now();
        let phase_a: Vec<Result<(MlnIndex, AgpRecord), CleaningError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .iter()
                    .map(|part| {
                        let config = self.config.clone();
                        scope.spawn(move || -> Result<(MlnIndex, AgpRecord), CleaningError> {
                            let mut index = MlnIndex::build_with(part, rules, config.parallel)?;
                            let mut records = StageRecords::default();
                            let mut ctx =
                                StageContext::new(part, &config, &mut index, &mut records);
                            AgpStage.run(&mut ctx);
                            WeightLearningStage.run(&mut ctx);
                            drop(ctx);
                            Ok((index, records.agp))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
        let mut indices = Vec::with_capacity(phase_a.len());
        let mut agp_records = Vec::with_capacity(phase_a.len());
        for result in phase_a {
            let (index, agp) = result?;
            indices.push(index);
            agp_records.push(agp);
        }
        timings.local_learning = start.elapsed();

        // Coordinator: Eq. 6 weight merge.
        let start = Instant::now();
        let shared_gammas = merge_weights(&mut indices);
        timings.weight_merge = start.elapsed();

        // Phase B (parallel): RSC + FSCR per part, again via the shared
        // stage objects.
        let start = Instant::now();
        let phase_b: Vec<(Dataset, RscRecord, FscrRecord)> = std::thread::scope(|scope| {
            let handles: Vec<_> = indices
                .iter_mut()
                .zip(parts.iter())
                .map(|(index, part)| {
                    let config = self.config.clone();
                    scope.spawn(move || {
                        let mut records = StageRecords::default();
                        let mut ctx = StageContext::new(part, &config, index, &mut records);
                        RscStage.run(&mut ctx);
                        FscrStage.run(&mut ctx);
                        let repaired_part = ctx.repaired.take().expect("FSCR produced a repair");
                        (repaired_part, records.rsc, records.fscr)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        timings.local_cleaning = start.elapsed();

        // Gather: write every part's repairs back at the original tuple ids,
        // then deduplicate globally (conflicts across parts reduce to exact
        // duplicates after cleaning, which the global pass removes).
        let start = Instant::now();
        let mut repaired = dirty.clone();
        let attr_ids: Vec<dataset::AttrId> = dirty.schema().attr_ids().collect();
        // Ids below this bound belong to the shared pool prefix every part
        // snapshot agrees on; anything a worker interned locally (rare — only
        // values its repairs introduced) is carried over by string.
        let shared_prefix = repaired.pool().len();
        let mut rsc_records = Vec::with_capacity(phase_b.len());
        let mut fscr_records = Vec::with_capacity(phase_b.len());
        for ((repaired_part, rsc, fscr), ids) in phase_b.into_iter().zip(&partitioning.parts) {
            for (local_idx, &global_id) in ids.iter().enumerate() {
                let local = repaired_part.tuple(TupleId(local_idx));
                for &attr in &attr_ids {
                    let id = local.value_id(attr);
                    if id.index() < shared_prefix {
                        repaired.set_value_id(global_id, attr, id);
                    } else {
                        repaired.set_value(global_id, attr, local.value(attr).to_string());
                    }
                }
            }
            rsc_records.push(rsc);
            fscr_records.push(fscr);
        }
        let deduplicated = self.config.deduplicate.then(|| repaired.deduplicated());
        timings.gather = start.elapsed();

        Ok(DistributedOutcome {
            repaired,
            deduplicated,
            partitioning,
            agp: agp_records,
            rsc: rsc_records,
            fscr: fscr_records,
            shared_gammas,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{HaiGenerator, TpchGenerator};
    use dataset::RepairEvaluation;

    #[test]
    fn distributed_run_repairs_injected_errors() {
        // Dense data (few providers, many rows each) so per-partition groups
        // keep enough tuples for the size-based AGP heuristic — the same
        // reason the paper uses a larger τ on the dense HAI dataset than on
        // the sparse CAR dataset.
        let gen = HaiGenerator::default().with_rows(600).with_providers(15);
        let rules = HaiGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 5);
        let cleaner = DistributedMlnClean::new(4, CleanConfig::default().with_tau(1));
        let outcome = cleaner.clean(&dirty.dirty, &rules).unwrap();

        assert_eq!(outcome.repaired.len(), dirty.dirty.len());
        assert_eq!(outcome.partitioning.parts.len(), 4);
        let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
        assert!(
            report.f1() > 0.5,
            "distributed cleaning should repair most errors: {report}"
        );
        assert!(outcome.timings.total() > Duration::ZERO);
    }

    #[test]
    fn single_worker_matches_standalone_shape() {
        let gen = TpchGenerator::default().with_rows(300).with_customers(30);
        let rules = TpchGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 9);
        let distributed = DistributedMlnClean::new(1, CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let standalone = mlnclean::MlnClean::new(CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        // One worker = one partition containing the whole dataset, so the two
        // pipelines see the same data (up to tuple reordering inside the
        // partition) and must reach comparable quality.
        let d = RepairEvaluation::evaluate(&dirty, &distributed.repaired).f1();
        let s = RepairEvaluation::evaluate(&dirty, &standalone.repaired).f1();
        assert!(
            (d - s).abs() < 0.15,
            "distributed {d:.3} vs standalone {s:.3}"
        );
    }

    #[test]
    fn empty_rules_are_rejected() {
        let gen = HaiGenerator::default().with_rows(50);
        let dirty = gen.generate();
        let err = DistributedMlnClean::new(2, CleanConfig::default())
            .clean(&dirty, &RuleSet::default())
            .unwrap_err();
        assert_eq!(err, CleaningError::NoRules);
    }

    #[test]
    fn worker_count_is_clamped_to_at_least_one() {
        let cleaner = DistributedMlnClean::new(0, CleanConfig::default());
        assert_eq!(cleaner.workers, 1);
    }

    #[test]
    fn shared_gammas_benefit_from_global_evidence() {
        // With several partitions over a dense dataset, many γs appear in
        // more than one part and get cross-partition weight adjustment.
        let gen = HaiGenerator::default().with_rows(600).with_providers(15);
        let rules = HaiGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 21);
        let outcome = DistributedMlnClean::new(4, CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        assert!(outcome.shared_gammas > 0);
    }
}
