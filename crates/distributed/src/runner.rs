//! The distributed execution driver: partition, clean every part on its own
//! worker thread, merge weights globally, finish the parts, and gather the
//! final clean dataset.
//!
//! The per-part work drives the same explicit stage objects
//! ([`mlnclean::AgpStage`], [`mlnclean::WeightLearningStage`],
//! [`mlnclean::RscStage`], [`mlnclean::FscrStage`]) the batch and
//! incremental paths compose — the distributed plan merely splits Stage I
//! around the coordinator's Eq. 6 weight merge.  Like every other driver it
//! implements [`Engine`] and returns the unified [`Report`]: the per-part
//! provenance records are remapped into **global** tuple coordinates before
//! reporting, so `report.agp`/`report.rsc`/`report.fscr` read exactly like a
//! single-node run's (the historical per-part, local-coordinate vectors are
//! gone).

use crate::partition::{partition_dataset, PartitionConfig, Partitioning};
use crate::weights::merge_weights;
use dataset::{Dataset, TupleId};
use mlnclean::{
    AgpRecord, AgpStage, CleanConfig, CleanError, Engine, FscrRecord, FscrStage, MlnIndex,
    PartitionReport, PipelineStage, Report, RscRecord, RscStage, StageContext, StageRecords,
    Timings, WeightLearningStage,
};
use rules::RuleSet;
use std::time::Instant;

/// Distributed MLNClean: the stand-alone pipeline executed over `workers`
/// parallel partitions.
#[derive(Debug, Clone)]
pub struct DistributedMlnClean {
    /// Number of workers (= partitions).
    pub workers: usize,
    /// The per-part cleaning configuration.
    pub config: CleanConfig,
    /// Seed for the partitioner.
    pub seed: u64,
}

impl DistributedMlnClean {
    /// Create a distributed cleaner.
    pub fn new(workers: usize, config: CleanConfig) -> Self {
        DistributedMlnClean {
            workers: workers.max(1),
            config,
            seed: 42,
        }
    }

    /// Set the partitioning seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Clean `dirty` against `rules` using the distributed execution plan.
    pub fn clean(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError> {
        if self.workers == 0 {
            return Err(CleanError::Partition { workers: 0 });
        }
        if rules.is_empty() {
            return Err(CleanError::NoRules);
        }
        let mut timings = Timings::default();

        // Partition (Algorithm 3), measuring tuple distance over the
        // rule-constrained attributes so related tuples co-locate.
        let start = Instant::now();
        let constrained: Vec<dataset::AttrId> = rules
            .constrained_attrs()
            .iter()
            .filter_map(|a| dirty.schema().attr_id(a))
            .collect();
        let partition_config = PartitionConfig {
            parts: self.workers,
            metric: self.config.metric,
            attributes: constrained,
            seed: self.seed,
        };
        let partitioning: Partitioning = partition_dataset(dirty, &partition_config);
        // Each part is a row projection sharing a snapshot of the parent's
        // value pool: what moves to a worker is `Vec<ValueId>` row images
        // plus one compact pool of distinct strings, never per-row clones —
        // and ids stay comparable across all workers and the coordinator.
        let parts: Vec<Dataset> = partitioning
            .parts
            .iter()
            .map(|ids| dirty.project_rows(ids))
            .collect();
        timings.partition = start.elapsed();

        // Phase A (parallel): index + AGP + local weight learning — the same
        // stage objects the batch pipeline composes, driven per partition.
        // (The workers already provide one level of parallelism; the stages
        // only nest block-level parallelism when the config asks for it.)
        // Per-worker stage clocks are summed into the report's stage fields:
        // workers run concurrently, so those entries read as aggregate
        // worker time rather than elapsed wall time.
        type PhaseA = (MlnIndex, AgpRecord, Timings);
        let phase_a: Vec<Result<PhaseA, CleanError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| {
                    let config = self.config.clone();
                    scope.spawn(move || -> Result<PhaseA, CleanError> {
                        let start = Instant::now();
                        let mut index = MlnIndex::build_with(part, rules, config.parallel)?;
                        let mut records = StageRecords::default();
                        records.timings.index = start.elapsed();
                        let mut ctx = StageContext::new(part, &config, &mut index, &mut records);
                        AgpStage.run(&mut ctx);
                        WeightLearningStage.run(&mut ctx);
                        drop(ctx);
                        Ok((index, records.agp, records.timings))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut indices = Vec::with_capacity(phase_a.len());
        let mut agp_records = Vec::with_capacity(phase_a.len());
        for result in phase_a {
            let (index, agp, worker) = result?;
            indices.push(index);
            agp_records.push(agp);
            timings.index += worker.index;
            timings.agp += worker.agp;
            timings.weight_learning += worker.weight_learning;
        }

        // Coordinator: Eq. 6 weight merge (the batch plan's one and only
        // merge round).
        let start = Instant::now();
        let shared_gammas = merge_weights(&mut indices);
        timings.weight_merge = start.elapsed();
        timings.merge_rounds = 1;

        // Phase B (parallel): RSC + FSCR per part, again via the shared
        // stage objects.
        let phase_b: Vec<(Dataset, RscRecord, FscrRecord, Timings)> = std::thread::scope(|scope| {
            let handles: Vec<_> = indices
                .iter_mut()
                .zip(parts.iter())
                .map(|(index, part)| {
                    let config = self.config.clone();
                    scope.spawn(move || {
                        let mut records = StageRecords::default();
                        let mut ctx = StageContext::new(part, &config, index, &mut records);
                        RscStage.run(&mut ctx);
                        FscrStage.run(&mut ctx);
                        let repaired_part = ctx.repaired.take().expect("FSCR produced a repair");
                        (repaired_part, records.rsc, records.fscr, records.timings)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        // Gather: write every part's repairs back at the original tuple ids,
        // remap the per-part provenance into global coordinates, then
        // deduplicate globally (conflicts across parts reduce to exact
        // duplicates after cleaning, which the global pass removes).
        let start = Instant::now();
        let mut repaired = dirty.clone();
        let attr_ids: Vec<dataset::AttrId> = dirty.schema().attr_ids().collect();
        // Ids below this bound belong to the shared pool prefix every part
        // snapshot agrees on; anything a worker interned locally (rare — only
        // values its repairs introduced) is carried over by string.
        let shared_prefix = repaired.pool().len();
        let mut agp = AgpRecord::default();
        let mut rsc = RscRecord::default();
        let mut fscr = FscrRecord::default();
        for (part_agp, ids) in agp_records.into_iter().zip(&partitioning.parts) {
            absorb_agp_globally(&mut agp, part_agp, ids);
        }
        for ((repaired_part, part_rsc, part_fscr, worker), ids) in
            phase_b.into_iter().zip(&partitioning.parts)
        {
            timings.rsc += worker.rsc;
            timings.fscr += worker.fscr;
            for (local_idx, &global_id) in ids.iter().enumerate() {
                let local = repaired_part.tuple(TupleId(local_idx));
                for &attr in &attr_ids {
                    let id = local.value_id(attr);
                    if id.index() < shared_prefix {
                        repaired.set_value_id(global_id, attr, id);
                    } else {
                        repaired.set_value(global_id, attr, local.value(attr).to_string());
                    }
                }
            }
            absorb_rsc_globally(&mut rsc, part_rsc, ids);
            absorb_fscr_globally(&mut fscr, part_fscr, ids);
        }
        timings.gather = start.elapsed();

        let start = Instant::now();
        let deduplicated = self.config.deduplicate.then(|| repaired.deduplicated());
        timings.dedup = start.elapsed();

        Ok(Report::new(
            repaired,
            deduplicated,
            None,
            agp,
            rsc,
            fscr,
            timings,
            Some(PartitionReport {
                parts: partitioning.parts,
                shared_gammas,
            }),
        ))
    }
}

impl Engine for DistributedMlnClean {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn run(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError> {
        self.clean(dirty, rules)
    }
}

/// Fold one part's AGP record into the global one, remapping its local tuple
/// ids through the part's global id list.
fn absorb_agp_globally(global: &mut AgpRecord, part: AgpRecord, ids: &[TupleId]) {
    for mut merge in part.merges {
        for t in &mut merge.tuples {
            *t = ids[t.index()];
        }
        global.merges.push(merge);
    }
    global.cache.absorb(part.cache);
}

/// Fold one part's RSC record into the global one (local → global ids).
fn absorb_rsc_globally(global: &mut RscRecord, part: RscRecord, ids: &[TupleId]) {
    for mut repair in part.repairs {
        for t in &mut repair.tuples {
            *t = ids[t.index()];
        }
        global.repairs.push(repair);
    }
    global.cache.absorb(part.cache);
}

/// Fold one part's FSCR record into the global one (local → global ids).
fn absorb_fscr_globally(global: &mut FscrRecord, part: FscrRecord, ids: &[TupleId]) {
    for mut outcome in part.outcomes {
        outcome.tuple = ids[outcome.tuple.index()];
        global.outcomes.push(outcome);
    }
    for mut change in part.changes {
        change.cell.tuple = ids[change.cell.tuple.index()];
        global.changes.push(change);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{HaiGenerator, TpchGenerator};
    use dataset::RepairEvaluation;
    use std::time::Duration;

    #[test]
    fn distributed_run_repairs_injected_errors() {
        // Dense data (few providers, many rows each) so per-partition groups
        // keep enough tuples for the size-based AGP heuristic — the same
        // reason the paper uses a larger τ on the dense HAI dataset than on
        // the sparse CAR dataset.
        let gen = HaiGenerator::default().with_rows(600).with_providers(15);
        let rules = HaiGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 5);
        let cleaner = DistributedMlnClean::new(4, CleanConfig::default().with_tau(1));
        let outcome = cleaner.clean(&dirty.dirty, &rules).unwrap();

        assert_eq!(outcome.repaired.len(), dirty.dirty.len());
        let partitions = outcome.partitions.as_ref().expect("distributed report");
        assert_eq!(partitions.parts.len(), 4);
        assert!(outcome.index.is_none(), "one index per part, none global");
        let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
        assert!(
            report.f1() > 0.5,
            "distributed cleaning should repair most errors: {report}"
        );
        assert!(outcome.timings.total() > Duration::ZERO);
        assert!(outcome.timings.partition >= Duration::ZERO);
    }

    #[test]
    fn provenance_is_reported_in_global_coordinates() {
        let gen = HaiGenerator::default().with_rows(400).with_providers(12);
        let rules = HaiGenerator::rules();
        let dirty = gen.dirty(0.08, 0.5, 5);
        let outcome = DistributedMlnClean::new(3, CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        // One FSCR outcome per input tuple, each naming a valid global id,
        // covering the whole dataset exactly once.
        assert_eq!(outcome.fscr.outcomes.len(), dirty.dirty.len());
        let mut tuples: Vec<usize> = outcome
            .fscr
            .outcomes
            .iter()
            .map(|o| o.tuple.index())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        assert_eq!(tuples.len(), dirty.dirty.len());
        // Every recorded cell change matches the actual global repair.
        for change in &outcome.fscr.changes {
            assert_eq!(outcome.repaired.cell(change.cell), change.new);
            assert_eq!(dirty.dirty.cell(change.cell), change.old);
        }
        // AGP/RSC tuples stay in range too.
        for merge in &outcome.agp.merges {
            assert!(merge.tuples.iter().all(|t| t.index() < dirty.dirty.len()));
        }
        for repair in &outcome.rsc.repairs {
            assert!(repair.tuples.iter().all(|t| t.index() < dirty.dirty.len()));
        }
    }

    #[test]
    fn single_worker_matches_standalone_shape() {
        let gen = TpchGenerator::default().with_rows(300).with_customers(30);
        let rules = TpchGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 9);
        let distributed = DistributedMlnClean::new(1, CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        let standalone = mlnclean::MlnClean::new(CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        // One worker = one partition containing the whole dataset, so the two
        // pipelines see the same data (up to tuple reordering inside the
        // partition) and must reach comparable quality.
        let d = RepairEvaluation::evaluate(&dirty, &distributed.repaired).f1();
        let s = RepairEvaluation::evaluate(&dirty, &standalone.repaired).f1();
        assert!(
            (d - s).abs() < 0.15,
            "distributed {d:.3} vs standalone {s:.3}"
        );
    }

    #[test]
    fn empty_rules_are_rejected() {
        let gen = HaiGenerator::default().with_rows(50);
        let dirty = gen.generate();
        let err = DistributedMlnClean::new(2, CleanConfig::default())
            .clean(&dirty, &RuleSet::default())
            .unwrap_err();
        assert_eq!(err, CleanError::NoRules);
    }

    #[test]
    fn zero_workers_are_a_partition_error() {
        let gen = HaiGenerator::default().with_rows(20);
        let dirty = gen.generate();
        let mut cleaner = DistributedMlnClean::new(2, CleanConfig::default());
        cleaner.workers = 0; // bypass the constructor clamp
        let err = cleaner.clean(&dirty, &HaiGenerator::rules()).unwrap_err();
        assert_eq!(err, CleanError::Partition { workers: 0 });
    }

    #[test]
    fn worker_count_is_clamped_to_at_least_one() {
        let cleaner = DistributedMlnClean::new(0, CleanConfig::default());
        assert_eq!(cleaner.workers, 1);
    }

    #[test]
    fn shared_gammas_benefit_from_global_evidence() {
        // With several partitions over a dense dataset, many γs appear in
        // more than one part and get cross-partition weight adjustment.
        let gen = HaiGenerator::default().with_rows(600).with_providers(15);
        let rules = HaiGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 21);
        let outcome = DistributedMlnClean::new(4, CleanConfig::default().with_tau(2))
            .clean(&dirty.dirty, &rules)
            .unwrap();
        assert!(
            outcome
                .partitions
                .expect("distributed report")
                .shared_gammas
                > 0
        );
    }
}
