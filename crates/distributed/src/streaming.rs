//! Distributed **streaming**: one typed [`ChangeSet`] stream routed across
//! per-partition [`CleaningSession`]s, with a periodic cross-partition
//! per-block state and weight merge — and an outcome that is byte-identical
//! to a single [`CleaningSession`] fed the same stream.
//!
//! # Execution plan
//!
//! [`DistributedStreamingSession`] splits the work of the incremental engine
//! the same way [`crate::DistributedMlnClean`] splits the batch pipeline:
//!
//! 1. **Route** — every mutation of an incoming change set is routed to one
//!    partition: inserts hash to a partition ([`crate::partition::route_row`];
//!    the centroid partitioner of Algorithm 3 needs the whole dataset up
//!    front, which a stream does not have), while updates and deletes follow
//!    the tuple's home partition through a global → (partition, local) id
//!    map the coordinator maintains across mutations (delete compaction
//!    shifts both the global and the partition-local id spaces, exactly
//!    mirroring the sessions' own sequential semantics).
//! 2. **Ingest** — each partition's [`CleaningSession`] applies its slice of
//!    the change set on its own worker thread.  The sessions do the
//!    expensive incremental index maintenance (γ splice-in/out, group
//!    re-homing) in parallel over disjoint row subsets.
//! 3. **Merge** — every K change sets (and before any outcome) the
//!    coordinator merges, for each block touched since the last round, the
//!    partitions' pristine per-block state into one **global** block: the
//!    support of identical γs is summed across partitions and tuple ids are
//!    remapped through the partition id lists.  Stage I (AGP → weight
//!    learning → RSC) then re-runs on the merged dirty blocks, one worker
//!    per block.  Because weights are learned from the **merged** supports,
//!    this is the *exact-evidence* variant of the paper's Eq. 6 phase: where
//!    the batch runner averages independently learned per-partition weights
//!    (`Σᵢ nᵢwᵢ / Σᵢ nᵢ`), the streaming merge reconstructs the global
//!    evidence and learns the weight a single-node run would — which is what
//!    makes the differential harness (`tests/streaming_equivalence.rs`) able
//!    to pin the driver **byte-identical** to a single session.  The merged
//!    weight table is kept by the coordinator and injected into a partition
//!    session ([`CleaningSession::inject_weights`]) whenever a per-partition
//!    [`DistributedStreamingSession::partition_outcome`] view is drawn, so
//!    local views reflect global evidence.
//! 4. **Gather** — [`DistributedStreamingSession::outcome`] replays the
//!    memoised per-tuple fusions over the accumulated rows and reports in
//!    global coordinates with a [`PartitionReport`] attached, exactly like
//!    the batch distributed runner.
//!
//! Byte-identity with the single session holds by construction: merged
//! pristine blocks carry exactly the groups/γs/supports a single session's
//! pristine index would (same string-sorted ordering, ids translated into
//! the coordinator pool), Stage I is per-block deterministic, and FSCR is
//! per-tuple deterministic over the cleaned blocks.  The trade-off knob is
//! the merge cadence K ([`DistributedStreamingSession::merge_every`]): K = 1
//! re-merges dirty blocks after every change set (lowest re-clean latency
//! per outcome), larger K amortizes merge work across batches at the cost of
//! staler intermediate state — the final outcome is byte-identical either
//! way.

use crate::backend::{LocalPartitions, PartitionBackend};
use crate::partition::route_row;
use dataset::{ArityMismatch, Dataset, Schema, SpillDir, SpillSlot, TupleId, ValueId, ValuePool};
use mlnclean::index::{cmp_resolved, cmp_resolved_gammas};
use mlnclean::session::nth_surviving;
use mlnclean::{
    apply_tuple_fusion, AgpRecord, AgpStage, BatchReport, Block, ChangeSet, CleanConfig,
    CleanError, ConflictResolver, Engine, FscrRecord, Gamma, Group, MlnIndex, Mutation,
    PartitionReport, Report, RscRecord, RscStage, SessionWeights, Timings, TupleFusion,
    WeightLearningStage,
};
// Referenced by the module and method docs only.
#[allow(unused_imports)]
use mlnclean::CleaningSession;
use rules::RuleSet;
use std::collections::HashMap;
use std::time::Instant;

/// Budget-accounting heuristic for one memoised [`TupleFusion`] slot — the
/// same per-slot cost the single session charges, so one `memory_budget`
/// knob means the same thing on both drivers.
const FUSION_SLOT_BYTES: usize = 64;

/// The stateful distributed streaming coordinator: per-partition
/// [`CleaningSession`]s behind the same `apply`/`outcome`/`finish` surface a
/// single session offers.
///
/// The coordinator is generic over its [`PartitionBackend`] — the default
/// [`LocalPartitions`] keeps the sessions in-process (one worker thread per
/// partition), while the `transport` crate plugs in a wire-backed pool where
/// every backend call crosses a simulated network.  The routing/merge brain
/// is identical either way, which is what pins the wire-backed service
/// byte-identical to this driver.
///
/// See the [module docs](self) for the execution plan; see
/// [`DistributedStreamingMlnClean`] for the [`Engine`] front door over a
/// static dataset.
#[derive(Debug)]
pub struct DistributedStreamingSession<B: PartitionBackend = LocalPartitions> {
    config: CleanConfig,
    merge_every: usize,
    /// The stream's schema (coordinator-resident copy: O(arity)).
    schema: Schema,
    /// The coordinator value pool: every value routed through `apply` is
    /// interned here eagerly, so this pool is always a superset of every
    /// partition pool (what the translation tables rely on).  O(distinct
    /// values), not O(cells) — the coordinator holds **no** row payload; the
    /// rows live only in the partitions and are gathered on demand by
    /// [`DistributedStreamingSession::gather_dataset`].
    pool: ValuePool,
    /// Net row count of the stream (what the mirror dataset's length was).
    rows: usize,
    /// The partition pool: in-process sessions or a wire-backed service.
    backend: B,
    /// Per partition: its session's total group count, refreshed from every
    /// [`BatchReport`] it returns (partitions untouched by a change set keep
    /// their last count) — spares the coordinator a round trip per batch.
    group_counts: Vec<usize>,
    /// Per partition: the global ids of its rows, ascending — the
    /// local-to-global mapping provenance is remapped through (rows route in
    /// stream order, so partition-local order is global order restricted to
    /// the partition).
    parts: Vec<Vec<TupleId>>,
    /// Per global row: its home partition.
    home: Vec<usize>,
    /// Per partition: local pool id → coordinator pool id (pools are
    /// append-only, so the tables only ever extend).
    translate: Vec<Vec<ValueId>>,
    /// The global cleaned index: per block, the post-Stage-I state of the
    /// last merge round that touched it, over the coordinator pool.
    cleaned: MlnIndex,
    /// Cached post-Stage-I provenance per global block.
    block_agp: Vec<AgpRecord>,
    block_rsc: Vec<RscRecord>,
    /// Per global row: the memoised FSCR fusion (`None` = must be re-fused).
    /// This is the coordinator's only O(rows)-sized value state; under a
    /// [`CleanConfig::memory_budget`] the whole memo is shed to a spill
    /// segment between change sets (see [`Self::shed_fusions`]) and faulted
    /// back in before any path that reads or invalidates slots.
    fusions: Vec<Option<TupleFusion>>,
    /// Spilled fusion memo (`Some` ⇒ `fusions` is empty and the encoded
    /// vector lives in the segment).
    shed: Option<SpillSlot>,
    /// Lazily created spill directory backing [`Self::shed`].
    spill: Option<SpillDir>,
    /// Times the fusion memo was shed to disk.
    fusion_sheds: usize,
    /// Global blocks touched since the last merge round.
    dirty: Vec<bool>,
    /// Per block: γs that drew cross-partition evidence in its last merge.
    shared_per_block: Vec<usize>,
    /// Last merged per-γ weight table (also injected into the partitions).
    merged_weights: SessionWeights,
    batches: usize,
    timings: Timings,
}

/// Entry counts of every collection a [`DistributedStreamingSession`]
/// coordinator keeps resident between change sets, by category — see
/// [`DistributedStreamingSession::footprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinatorFootprint {
    /// Per-row id bookkeeping: global→partition home map, partition id
    /// lists, fusion memo slots.  Grows O(rows), independent of arity.
    pub row_entries: usize,
    /// Partition-local → coordinator value-id translation entries.  Grows
    /// O(distinct values summed over partitions).
    pub translate_entries: usize,
    /// Distinct values interned in the coordinator pool.
    pub pool_values: usize,
    /// Per-block dirtiness/statistics slots.  Fixed by the rule set.
    pub block_entries: usize,
    /// Resident dataset cells.  Always 0 since the coordinator shed its
    /// mirror dataset: rows live only in the partitions.
    pub cell_entries: usize,
}

impl DistributedStreamingSession {
    /// Open a streaming coordinator over `partitions` in-process sessions
    /// for `schema` under `rules`, merging every `merge_every` change sets
    /// (clamped to at least 1).
    ///
    /// Fails like [`CleaningSession::new`] does (empty rule set, rule
    /// referencing an unknown attribute), plus
    /// [`CleanError::Partition`] on zero partitions.
    pub fn new(
        config: CleanConfig,
        schema: Schema,
        rules: RuleSet,
        partitions: usize,
        merge_every: usize,
    ) -> Result<Self, CleanError> {
        let backend =
            LocalPartitions::new(config.clone(), schema.clone(), rules.clone(), partitions)?;
        Self::with_backend(config, schema, rules, backend, merge_every)
    }
}

impl<B: PartitionBackend> DistributedStreamingSession<B> {
    /// Open a streaming coordinator over an already-running partition pool —
    /// the constructor wire-backed services use ([`Self::new`] is the
    /// in-process shorthand).
    ///
    /// The backend's partitions must be fresh (empty) sessions for `schema`
    /// under `rules`.  Fails on zero partitions or a rule set the schema
    /// rejects.
    pub fn with_backend(
        config: CleanConfig,
        schema: Schema,
        rules: RuleSet,
        backend: B,
        merge_every: usize,
    ) -> Result<Self, CleanError> {
        let partitions = backend.partitions();
        if partitions == 0 {
            return Err(CleanError::Partition { workers: 0 });
        }
        let cleaned = MlnIndex::build_serial(&Dataset::new(schema.clone()), &rules)?;
        let blocks = cleaned.block_count();
        Ok(DistributedStreamingSession {
            config,
            merge_every: merge_every.max(1),
            schema,
            pool: ValuePool::new(),
            rows: 0,
            backend,
            group_counts: vec![0; partitions],
            parts: vec![Vec::new(); partitions],
            home: Vec::new(),
            translate: vec![Vec::new(); partitions],
            cleaned,
            block_agp: vec![AgpRecord::default(); blocks],
            block_rsc: vec![RscRecord::default(); blocks],
            fusions: Vec::new(),
            shed: None,
            spill: None,
            fusion_sheds: 0,
            dirty: vec![false; blocks],
            shared_per_block: vec![0; blocks],
            merged_weights: SessionWeights::new(),
            batches: 0,
            timings: Timings::default(),
        })
    }

    /// Number of partitions (= worker sessions).
    pub fn partition_count(&self) -> usize {
        self.backend.partitions()
    }

    /// The partition backend (for wire-backed services: transport counters,
    /// chaos hooks).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The merge cadence K: dirty blocks are re-merged and re-cleaned every
    /// K change sets (and always before an outcome).
    pub fn merge_every(&self) -> usize {
        self.merge_every
    }

    /// Net rows held across all partitions.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the coordinator currently holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Change sets applied so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Gather the accumulated (dirty) rows in global stream order from the
    /// partitions — byte-identical to the dataset a single session fed the
    /// same stream would hold.
    ///
    /// This is an O(rows) *transient* materialization: since the coordinator
    /// shed its mirror dataset (see
    /// [`DistributedStreamingSession::footprint`]), row payloads live only
    /// in the partitions and are translated into the coordinator pool on
    /// demand through the partition id lists.
    pub fn gather_dataset(&mut self) -> Dataset {
        self.extend_translations();
        let partitions = self.backend.partitions();
        let mut part_rows: Vec<Vec<Vec<ValueId>>> = (0..partitions)
            .map(|p| self.backend.gather_rows(p))
            .collect();
        let mut gathered = Dataset::with_pool(self.schema.clone(), self.pool.clone(), self.rows);
        // locals[p] walks partition p's rows in ascending local (= global
        // stream) order; merging by smallest global id restores stream order.
        let mut locals = vec![0usize; partitions];
        for g in 0..self.rows {
            let p = self.home[g];
            let local = locals[p];
            locals[p] += 1;
            debug_assert_eq!(self.parts[p][local].index(), g);
            let row: Vec<ValueId> = std::mem::take(&mut part_rows[p][local])
                .iter()
                .map(|v| self.translate[p][v.index()])
                .collect();
            gathered
                .push_row_ids(&row)
                .expect("partition rows share the stream schema");
        }
        gathered
    }

    /// The coordinator's resident-state footprint, in entry counts per
    /// category — the regression probe pinning the routing-only property:
    /// everything the coordinator retains between change sets is O(ids)
    /// (row-id maps, value-translation tables, per-block state), never
    /// O(cells) row payload (`cell_entries` is the count of resident dataset
    /// cells and must stay 0).
    pub fn footprint(&self) -> CoordinatorFootprint {
        CoordinatorFootprint {
            row_entries: self.home.len()
                + self.fusions.len()
                + self.parts.iter().map(Vec::len).sum::<usize>(),
            translate_entries: self.translate.iter().map(Vec::len).sum(),
            pool_values: self.pool.len(),
            block_entries: self.dirty.len() + self.shared_per_block.len(),
            cell_entries: 0,
        }
    }

    /// Rows per partition, in partition order.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Cumulative coordinator timings (the per-partition ingest clocks are
    /// folded in when a [`Report`] is assembled).
    pub fn timings(&self) -> Timings {
        self.timings
    }

    /// The per-γ weight table of the last merge round — learned over the
    /// **merged** cross-partition supports (the exact-evidence variant of
    /// Eq. 6) and injected into a partition session whenever
    /// [`DistributedStreamingSession::partition_outcome`] is drawn.
    pub fn merged_weights(&self) -> &SessionWeights {
        &self.merged_weights
    }

    /// Times the coordinator shed its fusion memo to the spill layer (always
    /// 0 without a [`CleanConfig::memory_budget`]).
    pub fn fusion_sheds(&self) -> usize {
        self.fusion_sheds
    }

    /// Fault the shed fusion memo back in.  Every path that pushes,
    /// invalidates, remaps or reads fusion slots calls this first, so the
    /// index-based bookkeeping always operates on resident state.
    ///
    /// Panics when the segment cannot be read back or decoded: the memo
    /// records which tuples still have valid fusions, and proceeding
    /// without it would silently re-fuse nothing (or everything) — a
    /// corrupted output, not a recoverable slowdown.
    fn reside_fusions(&mut self) {
        if let Some(slot) = self.shed.take() {
            let bytes = slot.load().expect("a shed fusion segment reads back");
            self.fusions = mlnw::from_bytes(&bytes).expect("a shed fusion segment decodes");
        }
    }

    /// Shed the fusion memo — the coordinator's only O(rows) value state —
    /// to a spill segment when the configured budget cannot hold it.  A
    /// failed spill (I/O error) leaves the memo resident: shedding is an
    /// optimization, never a correctness requirement.
    fn shed_fusions(&mut self) {
        let Some(budget) = self.config.memory_budget else {
            return;
        };
        if self.shed.is_some() || self.fusions.is_empty() {
            return;
        }
        if self.fusions.len() * FUSION_SLOT_BYTES <= budget {
            return;
        }
        if self.spill.is_none() {
            match SpillDir::new() {
                Ok(dir) => self.spill = Some(dir),
                Err(_) => return,
            }
        }
        let bytes = mlnw::to_bytes(&self.fusions).expect("in-memory fusion memos always encode");
        if let Ok(slot) = self.spill.as_ref().expect("just ensured").store(&bytes) {
            self.shed = Some(slot);
            self.fusions = Vec::new();
            self.fusion_sheds += 1;
        }
    }

    /// Pre-validate a change set against the global stream state — the same
    /// sequential-id semantics [`CleaningSession::apply`] validates, so a
    /// failed call leaves the coordinator and every partition untouched.
    fn validate(&self, changes: &ChangeSet) -> Result<(), CleanError> {
        let arity = self.schema.arity();
        let mut rows = self.rows;
        for mutation in changes.iter() {
            match mutation {
                Mutation::Insert(batch) => {
                    for row in batch {
                        if row.len() != arity {
                            return Err(CleanError::Arity(ArityMismatch {
                                expected: arity,
                                actual: row.len(),
                            }));
                        }
                    }
                    rows += batch.len();
                }
                Mutation::Update(t, attr, _) => {
                    if t.index() >= rows {
                        return Err(CleanError::UnknownTuple { tuple: *t, rows });
                    }
                    if attr.index() >= arity {
                        return Err(CleanError::UnknownAttribute { attr: *attr, arity });
                    }
                }
                Mutation::Delete(t) => {
                    if t.index() >= rows {
                        return Err(CleanError::UnknownTuple { tuple: *t, rows });
                    }
                    rows -= 1;
                }
            }
        }
        Ok(())
    }

    /// Apply one typed [`ChangeSet`] across the partitions — the streaming
    /// mirror of [`CleaningSession::apply`].
    ///
    /// Inserts hash to a partition; updates and deletes follow their
    /// tuple's home partition.  Like the single session, deletions are
    /// remap-batched: doomed rows stay in place (virtual coordinates) while
    /// the walk routes, and one compaction at the end shifts the global id
    /// space, the partition id lists, the cached cleaned blocks and the
    /// provenance — a bulk retraction costs one O(index) pass.  Every
    /// `merge_every`-th change set triggers a merge round.
    ///
    /// In the returned report, `touched_groups`/`total_groups` aggregate the
    /// **partition-local** counts (a group whose rows span several
    /// partitions counts once per partition holding it); the row, cell and
    /// block fields match the single session's exactly.
    pub fn apply(&mut self, changes: ChangeSet) -> Result<BatchReport, CleanError> {
        self.validate(&changes)?;
        // Inserts push slots and updates/deletes invalidate or remap them
        // by index — all of which needs the memo resident.
        self.reside_fusions();
        let started = Instant::now();
        let partitions = self.backend.partitions();
        let mut pending: Vec<Vec<Mutation>> = vec![Vec::new(); partitions];
        // Virtual rows a partition already has marked for deletion this
        // change set — its session interprets ids sequentially, so
        // partition-local ids shift past them.
        let mut removed_locals: Vec<Vec<usize>> = vec![Vec::new(); partitions];
        // Virtual global row indices marked for deletion, kept sorted.
        let mut removed: Vec<usize> = Vec::new();
        let mut inserted = 0usize;
        // Virtual row count during the walk: doomed rows stay in place until
        // the single compaction below, exactly like the mirror-era length.
        let mut virtual_rows = self.rows;

        for mutation in changes.into_mutations() {
            match mutation {
                Mutation::Insert(rows) => {
                    for row in rows {
                        let p = route_row(&row, partitions);
                        let g = TupleId(virtual_rows);
                        virtual_rows += 1;
                        // Intern eagerly so the coordinator pool stays a
                        // superset of every partition pool (in the exact
                        // stream order the mirror used to intern in).
                        for value in &row {
                            self.pool.intern(value);
                        }
                        self.home.push(p);
                        self.parts[p].push(g);
                        self.fusions.push(None);
                        match pending[p].last_mut() {
                            Some(Mutation::Insert(batch)) => batch.push(row),
                            _ => pending[p].push(Mutation::Insert(vec![row])),
                        }
                        inserted += 1;
                    }
                }
                Mutation::Update(t, attr, value) => {
                    // No-op updates (cell already holds the value) are
                    // detected by the home partition's session, which skips
                    // them exactly like a single session would; the routing
                    // layer no longer holds cell state to check against.
                    let v = nth_surviving(&removed, t.index());
                    self.pool.intern(&value);
                    let p = self.home[v];
                    let vl = self.parts[p]
                        .binary_search(&TupleId(v))
                        .expect("home map is consistent");
                    let local = vl - removed_locals[p].partition_point(|&r| r < vl);
                    pending[p].push(Mutation::Update(TupleId(local), attr, value));
                    self.fusions[v] = None;
                }
                Mutation::Delete(t) => {
                    let v = nth_surviving(&removed, t.index());
                    removed.insert(removed.partition_point(|&r| r < v), v);
                    let p = self.home[v];
                    let vl = self.parts[p]
                        .binary_search(&TupleId(v))
                        .expect("home map is consistent");
                    let local = vl - removed_locals[p].partition_point(|&r| r < vl);
                    pending[p].push(Mutation::Delete(TupleId(local)));
                    let at = removed_locals[p].partition_point(|&r| r < vl);
                    removed_locals[p].insert(at, vl);
                }
            }
        }

        // One global compaction for all deletes of the change set.
        let deleted_rows = removed.len();
        self.rows = virtual_rows - deleted_rows;
        if !removed.is_empty() {
            let mut idx = 0usize;
            self.home.retain(|_| {
                let keep = removed.binary_search(&idx).is_err();
                idx += 1;
                keep
            });
            let mut idx = 0usize;
            self.fusions.retain(|_| {
                let keep = removed.binary_search(&idx).is_err();
                idx += 1;
                keep
            });
            for part in &mut self.parts {
                dataset::remap_ids_after_removal(part, &removed);
            }
            self.cleaned.remap_removed(&removed);
            for agp in &mut self.block_agp {
                for merge in &mut agp.merges {
                    dataset::remap_ids_after_removal(&mut merge.tuples, &removed);
                }
            }
            for rsc in &mut self.block_rsc {
                for repair in &mut rsc.repairs {
                    dataset::remap_ids_after_removal(&mut repair.tuples, &removed);
                }
            }
        }

        // Partition ingest: the backend applies every partition's slice
        // (in-process: one worker thread per partition; over the wire: one
        // request/response per partition).
        let reports = self.backend.apply_slices(pending);
        self.timings.partition += started.elapsed();

        let mut touched_groups = 0usize;
        let mut updated_cells = 0usize;
        let mut touched_now = vec![false; self.dirty.len()];
        for (p, report) in reports.iter().enumerate() {
            let Some(report) = report else { continue };
            touched_groups += report.touched_groups;
            updated_cells += report.updated_cells;
            self.group_counts[p] = report.total_groups;
            for &b in &report.touched_blocks {
                self.dirty[b] = true;
                touched_now[b] = true;
            }
        }

        self.batches += 1;
        let report = BatchReport {
            batch: self.batches,
            rows: inserted,
            updated_cells,
            deleted_rows,
            total_rows: self.rows,
            dirty_blocks: self.dirty.iter().filter(|&&d| d).count(),
            total_blocks: self.dirty.len(),
            touched_groups,
            total_groups: self.group_counts.iter().sum(),
            touched_blocks: touched_now
                .iter()
                .enumerate()
                .filter_map(|(i, &t)| t.then_some(i))
                .collect(),
        };

        if self.batches.is_multiple_of(self.merge_every) {
            self.merge_round();
        }
        self.shed_fusions();
        Ok(report)
    }

    /// Extend the per-partition value-id translation tables to cover every
    /// value the partitions interned since the last round.  Every partition
    /// value passed through the coordinator first (the mirror interns each
    /// mutation before routing it), so the lookup cannot miss.
    fn extend_translations(&mut self) {
        for p in 0..self.backend.partitions() {
            let from = self.translate[p].len();
            let tail = self.backend.pool_tail(p, from);
            for value in &tail {
                self.translate[p].push(
                    self.pool
                        .lookup(value)
                        .expect("every partition value passed through the coordinator"),
                );
            }
        }
    }

    /// Merge one global block from the partitions' pristine blocks
    /// (`parts_blocks[p]` is partition `p`'s copy, fetched from the backend):
    /// the support of identical γs (same resolved reason/result values) is
    /// summed across partitions, value ids translate into the coordinator
    /// pool, tuple ids remap through the partition id lists, and groups/γs
    /// restore the index's string-sorted ordering — byte-identical to what
    /// a single session's pristine block over the same rows holds.  Also
    /// returns the number of γs contributed by more than one partition.
    fn merge_block(&self, parts_blocks: &[&Block]) -> (Block, usize) {
        let template = parts_blocks[0];
        let rule = template.rule;
        let reason_attrs = template.reason_attrs.clone();
        let result_attrs = template.result_attrs.clone();
        let pool = &self.pool;

        // group key -> full γ key -> (merged γ, contributing partitions).
        type GammasByKey = HashMap<Vec<ValueId>, (Gamma, usize)>;
        let mut groups: HashMap<Vec<ValueId>, GammasByKey> = HashMap::new();
        for (p, part_block) in parts_blocks.iter().enumerate() {
            for group in &part_block.groups {
                for gamma in &group.gammas {
                    let vl: Vec<ValueId> = gamma
                        .reason_values
                        .iter()
                        .map(|v| self.translate[p][v.index()])
                        .collect();
                    let vr: Vec<ValueId> = gamma
                        .result_values
                        .iter()
                        .map(|v| self.translate[p][v.index()])
                        .collect();
                    let mut full = vl.clone();
                    full.extend(vr.iter().copied());
                    let entry = groups
                        .entry(vl.clone())
                        .or_default()
                        .entry(full)
                        .or_insert_with(|| {
                            (
                                Gamma::new(
                                    rule,
                                    reason_attrs.clone(),
                                    vl,
                                    result_attrs.clone(),
                                    vr,
                                ),
                                0,
                            )
                        });
                    entry
                        .0
                        .tuples
                        .extend(gamma.tuples.iter().map(|lt| self.parts[p][lt.index()]));
                    entry.1 += 1;
                }
            }
        }

        let mut shared = 0usize;
        let mut out_groups: Vec<Group> = Vec::with_capacity(groups.len());
        for (key, gammas) in groups {
            let mut merged: Vec<Gamma> = Vec::with_capacity(gammas.len());
            for (mut gamma, contributors) in gammas.into_values() {
                if contributors > 1 {
                    shared += 1;
                }
                gamma.tuples.sort_unstable();
                merged.push(gamma);
            }
            merged.sort_by(|a, b| cmp_resolved_gammas(pool, a, b));
            out_groups.push(Group {
                key,
                gammas: merged,
            });
        }
        out_groups.sort_by(|a, b| cmp_resolved(pool, &a.key, &b.key));
        (
            Block {
                rule,
                reason_attrs,
                result_attrs,
                groups: out_groups,
            },
            shared,
        )
    }

    /// One coordinator merge round: gather the partitions' pristine state
    /// for every block touched since the last round, re-run Stage I on the
    /// merged blocks (one worker thread per block), refresh the global
    /// cleaned index + provenance, and push the merged weights back into
    /// every partition session.  A round with nothing dirty is free.
    fn merge_round(&mut self) {
        if !self.dirty.iter().any(|&d| d) {
            return;
        }
        // Re-merged blocks invalidate their tuples' fusion slots below.
        self.reside_fusions();
        self.sync_cleaned_pool();

        // Gather: fetch every partition's copy of the dirty blocks from the
        // backend (one message-shaped exchange), then merge them.
        let started = Instant::now();
        self.extend_translations();
        let dirty_idx: Vec<usize> = (0..self.dirty.len()).filter(|&i| self.dirty[i]).collect();
        let parts_blocks = self.backend.pristine_blocks(&dirty_idx);
        let merged: Vec<(usize, Block, usize)> = dirty_idx
            .iter()
            .enumerate()
            .map(|(bi, &b)| {
                let copies: Vec<&Block> = parts_blocks.iter().map(|part| &part[bi]).collect();
                let (block, shared) = self.merge_block(&copies);
                (b, block, shared)
            })
            .collect();
        self.timings.gather += started.elapsed();

        // Tuples covered by a re-merged block must be re-fused (same
        // over-approximation the single session uses).
        for (_, block, _) in &merged {
            for gamma in block.gammas() {
                for &t in &gamma.tuples {
                    self.fusions[t.index()] = None;
                }
            }
        }

        let config = &self.config;
        let pool = &self.pool;

        // AGP on the merged blocks, one worker per block.
        let started = Instant::now();
        let work: Vec<(usize, Block, usize, AgpRecord)> = std::thread::scope(|scope| {
            let handles: Vec<_> = merged
                .into_iter()
                .map(|(i, mut block, shared)| {
                    scope.spawn(move || {
                        let agp = AgpStage::run_block(config, &mut block, pool);
                        (i, block, shared, agp)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("AGP worker panicked"))
                .collect()
        });
        self.timings.agp += started.elapsed();

        // Weight merge: learning over the merged supports is the exact
        // global weight (the exact-evidence variant of Eq. 6).  The merged
        // table is kept for [`DistributedStreamingSession::partition_outcome`],
        // which injects it into the partition lazily — eagerly pushing it
        // into every session each round would pay one table clone per
        // partition per round on the ingest hot path for a view most
        // streams never draw.
        let started = Instant::now();
        let mut work = work;
        for (_, block, _, _) in &mut work {
            WeightLearningStage::run_block(config, block);
        }
        for (_, block, _, _) in &work {
            self.merged_weights.absorb_block(block, pool);
        }
        self.timings.weight_merge += started.elapsed();

        // RSC on the merged blocks, one worker per block.
        let config = &self.config;
        let pool = &self.pool;
        let started = Instant::now();
        let finished: Vec<(usize, Block, usize, AgpRecord, RscRecord)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = work
                    .into_iter()
                    .map(|(i, mut block, shared, agp)| {
                        scope.spawn(move || {
                            let rsc = RscStage::run_block(config, &mut block, pool);
                            (i, block, shared, agp, rsc)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("RSC worker panicked"))
                    .collect()
            });
        self.timings.rsc += started.elapsed();

        for (i, block, shared, agp, rsc) in finished {
            self.cleaned.blocks[i] = block;
            self.block_agp[i] = agp;
            self.block_rsc[i] = rsc;
            self.shared_per_block[i] = shared;
        }
        for dirty in &mut self.dirty {
            *dirty = false;
        }
        self.timings.merge_rounds += 1;
    }

    /// Re-snapshot the coordinator pool into the cleaned index when the
    /// stream interned new values (pools are append-only, so a length check
    /// spots growth).
    fn sync_cleaned_pool(&mut self) {
        if self.pool.len() != self.cleaned.pool().len() {
            let blocks = std::mem::take(&mut self.cleaned.blocks);
            self.cleaned = MlnIndex::from_parts(blocks, self.pool.clone());
        }
    }

    /// Flush pending dirtiness and make sure every row has a memoised
    /// fusion.
    fn ensure_fusions(&mut self) {
        self.merge_round();
        self.sync_cleaned_pool();
        // `assemble` reads every slot, so the memo must be resident even
        // when no block was dirty.
        self.reside_fusions();
        if self.fusions.iter().all(Option::is_some) {
            return;
        }
        let started = Instant::now();
        let resolver = ConflictResolver::new(self.config.max_exhaustive_fusion);
        let plan = resolver.plan(&self.cleaned);
        for i in 0..self.fusions.len() {
            if self.fusions[i].is_none() {
                self.fusions[i] = Some(resolver.fuse_tuple(&plan, TupleId(i)));
            }
        }
        self.timings.fscr += started.elapsed();
    }

    /// Re-merge whatever is dirty and produce the full [`Report`] over the
    /// net rows streamed so far — byte-identical (output CSV and
    /// AGP/RSC/FSCR provenance) to a single [`CleaningSession`] fed the same
    /// change sets.  Provenance is in global coordinates and
    /// [`Report::partitions`] carries the partition id lists plus the
    /// shared-γ count of the weight merge.
    pub fn outcome(&mut self) -> Report {
        self.ensure_fusions();
        let repaired = self.gather_dataset();
        let cleaned = self.cleaned.clone();
        let report = self.assemble(repaired, cleaned);
        self.shed_fusions();
        report
    }

    /// Close the stream, moving the accumulated state into the final
    /// [`Report`] (no index copy, unlike
    /// [`DistributedStreamingSession::outcome`]; the repaired dataset is
    /// gathered from the partitions either way — the coordinator holds no
    /// resident copy to move out).
    pub fn finish(mut self) -> Report {
        self.ensure_fusions();
        let repaired = self.gather_dataset();
        let cleaned = std::mem::replace(
            &mut self.cleaned,
            MlnIndex::from_parts(Vec::new(), ValuePool::new()),
        );
        self.assemble(repaired, cleaned)
    }

    /// A **partition-local** view: re-clean partition `p`'s own rows through
    /// its session, with the globally merged weights injected first — the
    /// per-partition outcome the paper's Eq. 6 phase feeds.  Its provenance
    /// and row ids are partition-local; the global, byte-exact result is
    /// [`DistributedStreamingSession::outcome`].
    ///
    /// # Panics
    /// Panics when `p` is out of range.
    pub fn partition_outcome(&mut self, p: usize) -> Report {
        assert!(p < self.backend.partitions(), "partition {p} out of range");
        self.merge_round();
        self.backend
            .partition_outcome(p, self.merged_weights.clone())
    }

    /// Apply the memoised fusions and assemble the unified report — the
    /// shared tail of `outcome` (clones) and `finish` (moves).
    fn assemble(&mut self, mut repaired: Dataset, cleaned: MlnIndex) -> Report {
        let started = Instant::now();
        let mut fscr = FscrRecord::default();
        for (i, fusion) in self.fusions.iter().enumerate() {
            let fusion = fusion.as_ref().expect("ensure_fusions ran");
            apply_tuple_fusion(&mut repaired, cleaned.pool(), TupleId(i), fusion, &mut fscr);
        }
        self.timings.fscr += started.elapsed();

        let deduplicated = if self.config.deduplicate {
            let started = Instant::now();
            let deduplicated = repaired.deduplicated();
            self.timings.dedup += started.elapsed();
            Some(deduplicated)
        } else {
            None
        };

        let mut agp = AgpRecord::default();
        let mut rsc = RscRecord::default();
        for (block_agp, block_rsc) in self.block_agp.iter().zip(&self.block_rsc) {
            agp.merges.extend_from_slice(&block_agp.merges);
            agp.cache.absorb(block_agp.cache);
            rsc.repairs.extend_from_slice(&block_rsc.repairs);
            rsc.cache.absorb(block_rsc.cache);
        }

        // Coordinator phases are wall clock; the index field aggregates the
        // partitions' (concurrent) ingest clocks, like the batch runner's
        // per-worker stage sums.
        let mut timings = self.timings;
        timings.index += self.backend.index_clock();

        Report::new(
            repaired,
            deduplicated,
            Some(std::sync::Arc::new(cleaned)),
            agp,
            rsc,
            fscr,
            timings,
            Some(PartitionReport {
                parts: self.parts.clone(),
                shared_gammas: self.shared_per_block.iter().sum(),
            }),
        )
    }
}

/// Distributed streaming MLNClean behind the unified [`Engine`] front door:
/// streams a static dataset through a [`DistributedStreamingSession`] in
/// fixed-size micro-batches and finishes it.
///
/// By streaming/single-session equivalence (and session/batch equivalence)
/// the result is byte-identical to [`mlnclean::MlnClean`] and
/// [`mlnclean::IncrementalMlnClean`] on the same input; what changes is the
/// execution plan — and, for a live stream, the ability to route interleaved
/// updates/deletes across partitions (see
/// [`DistributedStreamingSession::apply`]).
#[derive(Debug, Clone)]
pub struct DistributedStreamingMlnClean {
    /// Number of partitions (= worker sessions).
    pub partitions: usize,
    /// Merge cadence K: cross-partition merge every K micro-batches.
    pub merge_every: usize,
    /// Micro-batch size in rows.
    pub batch_rows: usize,
    /// The per-partition cleaning configuration.
    pub config: CleanConfig,
}

impl DistributedStreamingMlnClean {
    /// Create a streaming distributed cleaner with merge cadence 1 and the
    /// default micro-batch size (128 rows).
    pub fn new(partitions: usize, config: CleanConfig) -> Self {
        DistributedStreamingMlnClean {
            partitions: partitions.max(1),
            merge_every: 1,
            batch_rows: 128,
            config,
        }
    }

    /// Set the merge cadence K (clamped to at least 1).
    pub fn with_merge_every(mut self, merge_every: usize) -> Self {
        self.merge_every = merge_every.max(1);
        self
    }

    /// Set the micro-batch size (clamped to at least one row).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// Clean `dirty` against `rules` by streaming it through per-partition
    /// sessions.
    pub fn clean(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError> {
        let mut session = DistributedStreamingSession::new(
            self.config.clone(),
            dirty.schema().clone(),
            rules.clone(),
            self.partitions,
            self.merge_every,
        )?;
        let batch_rows = self.batch_rows.max(1);
        let mut at = 0usize;
        while at < dirty.len() {
            let upto = (at + batch_rows).min(dirty.len());
            let rows: Vec<Vec<String>> = (at..upto)
                .map(|t| dirty.tuple(TupleId(t)).owned_values())
                .collect();
            session.apply(ChangeSet::inserting(rows))?;
            at = upto;
        }
        Ok(session.finish())
    }
}

impl Engine for DistributedStreamingMlnClean {
    fn name(&self) -> &'static str {
        "distributed-streaming"
    }

    fn run(&self, dirty: &Dataset, rules: &RuleSet) -> Result<Report, CleanError> {
        self.clean(dirty, rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{csv, sample_hospital_dataset, AttrId};
    use mlnclean::{GammaSignature, MlnClean};

    fn hospital_rows(ds: &Dataset) -> Vec<Vec<String>> {
        ds.tuples().map(|t| t.owned_values()).collect()
    }

    #[test]
    fn engine_run_matches_batch_byte_for_byte() {
        let dirty = sample_hospital_dataset();
        let rules = rules::sample_hospital_rules();
        let config = CleanConfig::default().with_tau(1);
        let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
        for partitions in [1, 2, 4] {
            let streamed = DistributedStreamingMlnClean::new(partitions, config.clone())
                .with_batch_rows(2)
                .run(&dirty, &rules)
                .unwrap();
            assert_eq!(
                csv::to_csv(&batch.repaired),
                csv::to_csv(&streamed.repaired),
                "{partitions} partitions diverged from the batch run"
            );
            assert_eq!(batch.agp, streamed.agp);
            assert_eq!(batch.rsc, streamed.rsc);
            assert_eq!(batch.fscr, streamed.fscr);
            let parts = streamed.partitions.expect("distributed report");
            assert_eq!(parts.parts.len(), partitions);
            assert_eq!(parts.sizes().iter().sum::<usize>(), dirty.len());
        }
        assert_eq!(
            DistributedStreamingMlnClean::new(2, CleanConfig::default()).name(),
            "distributed-streaming"
        );
    }

    #[test]
    fn routed_mutations_follow_the_home_partition() {
        let dirty = sample_hospital_dataset();
        let rules = rules::sample_hospital_rules();
        let mut session = DistributedStreamingSession::new(
            CleanConfig::default().with_tau(1),
            dirty.schema().clone(),
            rules,
            2,
            1,
        )
        .unwrap();
        session
            .apply(ChangeSet::inserting(hospital_rows(&dirty)))
            .unwrap();
        assert_eq!(session.len(), dirty.len());
        assert_eq!(session.partition_sizes().iter().sum::<usize>(), 6);

        // Update one cell, then delete a row: both must land in the right
        // partition and keep the global row count consistent.
        let st = dirty.schema().attr_id("ST").unwrap();
        let report = session
            .apply(
                ChangeSet::new()
                    .update(TupleId(3), st, "AL")
                    .delete(TupleId(5)),
            )
            .unwrap();
        assert_eq!(report.updated_cells, 1);
        assert_eq!(report.deleted_rows, 1);
        assert_eq!(session.len(), 5);
        assert_eq!(session.partition_sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn zero_partitions_and_empty_rules_are_rejected() {
        let dirty = sample_hospital_dataset();
        let err = DistributedStreamingSession::new(
            CleanConfig::default(),
            dirty.schema().clone(),
            rules::sample_hospital_rules(),
            0,
            1,
        )
        .unwrap_err();
        assert_eq!(err, CleanError::Partition { workers: 0 });
        let err = DistributedStreamingSession::new(
            CleanConfig::default(),
            dirty.schema().clone(),
            RuleSet::default(),
            2,
            1,
        )
        .unwrap_err();
        assert_eq!(err, CleanError::NoRules);
    }

    #[test]
    fn validation_is_atomic_across_partitions() {
        let dirty = sample_hospital_dataset();
        let mut session = DistributedStreamingSession::new(
            CleanConfig::default().with_tau(1),
            dirty.schema().clone(),
            rules::sample_hospital_rules(),
            2,
            1,
        )
        .unwrap();
        session
            .apply(ChangeSet::inserting(hospital_rows(&dirty)))
            .unwrap();
        let before = csv::to_csv(&session.gather_dataset());
        // Valid prefix, out-of-bounds tail: nothing may apply anywhere.
        let err = session
            .apply(ChangeSet::new().delete(TupleId(0)).delete(TupleId(5)))
            .unwrap_err();
        assert_eq!(
            err,
            CleanError::UnknownTuple {
                tuple: TupleId(5),
                rows: 5
            }
        );
        assert_eq!(csv::to_csv(&session.gather_dataset()), before);
        assert_eq!(session.partition_sizes().iter().sum::<usize>(), 6);
        // Unknown attributes are caught too.
        let err = session
            .apply(ChangeSet::new().update(TupleId(0), AttrId(99), "x"))
            .unwrap_err();
        assert!(matches!(err, CleanError::UnknownAttribute { .. }));
    }

    #[test]
    fn partition_outcome_reflects_injected_global_weights() {
        let dirty = sample_hospital_dataset();
        let rules = rules::sample_hospital_rules();
        let mut session = DistributedStreamingSession::new(
            CleanConfig::default().with_tau(1),
            dirty.schema().clone(),
            rules,
            2,
            1,
        )
        .unwrap();
        session
            .apply(ChangeSet::inserting(hospital_rows(&dirty)))
            .unwrap();
        let _ = session.outcome();
        let merged = session.merged_weights().clone();
        assert!(!merged.is_empty(), "the merge round learned global weights");

        // Every γ a partition's local view holds must carry the globally
        // merged weight, not a locally learned one (AGP and RSC preserve γ
        // signatures, so every surviving local γ appears in the table).
        let mut checked = 0usize;
        for p in 0..session.partition_count() {
            let local = session.partition_outcome(p);
            let local_index = local.index.as_ref().expect("partition index");
            for block in &local_index.blocks {
                for gamma in block.gammas() {
                    let signature = GammaSignature::of(gamma, local_index.pool());
                    let global = merged
                        .get(&signature)
                        .expect("partition γ exists in the merged table");
                    assert!(
                        (gamma.weight - global).abs() < 1e-12,
                        "partition {p} γ {signature:?}: local {} vs merged {global}",
                        gamma.weight
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "the partitions held γs to check");
    }

    #[test]
    fn merge_cadence_defers_rounds_but_not_the_outcome() {
        let dirty = sample_hospital_dataset();
        let rules = rules::sample_hospital_rules();
        let config = CleanConfig::default().with_tau(1);
        let batch = MlnClean::new(config.clone()).clean(&dirty, &rules).unwrap();
        let mut session = DistributedStreamingSession::new(
            config,
            dirty.schema().clone(),
            rules,
            2,
            3, // merge every 3 change sets
        )
        .unwrap();
        let rows = hospital_rows(&dirty);
        for row in rows {
            session.apply(ChangeSet::inserting(vec![row])).unwrap();
        }
        // 6 single-row batches at K = 3 ⇒ exactly 2 cadence rounds so far.
        assert_eq!(session.timings().merge_rounds, 2);
        let streamed = session.finish();
        assert_eq!(
            csv::to_csv(&batch.repaired),
            csv::to_csv(&streamed.repaired)
        );
        assert_eq!(batch.fscr, streamed.fscr);
    }

    /// Under a memory budget the coordinator sheds its only O(rows) value
    /// state — the fusion memo — to the spill layer between change sets,
    /// and the stream's outputs must not move by a byte.
    #[test]
    fn budgeted_coordinator_sheds_fusions_and_stays_byte_identical() {
        let dirty = sample_hospital_dataset();
        let rules = rules::sample_hospital_rules();
        let config = CleanConfig::default().with_tau(1);

        let run = |config: CleanConfig| {
            let mut session = DistributedStreamingSession::new(
                config,
                dirty.schema().clone(),
                rules.clone(),
                2,
                1,
            )
            .unwrap();
            for row in hospital_rows(&dirty) {
                session.apply(ChangeSet::inserting(vec![row])).unwrap();
            }
            let mid = session.outcome();
            let st = dirty.schema().attr_id("ST").unwrap();
            session
                .apply(
                    ChangeSet::new()
                        .update(TupleId(3), st, "AL")
                        .delete(TupleId(5)),
                )
                .unwrap();
            let sheds = session.fusion_sheds();
            (mid, session.finish(), sheds)
        };

        let (plain_mid, plain, plain_sheds) = run(config.clone());
        assert_eq!(plain_sheds, 0, "no budget, no shedding");
        let (tight_mid, tight, tight_sheds) = run(config.with_memory_budget(1));
        assert!(tight_sheds > 0, "a 1-byte budget must shed the fusion memo");

        for (label, a, b) in [
            ("mid-stream outcome", &plain_mid, &tight_mid),
            ("final outcome", &plain, &tight),
        ] {
            assert_eq!(
                csv::to_csv(&a.repaired),
                csv::to_csv(&b.repaired),
                "{label}: repaired CSV diverged under a budget"
            );
            assert_eq!(a.agp, b.agp, "{label}: AGP diverged");
            assert_eq!(a.rsc, b.rsc, "{label}: RSC diverged");
            assert_eq!(a.fscr, b.fscr, "{label}: FSCR diverged");
        }
    }

    /// The routing-only regression probe: the coordinator's resident state
    /// is O(ids) — it never retains row payload (`cell_entries` stays 0 and
    /// the per-row bookkeeping is independent of arity).
    #[test]
    fn coordinator_footprint_is_o_ids_not_o_cells() {
        // Two streams over the same fixed value domain, differing only in
        // arity (wide = every row cloned to twice the width).  A mirror-era
        // coordinator would hold rows × arity cells; a routing-only one holds
        // identical id-state for both.
        let narrow_schema = Schema::new(&["A", "B", "C"]);
        let wide_schema = Schema::new(&["A", "B", "C", "D", "E", "F"]);
        let rules = rules::parse_rules("FD: A -> B").unwrap();
        let rows: Vec<Vec<String>> = (0..32)
            .map(|i| {
                vec![
                    format!("k{}", i % 4),
                    format!("v{}", i % 8),
                    format!("w{}", i % 2),
                ]
            })
            .collect();
        let wide_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut doubled = r.clone();
                doubled.extend(r.iter().cloned());
                doubled
            })
            .collect();
        let config = CleanConfig::default().with_tau(1);
        let mut narrow =
            DistributedStreamingSession::new(config.clone(), narrow_schema, rules.clone(), 2, 1)
                .unwrap();
        let mut wide = DistributedStreamingSession::new(config, wide_schema, rules, 2, 1).unwrap();
        narrow.apply(ChangeSet::inserting(rows.clone())).unwrap();
        wide.apply(ChangeSet::inserting(wide_rows)).unwrap();

        let narrow_fp = narrow.footprint();
        let wide_fp = wide.footprint();
        // No resident cells, ever.
        assert_eq!(narrow_fp.cell_entries, 0);
        assert_eq!(wide_fp.cell_entries, 0);
        // Same value domain ⇒ same pool/translate state; doubling the arity
        // leaves the per-row id bookkeeping untouched (it would double the
        // cell count of a resident mirror).
        assert_eq!(narrow_fp.row_entries, wide_fp.row_entries);
        assert_eq!(narrow_fp.pool_values, wide_fp.pool_values);
        assert_eq!(narrow_fp.translate_entries, wide_fp.translate_entries);

        // Row bookkeeping is linear in rows: stream the same rows again and
        // the per-row entries double exactly while the pool stays put.
        narrow.apply(ChangeSet::inserting(rows)).unwrap();
        let grown = narrow.footprint();
        assert_eq!(grown.row_entries, 2 * narrow_fp.row_entries);
        assert_eq!(grown.pool_values, narrow_fp.pool_values);
        assert_eq!(grown.cell_entries, 0);

        // The gathered dataset is the transient O(cells) view.
        assert_eq!(narrow.gather_dataset().len(), 64);
        assert_eq!(wide.gather_dataset().len(), 32);
    }
}
