//! Eq. 6: evidence-weighted merging of per-partition γ weights.
//!
//! Weight learning inside a small partition can be unreliable — a γ may have
//! no corroborating evidence locally even though other partitions hold
//! plenty.  The coordinator therefore merges the locally learned weights of
//! identical γs across partitions,
//!
//! ```text
//! w(γ) = Σᵢ nᵢ · wᵢ  /  Σᵢ nᵢ
//! ```
//!
//! where `nᵢ` is the number of tuples related to γ in partition `Pᵢ` and `wᵢ`
//! the weight learned there, and pushes the merged weight back into every
//! partition's index before RSC/FSCR run.

use dataset::ValuePool;
use mlnclean::MlnIndex;
use std::collections::HashMap;

/// Identity of a γ across partitions: same rule, same reason values, same
/// result values.  Values are resolved strings: partitions built by the
/// runner share one pool snapshot, but `merge_weights` also accepts indexes
/// over unrelated pools (e.g. hand-built partitions in tests), where raw ids
/// would not be comparable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GammaKey {
    /// Rule index.
    pub rule: usize,
    /// Reason-part values.
    pub reason: Vec<String>,
    /// Result-part values.
    pub result: Vec<String>,
}

impl GammaKey {
    fn of(gamma: &mlnclean::Gamma, pool: &ValuePool) -> Self {
        GammaKey {
            rule: gamma.rule.index(),
            reason: gamma
                .resolve_reason_values(pool)
                .into_iter()
                .map(str::to_string)
                .collect(),
            result: gamma
                .resolve_result_values(pool)
                .into_iter()
                .map(str::to_string)
                .collect(),
        }
    }
}

/// Merge the γ weights of every partition index in place (Eq. 6) and refresh
/// the per-block probabilities.  Returns the number of distinct γs that
/// appeared in more than one partition (i.e. actually benefited from global
/// evidence).
pub fn merge_weights(indices: &mut [MlnIndex]) -> usize {
    // Pass 1: accumulate Σ n·w and Σ n per γ key.
    let mut accum: HashMap<GammaKey, (f64, f64, usize)> = HashMap::new();
    for index in indices.iter() {
        for block in &index.blocks {
            for gamma in block.gammas() {
                let n = gamma.support() as f64;
                let entry = accum
                    .entry(GammaKey::of(gamma, index.pool()))
                    .or_insert((0.0, 0.0, 0));
                entry.0 += n * gamma.weight;
                entry.1 += n;
                entry.2 += 1;
            }
        }
    }

    let shared = accum.values().filter(|(_, _, parts)| *parts > 1).count();

    // Pass 2: write the merged weight back and recompute each block's softmax
    // probabilities.
    for index in indices.iter_mut() {
        let (blocks, pool) = index.split_mut();
        for block in blocks.iter_mut() {
            for group in &mut block.groups {
                for gamma in &mut group.gammas {
                    if let Some((num, den, _)) = accum.get(&GammaKey::of(gamma, pool)) {
                        if *den > 0.0 {
                            gamma.weight = num / den;
                        }
                    }
                }
            }
            // Refresh probabilities: Pr(γ) ∝ exp(w) within the block.
            let weights: Vec<f64> = block.gammas().map(|g| g.weight).collect();
            if weights.is_empty() {
                continue;
            }
            let max_w = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = weights.iter().map(|w| (w - max_w).exp()).collect();
            let z: f64 = exps.iter().sum();
            let mut idx = 0;
            for group in &mut block.groups {
                for gamma in &mut group.gammas {
                    gamma.probability = exps[idx] / z;
                    idx += 1;
                }
            }
        }
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{Dataset, Schema};
    use mln::LearningConfig;
    use mlnclean::MlnIndex;

    fn part(rows: &[(&str, &str)]) -> MlnIndex {
        let mut ds = Dataset::new(Schema::new(&["CT", "ST"]));
        for (c, s) in rows {
            ds.push_row(vec![c.to_string(), s.to_string()]).unwrap();
        }
        let rules = rules::parse_rules("FD: CT -> ST").unwrap();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        mlnclean::weights::assign_weights(&mut index, &LearningConfig::default());
        index
    }

    #[test]
    fn merged_weight_is_the_evidence_weighted_average() {
        // Partition 1 has three DOTHAN/AL tuples, partition 2 has one.
        let mut indices = vec![
            part(&[
                ("DOTHAN", "AL"),
                ("DOTHAN", "AL"),
                ("DOTHAN", "AL"),
                ("BOAZ", "AL"),
            ]),
            part(&[("DOTHAN", "AL"), ("BOAZ", "AK")]),
        ];
        let dothan_weight = |index: &MlnIndex| -> f64 {
            index.blocks[0]
                .gammas()
                .find(|g| g.resolve_reason_values(index.pool()) == vec!["DOTHAN"])
                .unwrap()
                .weight
        };
        let w1 = dothan_weight(&indices[0]);
        let w2 = dothan_weight(&indices[1]);
        let shared = merge_weights(&mut indices);
        assert!(shared >= 1, "the DOTHAN/AL γ appears in both partitions");

        let expected = (3.0 * w1 + 1.0 * w2) / 4.0;
        for index in &indices {
            let merged = dothan_weight(index);
            assert!(
                (merged - expected).abs() < 1e-12,
                "got {merged}, want {expected}"
            );
        }
    }

    #[test]
    fn probabilities_are_renormalized_after_merge() {
        let mut indices = vec![
            part(&[("DOTHAN", "AL"), ("BOAZ", "AL"), ("BOAZ", "AK")]),
            part(&[("DOTHAN", "AL"), ("DOTHAN", "AL")]),
        ];
        merge_weights(&mut indices);
        for index in &indices {
            for block in &index.blocks {
                let total: f64 = block.gammas().map(|g| g.probability).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gamma_unique_to_one_part_keeps_its_weight() {
        let mut indices = vec![
            part(&[("DOTHAN", "AL"), ("DOTHAN", "AL")]),
            part(&[("BOAZ", "AK")]),
        ];
        let before = indices[1].blocks[0].gammas().next().unwrap().weight;
        merge_weights(&mut indices);
        let after = indices[1].blocks[0].gammas().next().unwrap().weight;
        assert!((before - after).abs() < 1e-12);
    }
}
