//! Eq. 6: evidence-weighted merging of per-partition γ weights.
//!
//! Weight learning inside a small partition can be unreliable — a γ may have
//! no corroborating evidence locally even though other partitions hold
//! plenty.  The coordinator therefore merges the locally learned weights of
//! identical γs across partitions,
//!
//! ```text
//! w(γ) = Σᵢ nᵢ · wᵢ  /  Σᵢ nᵢ
//! ```
//!
//! where `nᵢ` is the number of tuples related to γ in partition `Pᵢ` and `wᵢ`
//! the weight learned there, and pushes the merged weight back into every
//! partition's index before RSC/FSCR run.

use mlnclean::{GammaSignature, MlnIndex, SessionWeights};
use std::collections::HashMap;

/// Accumulate `(Σ n·w, Σ n, #partitions)` per γ identity across partition
/// indexes — pass 1 of the Eq. 6 merge, shared by [`merge_weights`] and
/// [`merged_weight_table`].  Identities are resolved strings: partitions
/// built by the runner share one pool snapshot, but the accumulation also
/// accepts indexes over unrelated pools (e.g. hand-built partitions in
/// tests, or streaming sessions with per-partition pools), where raw ids
/// would not be comparable.
fn accumulate_evidence(indices: &[MlnIndex]) -> HashMap<GammaSignature, (f64, f64, usize)> {
    let mut accum: HashMap<GammaSignature, (f64, f64, usize)> = HashMap::new();
    for index in indices.iter() {
        for block in &index.blocks {
            for gamma in block.gammas() {
                let n = gamma.support() as f64;
                let entry = accum
                    .entry(GammaSignature::of(gamma, index.pool()))
                    .or_insert((0.0, 0.0, 0));
                entry.0 += n * gamma.weight;
                entry.1 += n;
                entry.2 += 1;
            }
        }
    }
    accum
}

/// The Eq. 6 evidence-weighted average as a transferable [`SessionWeights`]
/// table — for coordinators that push approximately merged weights into
/// live sessions through [`mlnclean::CleaningSession::inject_weights`]
/// rather than rewriting indexes in place.
///
/// Note the streaming driver does **not** use this approximation: it merges
/// the per-γ supports across partitions and re-learns, which reproduces the
/// exact single-node weight (see [`crate::streaming`]).
pub fn merged_weight_table(indices: &[MlnIndex]) -> SessionWeights {
    let mut table = SessionWeights::new();
    for (signature, (num, den, _)) in accumulate_evidence(indices) {
        if den > 0.0 {
            table.set(signature, num / den);
        }
    }
    table
}

/// Merge the γ weights of every partition index in place (Eq. 6) and refresh
/// the per-block probabilities.  Returns the number of distinct γs that
/// appeared in more than one partition (i.e. actually benefited from global
/// evidence).
pub fn merge_weights(indices: &mut [MlnIndex]) -> usize {
    // Pass 1: accumulate Σ n·w and Σ n per γ identity.
    let accum = accumulate_evidence(indices);
    let shared = accum.values().filter(|(_, _, parts)| *parts > 1).count();

    // Pass 2: write the merged weight back and recompute each block's softmax
    // probabilities.
    for index in indices.iter_mut() {
        let (blocks, pool) = index.split_mut();
        for block in blocks.iter_mut() {
            for group in &mut block.groups {
                for gamma in &mut group.gammas {
                    if let Some((num, den, _)) = accum.get(&GammaSignature::of(gamma, pool)) {
                        if *den > 0.0 {
                            gamma.weight = num / den;
                        }
                    }
                }
            }
            // Refresh probabilities: Pr(γ) ∝ exp(w) within the block.
            let weights: Vec<f64> = block.gammas().map(|g| g.weight).collect();
            if weights.is_empty() {
                continue;
            }
            let max_w = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = weights.iter().map(|w| (w - max_w).exp()).collect();
            let z: f64 = exps.iter().sum();
            let mut idx = 0;
            for group in &mut block.groups {
                for gamma in &mut group.gammas {
                    gamma.probability = exps[idx] / z;
                    idx += 1;
                }
            }
        }
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{Dataset, Schema};
    use mlnclean::MlnIndex;

    fn part(rows: &[(&str, &str)]) -> MlnIndex {
        let mut ds = Dataset::new(Schema::new(&["CT", "ST"]));
        for (c, s) in rows {
            ds.push_row(vec![c.to_string(), s.to_string()]).unwrap();
        }
        let rules = rules::parse_rules("FD: CT -> ST").unwrap();
        let mut index = MlnIndex::build(&ds, &rules).unwrap();
        mlnclean::weights::assign_weights(&mut index);
        index
    }

    #[test]
    fn merged_weight_is_the_evidence_weighted_average() {
        // Partition 1 has three DOTHAN/AL tuples, partition 2 has one.
        let mut indices = vec![
            part(&[
                ("DOTHAN", "AL"),
                ("DOTHAN", "AL"),
                ("DOTHAN", "AL"),
                ("BOAZ", "AL"),
            ]),
            part(&[("DOTHAN", "AL"), ("BOAZ", "AK")]),
        ];
        let dothan_weight = |index: &MlnIndex| -> f64 {
            index.blocks[0]
                .gammas()
                .find(|g| g.resolve_reason_values(index.pool()) == vec!["DOTHAN"])
                .unwrap()
                .weight
        };
        let w1 = dothan_weight(&indices[0]);
        let w2 = dothan_weight(&indices[1]);
        let shared = merge_weights(&mut indices);
        assert!(shared >= 1, "the DOTHAN/AL γ appears in both partitions");

        let expected = (3.0 * w1 + 1.0 * w2) / 4.0;
        for index in &indices {
            let merged = dothan_weight(index);
            assert!(
                (merged - expected).abs() < 1e-12,
                "got {merged}, want {expected}"
            );
        }
    }

    #[test]
    fn probabilities_are_renormalized_after_merge() {
        let mut indices = vec![
            part(&[("DOTHAN", "AL"), ("BOAZ", "AL"), ("BOAZ", "AK")]),
            part(&[("DOTHAN", "AL"), ("DOTHAN", "AL")]),
        ];
        merge_weights(&mut indices);
        for index in &indices {
            for block in &index.blocks {
                let total: f64 = block.gammas().map(|g| g.probability).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gamma_unique_to_one_part_keeps_its_weight() {
        let mut indices = vec![
            part(&[("DOTHAN", "AL"), ("DOTHAN", "AL")]),
            part(&[("BOAZ", "AK")]),
        ];
        let before = indices[1].blocks[0].gammas().next().unwrap().weight;
        merge_weights(&mut indices);
        let after = indices[1].blocks[0].gammas().next().unwrap().weight;
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn merged_weight_table_matches_the_in_place_merge() {
        // The transferable table and the in-place Eq. 6 merge must agree on
        // every γ weight.
        let mut indices = vec![
            part(&[("DOTHAN", "AL"), ("DOTHAN", "AL"), ("BOAZ", "AL")]),
            part(&[("DOTHAN", "AL"), ("BOAZ", "AK")]),
        ];
        let table = merged_weight_table(&indices);
        assert!(!table.is_empty());
        merge_weights(&mut indices);
        for index in &indices {
            for block in &index.blocks {
                for gamma in block.gammas() {
                    let merged = table
                        .get(&GammaSignature::of(gamma, index.pool()))
                        .expect("every γ is in the table");
                    assert!(
                        (gamma.weight - merged).abs() < 1e-12,
                        "table {merged} vs in-place {}",
                        gamma.weight
                    );
                }
            }
        }
    }
}
