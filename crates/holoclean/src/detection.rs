//! Error detection for the HoloClean-style baseline.
//!
//! HoloClean itself delegates detection to external modules and only repairs
//! the cells they flag.  Two detectors are provided:
//!
//! * [`DetectionMode::ConstraintViolations`] — the cells implicated in any
//!   integrity-constraint violation (the standard built-in detector);
//! * [`DetectionMode::Oracle`] — an externally supplied set of cells, used by
//!   the paper's protocol of "setting the detection accuracy to 100%".

use dataset::{CellRef, Dataset};
use rules::{violating_cells, RuleSet};
use std::collections::BTreeSet;

/// How noisy cells are obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectionMode {
    /// Flag the result-part cells of every constraint violation.
    ConstraintViolations,
    /// Use exactly the given set of cells (perfect detection).
    Oracle(BTreeSet<CellRef>),
}

/// Produce the set of noisy cells for `ds` under the chosen mode.
pub fn detect_noisy_cells(
    ds: &Dataset,
    rules: &RuleSet,
    mode: &DetectionMode,
) -> BTreeSet<CellRef> {
    match mode {
        DetectionMode::ConstraintViolations => violating_cells(ds, rules),
        DetectionMode::Oracle(cells) => cells.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, AttrId, TupleId};
    use rules::sample_hospital_rules;

    #[test]
    fn constraint_detection_flags_violation_cells() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let noisy = detect_noisy_cells(&ds, &rules, &DetectionMode::ConstraintViolations);
        let st = ds.schema().attr_id("ST").unwrap();
        assert!(noisy.contains(&CellRef::new(TupleId(3), st)));
        // The typo t2.CT violates no rule, so constraint detection misses it —
        // exactly the limitation the paper points out for qualitative-only
        // detection.
        let ct = ds.schema().attr_id("CT").unwrap();
        assert!(!noisy.contains(&CellRef::new(TupleId(1), ct)));
    }

    #[test]
    fn oracle_detection_passes_through() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let cells: BTreeSet<CellRef> = [
            CellRef::new(TupleId(0), AttrId(0)),
            CellRef::new(TupleId(1), AttrId(1)),
        ]
        .into_iter()
        .collect();
        let noisy = detect_noisy_cells(&ds, &rules, &DetectionMode::Oracle(cells.clone()));
        assert_eq!(noisy, cells);
    }
}
