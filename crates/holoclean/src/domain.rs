//! Candidate-domain generation: the possible repairs considered for a noisy
//! cell.
//!
//! Like HoloClean, candidates come from the attribute's active domain and are
//! pruned by co-occurrence: a value is a candidate for cell `t.[A]` if it
//! co-occurs (in the clean partition) with at least one of the tuple's other
//! attribute values, or if it is among the globally most frequent values of
//! `A`.  The current (possibly dirty) value is always kept as a candidate so
//! "no repair" remains an option.
//!
//! Candidates are interned [`ValueId`]s: the whole generate-score-prune loop
//! runs without materializing a single string.

use crate::features::CooccurrenceModel;
use dataset::{AttrId, CellRef, Dataset, ValueId};

/// Candidate generator.
#[derive(Debug, Clone)]
pub struct CandidateDomain {
    /// Maximum number of candidates kept per cell (the pruning budget).
    pub max_candidates: usize,
}

impl Default for CandidateDomain {
    fn default() -> Self {
        CandidateDomain { max_candidates: 50 }
    }
}

impl CandidateDomain {
    /// Create a generator with a candidate budget.
    pub fn new(max_candidates: usize) -> Self {
        CandidateDomain {
            max_candidates: max_candidates.max(1),
        }
    }

    /// Candidate repair values for `cell`, ranked by their co-occurrence
    /// support with the rest of the tuple.
    pub fn candidates(
        &self,
        ds: &Dataset,
        model: &CooccurrenceModel,
        cell: CellRef,
    ) -> Vec<ValueId> {
        let attr = cell.attr;
        let tuple = ds.tuple(cell.tuple);
        let current = tuple.value_id(attr);

        // Score every value observed for the attribute in the clean part by
        // the sum of its conditional probabilities given the tuple's other
        // attribute values.
        let mut scored: Vec<(ValueId, f64)> = model
            .observed_values(attr)
            .into_iter()
            .map(|candidate| {
                let score: f64 = ds
                    .schema()
                    .attr_ids()
                    .filter(|&b| b != attr)
                    .map(|b| model.conditional(attr, candidate, b, tuple.value_id(b)))
                    .sum();
                (candidate, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.max_candidates);

        let mut out: Vec<ValueId> = scored.into_iter().map(|(v, _)| v).collect();
        if !out.contains(&current) {
            out.push(current);
        }
        out
    }

    /// Convenience: prune an arbitrary candidate list to the generator's
    /// budget (used in tests of the pruning behaviour).
    pub fn prune_to_budget(&self, mut values: Vec<ValueId>) -> Vec<ValueId> {
        values.truncate(self.max_candidates);
        values
    }

    /// The candidate budget.
    pub fn budget(&self) -> usize {
        self.max_candidates
    }

    /// Internal helper shared with the repairer: whether the attribute has
    /// any observed values at all (an all-noisy column cannot be repaired).
    pub fn has_candidates(&self, model: &CooccurrenceModel, attr: AttrId) -> bool {
        !model.observed_values(attr).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, TupleId};
    use std::collections::BTreeSet;

    #[test]
    fn candidates_come_from_the_clean_domain_and_keep_current() {
        let ds = sample_hospital_dataset();
        let model = CooccurrenceModel::train(&ds, &BTreeSet::new());
        let ct = ds.schema().attr_id("CT").unwrap();
        let gen = CandidateDomain::default();
        // t2.CT = "DOTH" (a typo).
        let cands = gen.candidates(&ds, &model, CellRef::new(TupleId(1), ct));
        assert!(cands.contains(&ds.pool().lookup("DOTHAN").unwrap()));
        assert!(cands.contains(&ds.pool().lookup("BOAZ").unwrap()));
        assert!(
            cands.contains(&ds.pool().lookup("DOTH").unwrap()),
            "the current value is always kept"
        );
    }

    #[test]
    fn best_ranked_candidate_matches_tuple_context() {
        let ds = sample_hospital_dataset();
        let model = CooccurrenceModel::train(&ds, &BTreeSet::new());
        let st = ds.schema().attr_id("ST").unwrap();
        let gen = CandidateDomain::default();
        // t4.ST = "AK"; the context (BOAZ, 2567688400, ELIZA) co-occurs with AL.
        let cands = gen.candidates(&ds, &model, CellRef::new(TupleId(3), st));
        assert_eq!(ds.pool().resolve(cands[0]), "AL");
    }

    #[test]
    fn budget_is_enforced() {
        let gen = CandidateDomain::new(2);
        let pruned = gen.prune_to_budget(vec![ValueId(0), ValueId(1), ValueId(2)]);
        assert_eq!(pruned.len(), 2);
        assert_eq!(gen.budget(), 2);
    }
}
