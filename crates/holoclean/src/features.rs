//! Co-occurrence statistics estimated from the clean partition of the data.
//!
//! For every ordered attribute pair (A, B) the model stores how often value
//! `a` of A co-occurs with value `b` of B among tuples whose cells were *not*
//! flagged as noisy.  At repair time the conditional probability
//! `P(A = a | B = b)` (with add-one smoothing) scores repair candidates.
//!
//! All statistics are keyed on interned [`ValueId`]s from the training
//! dataset's pool: training is integer hashing, and the per-candidate scoring
//! loop of the repairer never materializes a string.

use dataset::{AttrId, CellRef, Dataset, ValueId};
use std::collections::{BTreeSet, HashMap};

/// Co-occurrence model over the clean partition.
#[derive(Debug, Clone)]
pub struct CooccurrenceModel {
    /// `(target attr, evidence attr) -> (target value, evidence value) -> count`
    pair_counts: HashMap<(AttrId, AttrId), HashMap<(ValueId, ValueId), usize>>,
    /// `(evidence attr) -> evidence value -> count` (marginals of the clean part).
    evidence_counts: HashMap<AttrId, HashMap<ValueId, usize>>,
    /// Distinct values per target attribute in the clean partition (for
    /// smoothing denominators).
    domain_sizes: HashMap<AttrId, usize>,
}

impl CooccurrenceModel {
    /// Train the model on every tuple of `ds`, skipping any (tuple, attr)
    /// cell that appears in `noisy` — HoloClean learns its parameters from
    /// the part of the data the detector considers clean.
    pub fn train(ds: &Dataset, noisy: &BTreeSet<CellRef>) -> Self {
        let mut pair_counts: HashMap<(AttrId, AttrId), HashMap<(ValueId, ValueId), usize>> =
            HashMap::new();
        let mut evidence_counts: HashMap<AttrId, HashMap<ValueId, usize>> = HashMap::new();
        let mut domains: HashMap<AttrId, BTreeSet<ValueId>> = HashMap::new();

        for t in ds.tuples() {
            let clean_attrs: Vec<AttrId> = ds
                .schema()
                .attr_ids()
                .filter(|&a| !noisy.contains(&CellRef::new(t.id(), a)))
                .collect();
            for &a in &clean_attrs {
                let va = t.value_id(a);
                domains.entry(a).or_default().insert(va);
                *evidence_counts.entry(a).or_default().entry(va).or_insert(0) += 1;
                for &b in &clean_attrs {
                    if a == b {
                        continue;
                    }
                    let vb = t.value_id(b);
                    *pair_counts
                        .entry((a, b))
                        .or_default()
                        .entry((va, vb))
                        .or_insert(0) += 1;
                }
            }
        }

        let domain_sizes = domains
            .into_iter()
            .map(|(a, d)| (a, d.len().max(1)))
            .collect();
        CooccurrenceModel {
            pair_counts,
            evidence_counts,
            domain_sizes,
        }
    }

    /// Smoothed conditional probability `P(target_attr = candidate |
    /// evidence_attr = evidence_value)` estimated from the clean partition.
    pub fn conditional(
        &self,
        target_attr: AttrId,
        candidate: ValueId,
        evidence_attr: AttrId,
        evidence_value: ValueId,
    ) -> f64 {
        let joint = self
            .pair_counts
            .get(&(target_attr, evidence_attr))
            .and_then(|m| m.get(&(candidate, evidence_value)))
            .copied()
            .unwrap_or(0);
        let evidence = self
            .evidence_counts
            .get(&evidence_attr)
            .and_then(|m| m.get(&evidence_value))
            .copied()
            .unwrap_or(0);
        let domain = self.domain_sizes.get(&target_attr).copied().unwrap_or(1);
        (joint as f64 + 1.0) / (evidence as f64 + domain as f64)
    }

    /// How often `value` appears in the clean partition of `attr` (its prior
    /// support).
    pub fn support(&self, attr: AttrId, value: ValueId) -> usize {
        self.evidence_counts
            .get(&attr)
            .and_then(|m| m.get(&value))
            .copied()
            .unwrap_or(0)
    }

    /// The values observed for `attr` in the clean partition, in id order
    /// (deterministic regardless of hash-map iteration).
    pub fn observed_values(&self, attr: AttrId) -> Vec<ValueId> {
        let mut out: Vec<ValueId> = self
            .evidence_counts
            .get(&attr)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;

    #[test]
    fn conditionals_reflect_cooccurrence() {
        let ds = sample_hospital_dataset();
        let model = CooccurrenceModel::train(&ds, &BTreeSet::new());
        let ct = ds.schema().attr_id("CT").unwrap();
        let st = ds.schema().attr_id("ST").unwrap();
        let dothan = ds.pool().lookup("DOTHAN").unwrap();
        // P(ST=AL | CT=DOTHAN) should dominate P(ST=AK | CT=DOTHAN).
        let al = model.conditional(st, ds.pool().lookup("AL").unwrap(), ct, dothan);
        let ak = model.conditional(st, ds.pool().lookup("AK").unwrap(), ct, dothan);
        assert!(al > ak);
    }

    #[test]
    fn noisy_cells_are_excluded_from_training() {
        let ds = sample_hospital_dataset();
        let st = ds.schema().attr_id("ST").unwrap();
        let ak = ds.pool().lookup("AK").unwrap();
        let al = ds.pool().lookup("AL").unwrap();
        // Mark t4.ST (the AK error) noisy: AK should vanish from the model.
        let noisy: BTreeSet<CellRef> = [CellRef::new(dataset::TupleId(3), st)]
            .into_iter()
            .collect();
        let model = CooccurrenceModel::train(&ds, &noisy);
        assert_eq!(model.support(st, ak), 0);
        assert!(model.support(st, al) > 0);
        assert!(!model.observed_values(st).contains(&ak));
    }

    #[test]
    fn smoothing_keeps_probabilities_positive() {
        let mut ds = sample_hospital_dataset();
        let model = CooccurrenceModel::train(&ds, &BTreeSet::new());
        let ct = ds.schema().attr_id("CT").unwrap();
        let st = ds.schema().attr_id("ST").unwrap();
        // Values the model never saw (interned after training).
        let unseen_a = ds.intern("NEVERSEEN");
        let unseen_b = ds.intern("ALSONEVERSEEN");
        let p = model.conditional(st, unseen_a, ct, unseen_b);
        assert!(p > 0.0 && p < 1.0);
    }
}
