//! A from-scratch reimplementation of the **HoloClean-style** probabilistic
//! repair baseline the paper compares against (Rekatsinas et al., VLDB 2017).
//!
//! The real HoloClean compiles repair signals into a DeepDive factor graph;
//! that software stack is not reproducible here, so this crate implements the
//! same pipeline shape with the same signals:
//!
//! 1. **Error detection** ([`detection`]) — constraint-violation cells, or an
//!    externally supplied "noisy cell" set (the paper sets HoloClean's
//!    detection accuracy to 100% for fairness, i.e. hands it the true
//!    erroneous cells);
//! 2. **Candidate-domain generation** ([`domain`]) — for every noisy cell,
//!    candidate repairs are drawn from the attribute's active domain, pruned
//!    by co-occurrence with the tuple's other values;
//! 3. **Statistical model** ([`features`]) — co-occurrence statistics are
//!    estimated from the *clean* partition of the data only (as HoloClean
//!    trains on cells the detector did not flag);
//! 4. **Probabilistic repair** ([`repair`]) — every candidate is scored by a
//!    log-linear combination of co-occurrence features and
//!    constraint-violation penalties; the argmax becomes the repair.
//!
//! Two properties of the original system that drive the paper's comparison
//! carry over by construction:
//!
//! * repairs are made **one cell at a time**, each requiring a scan over that
//!   cell's candidate set — which is why the baseline is slower than
//!   MLNClean's γ-at-a-time cleaning;
//! * the model is trained on the clean partition only, so **typos** (values
//!   that never occur in the clean partition and erase the evidence the
//!   co-occurrence features rely on) hurt it much more than replacement
//!   errors, especially on sparse data (Figure 7a).

pub mod detection;
pub mod domain;
pub mod features;
pub mod repair;

pub use detection::{detect_noisy_cells, DetectionMode};
pub use domain::CandidateDomain;
pub use features::CooccurrenceModel;
pub use repair::{HoloClean, HoloCleanConfig, RepairOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{sample_hospital_dataset, sample_hospital_truth};
    use rules::sample_hospital_rules;

    #[test]
    fn end_to_end_smoke_on_the_paper_sample() {
        let dirty = sample_hospital_dataset();
        let truth = sample_hospital_truth();
        let rules = sample_hospital_rules();
        // Perfect detection: the four truly dirty cells.
        let noisy = dirty.diff_cells(&truth).into_iter().collect();
        let cleaner = HoloClean::new(HoloCleanConfig::default());
        let outcome = cleaner.repair(&dirty, &rules, &noisy);
        assert_eq!(outcome.repaired.len(), dirty.len());
        // HoloClean repairs the schema-level error t4.ST (AK → AL): the clean
        // partition strongly co-occurs BOAZ/2567688400 with AL.
        let st = dirty.schema().attr_id("ST").unwrap();
        assert_eq!(outcome.repaired.value(dataset::TupleId(3), st), "AL");
    }
}
