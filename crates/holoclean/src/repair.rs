//! The repair engine: score every candidate of every noisy cell and apply the
//! argmax.
//!
//! The score of candidate `v` for cell `t.[A]` is a log-linear combination of
//! the signals HoloClean compiles into its factor graph:
//!
//! * **co-occurrence** — `Σ_B log P(A=v | B = t.B)` over the tuple's other
//!   attributes, estimated from the clean partition;
//! * **prior support** — `log (1 + support(v))`, the frequency of `v` in the
//!   clean partition of column A;
//! * **constraint penalty** — a fixed penalty per integrity constraint that
//!   assigning `v` would violate against the (clean-partition) rest of the
//!   dataset.
//!
//! Repairs are committed cell by cell; this per-cell, per-candidate scan is
//! the reason the baseline's runtime grows faster than MLNClean's (Figure 6c,
//! 6d).

use crate::domain::CandidateDomain;
use crate::features::CooccurrenceModel;
use dataset::{CellRef, Dataset, ValueId};
use rayon::prelude::*;
use rules::{Rule, RuleSet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Configuration of the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoloCleanConfig {
    /// Candidate budget per noisy cell.
    pub max_candidates: usize,
    /// Weight of the co-occurrence features.
    pub cooccurrence_weight: f64,
    /// Weight of the prior-support feature.
    pub prior_weight: f64,
    /// Penalty applied per violated constraint.
    pub violation_penalty: f64,
}

impl Default for HoloCleanConfig {
    fn default() -> Self {
        HoloCleanConfig {
            max_candidates: 50,
            cooccurrence_weight: 1.0,
            prior_weight: 0.2,
            violation_penalty: 2.0,
        }
    }
}

/// The result of a repair run.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired dataset (same shape as the input).
    pub repaired: Dataset,
    /// Cells that were actually rewritten.
    pub repaired_cells: Vec<CellRef>,
    /// Time spent training the statistical model.
    pub training_time: Duration,
    /// Time spent scoring candidates and applying repairs.
    pub inference_time: Duration,
}

impl RepairOutcome {
    /// Total runtime of the repair phase (training + inference); the paper
    /// reports only this for HoloClean because detection is external.
    pub fn total_time(&self) -> Duration {
        self.training_time + self.inference_time
    }
}

/// The HoloClean-style cleaner.
#[derive(Debug, Clone, Default)]
pub struct HoloClean {
    config: HoloCleanConfig,
}

impl HoloClean {
    /// Create a cleaner.
    pub fn new(config: HoloCleanConfig) -> Self {
        HoloClean { config }
    }

    /// Repair the `noisy` cells of `dirty` under `rules`.
    ///
    /// Candidate scoring is independent per cell (every score reads only the
    /// dirty dataset and the trained model), so the argmax of each noisy
    /// cell is computed across cells in parallel; repairs are then applied
    /// serially in the `BTreeSet`'s cell order, which makes the outcome
    /// byte-identical to [`Self::repair_serial`].
    pub fn repair(
        &self,
        dirty: &Dataset,
        rules: &RuleSet,
        noisy: &BTreeSet<CellRef>,
    ) -> RepairOutcome {
        let train_start = Instant::now();
        let model = CooccurrenceModel::train(dirty, noisy);
        let constraints = ConstraintIndex::build(dirty, rules);
        let training_time = train_start.elapsed();

        let infer_start = Instant::now();
        let generator = CandidateDomain::new(self.config.max_candidates);
        let mut repaired = dirty.clone();
        let mut repaired_cells = Vec::new();

        let cells: Vec<CellRef> = noisy
            .iter()
            .copied()
            .filter(|cell| generator.has_candidates(&model, cell.attr))
            .collect();
        let winners: Vec<ValueId> = cells
            .par_iter()
            .map(|&cell| self.best_candidate(dirty, rules, &constraints, &model, &generator, cell))
            .collect();
        for (&cell, &best_value) in cells.iter().zip(&winners) {
            if best_value != dirty.cell_id(cell) {
                repaired.set_value_id(cell.tuple, cell.attr, best_value);
                repaired_cells.push(cell);
            }
        }
        let inference_time = infer_start.elapsed();

        RepairOutcome {
            repaired,
            repaired_cells,
            training_time,
            inference_time,
        }
    }

    /// Serial reference path of [`Self::repair`]: one cell at a time, in the
    /// same `BTreeSet` order the parallel path applies its winners in.
    pub fn repair_serial(
        &self,
        dirty: &Dataset,
        rules: &RuleSet,
        noisy: &BTreeSet<CellRef>,
    ) -> RepairOutcome {
        let train_start = Instant::now();
        let model = CooccurrenceModel::train(dirty, noisy);
        let constraints = ConstraintIndex::build(dirty, rules);
        let training_time = train_start.elapsed();

        let infer_start = Instant::now();
        let generator = CandidateDomain::new(self.config.max_candidates);
        let mut repaired = dirty.clone();
        let mut repaired_cells = Vec::new();

        for &cell in noisy {
            if !generator.has_candidates(&model, cell.attr) {
                continue;
            }
            let best_value =
                self.best_candidate(dirty, rules, &constraints, &model, &generator, cell);
            if best_value != dirty.cell_id(cell) {
                repaired.set_value_id(cell.tuple, cell.attr, best_value);
                repaired_cells.push(cell);
            }
        }
        let inference_time = infer_start.elapsed();

        RepairOutcome {
            repaired,
            repaired_cells,
            training_time,
            inference_time,
        }
    }

    /// Argmax over one noisy cell's candidate domain (ties keep the earlier
    /// candidate, starting from the cell's current value).
    fn best_candidate(
        &self,
        dirty: &Dataset,
        rules: &RuleSet,
        constraints: &ConstraintIndex,
        model: &CooccurrenceModel,
        generator: &CandidateDomain,
        cell: CellRef,
    ) -> ValueId {
        let candidates = generator.candidates(dirty, model, cell);
        let current = dirty.cell_id(cell);
        let mut best_value = current;
        let mut best_score = f64::NEG_INFINITY;
        for candidate in candidates {
            let score = self.score_candidate(dirty, rules, constraints, model, cell, candidate);
            if score > best_score {
                best_score = score;
                best_value = candidate;
            }
        }
        best_value
    }

    /// Log-linear score of one candidate for one cell.
    fn score_candidate(
        &self,
        dirty: &Dataset,
        rules: &RuleSet,
        constraints: &ConstraintIndex,
        model: &CooccurrenceModel,
        cell: CellRef,
        candidate: ValueId,
    ) -> f64 {
        let tuple = dirty.tuple(cell.tuple);

        // Co-occurrence with the rest of the tuple.
        let cooccurrence: f64 = dirty
            .schema()
            .attr_ids()
            .filter(|&b| b != cell.attr)
            .map(|b| {
                model
                    .conditional(cell.attr, candidate, b, tuple.value_id(b))
                    .ln()
            })
            .sum();

        // Prior support in the clean partition.
        let prior = (1.0 + model.support(cell.attr, candidate) as f64).ln();

        // Constraint penalty: how many rules the tuple would violate against
        // the rest of the dataset if the candidate were written.
        let violations = constraints.violations_with(dirty, rules, cell, candidate);

        self.config.cooccurrence_weight * cooccurrence + self.config.prior_weight * prior
            - self.config.violation_penalty * violations as f64
    }
}

/// Pre-aggregated rule statistics so the per-candidate constraint penalty is
/// a hash lookup instead of a full violation-detection pass.  For every rule
/// the index stores, per reason-part value vector, how many tuples carry each
/// result-part value vector.
/// For one rule: reason value ids → (result value ids → tuple count).
type RuleCounts = HashMap<Vec<ValueId>, HashMap<Vec<ValueId>, usize>>;

struct ConstraintIndex {
    /// `per_rule[i]` : reason values → (result values → tuple count).
    per_rule: Vec<RuleCounts>,
}

impl ConstraintIndex {
    fn build(ds: &Dataset, rules: &RuleSet) -> Self {
        let schema = ds.schema();
        let mut per_rule = Vec::with_capacity(rules.len());
        for (_, rule) in rules.iter_with_ids() {
            let mut map: RuleCounts = HashMap::new();
            for t in ds.tuples() {
                if !rule.is_relevant(schema, &t) {
                    continue;
                }
                let reason = rule.reason_value_ids(schema, &t);
                let result = rule.result_value_ids(schema, &t);
                *map.entry(reason).or_default().entry(result).or_insert(0) += 1;
            }
            per_rule.push(map);
        }
        ConstraintIndex { per_rule }
    }

    /// Number of rules the tuple would violate (against the other tuples'
    /// reason→result statistics) if `candidate` were written into `cell`.
    fn violations_with(
        &self,
        ds: &Dataset,
        rules: &RuleSet,
        cell: CellRef,
        candidate: ValueId,
    ) -> usize {
        let schema = ds.schema();
        let attr_name = schema.attr_name(cell.attr).to_string();
        let tuple = ds.tuple(cell.tuple);
        let mut violations = 0usize;

        for (idx, (_, rule)) in rules.iter_with_ids().enumerate() {
            if !rule.all_attrs().contains(&attr_name) {
                continue;
            }
            if !rule.is_relevant(schema, &tuple) {
                continue;
            }
            // Project the tuple under the hypothetical edit — id copies only.
            let project = |attrs: &[String]| -> Vec<ValueId> {
                attrs
                    .iter()
                    .map(|a| {
                        let id = schema.attr_id(a).expect("validated attribute");
                        if id == cell.attr {
                            candidate
                        } else {
                            tuple.value_id(id)
                        }
                    })
                    .collect()
            };
            let reason = project(&rule.reason_attrs());
            let result = project(&rule.result_attrs());

            if let Some(results) = self.per_rule[idx].get(&reason) {
                // The tuple's own (pre-edit) contribution must not count as a
                // conflicting witness.
                let own_reason = rule.reason_value_ids(schema, &tuple);
                let own_result = rule.result_value_ids(schema, &tuple);
                let conflicting = results.iter().any(|(r, &count)| {
                    if *r == result {
                        return false;
                    }
                    let own_contribution = usize::from(own_reason == reason && own_result == *r);
                    count > own_contribution
                });
                if conflicting {
                    violations += 1;
                }
            }

            // Constant CFDs additionally violate when the pattern matches but
            // the consequent constant differs.
            if let Rule::Cfd(cfd) = rule {
                let matches_pattern = cfd.conditions().iter().all(|c| match &c.constant {
                    Some(v) => {
                        let id = schema.attr_id(&c.attr).expect("validated attribute");
                        let value = if id == cell.attr {
                            ds.pool().resolve(candidate)
                        } else {
                            tuple.value(id)
                        };
                        value == v
                    }
                    None => true,
                });
                if matches_pattern {
                    let breaks_consequent = cfd.consequents().iter().any(|c| match &c.constant {
                        Some(v) => {
                            let id = schema.attr_id(&c.attr).expect("validated attribute");
                            let value = if id == cell.attr {
                                ds.pool().resolve(candidate)
                            } else {
                                tuple.value(id)
                            };
                            value != v
                        }
                        None => false,
                    });
                    if breaks_consequent {
                        violations += 1;
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::HaiGenerator;
    use dataset::{sample_hospital_dataset, sample_hospital_truth, RepairEvaluation, TupleId};
    use rules::sample_hospital_rules;

    fn oracle_noisy(dirty: &Dataset, truth: &Dataset) -> BTreeSet<CellRef> {
        dirty.diff_cells(truth).into_iter().collect()
    }

    #[test]
    fn repairs_schema_level_error_on_sample() {
        let dirty = sample_hospital_dataset();
        let truth = sample_hospital_truth();
        let rules = sample_hospital_rules();
        let outcome = HoloClean::default().repair(&dirty, &rules, &oracle_noisy(&dirty, &truth));
        let st = dirty.schema().attr_id("ST").unwrap();
        assert_eq!(outcome.repaired.value(TupleId(3), st), "AL");
        assert!(!outcome.repaired_cells.is_empty());
        assert!(outcome.total_time() >= outcome.training_time);
    }

    #[test]
    fn empty_noisy_set_changes_nothing() {
        let dirty = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let outcome = HoloClean::default().repair(&dirty, &rules, &BTreeSet::new());
        assert_eq!(outcome.repaired, dirty);
        assert!(outcome.repaired_cells.is_empty());
    }

    #[test]
    fn baseline_is_sensitive_to_typos_on_sparse_data() {
        // The paper's Figure 7a rationale: on the sparse CAR dataset the
        // model trained on the clean partition has little context to recover
        // a typo'd value (typos erase the evidence), while an in-domain
        // replacement error at least leaves the co-occurrence statistics
        // intact.  Verify the direction of that gap on the synthetic CAR
        // data: an all-replacement workload must not score worse than an
        // all-typo workload.
        use datagen::CarGenerator;
        let gen = CarGenerator::default().with_rows(600);
        let rules = CarGenerator::rules();
        let cleaner = HoloClean::default();

        let typos = gen.dirty(0.05, 0.0, 41);
        let typo_outcome = cleaner.repair(&typos.dirty, &rules, &typos.erroneous_cells());
        let typo_f1 = RepairEvaluation::evaluate(&typos, &typo_outcome.repaired).f1();

        let repl = gen.dirty(0.05, 1.0, 41);
        let repl_outcome = cleaner.repair(&repl.dirty, &rules, &repl.erroneous_cells());
        let repl_f1 = RepairEvaluation::evaluate(&repl, &repl_outcome.repaired).f1();

        assert!(
            repl_f1 + 0.05 >= typo_f1,
            "replacement errors ({repl_f1:.3}) should not be much harder than typos ({typo_f1:.3}) on sparse data"
        );
    }

    #[test]
    fn parallel_repair_matches_serial_byte_for_byte() {
        let gen = HaiGenerator::default().with_rows(300);
        let rules = HaiGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 7);
        let cleaner = HoloClean::default();
        let parallel = cleaner.repair(&dirty.dirty, &rules, &dirty.erroneous_cells());
        let serial = cleaner.repair_serial(&dirty.dirty, &rules, &dirty.erroneous_cells());
        assert_eq!(parallel.repaired, serial.repaired);
        assert_eq!(parallel.repaired_cells, serial.repaired_cells);
    }

    #[test]
    fn repairs_improve_f1_on_injected_errors() {
        let gen = HaiGenerator::default().with_rows(400);
        let rules = HaiGenerator::rules();
        let dirty = gen.dirty(0.05, 0.5, 13);
        let outcome = HoloClean::default().repair(&dirty.dirty, &rules, &dirty.erroneous_cells());
        let report = RepairEvaluation::evaluate(&dirty, &outcome.repaired);
        assert!(
            report.f1() > 0.3,
            "baseline should repair a fair share: {report}"
        );
    }
}
