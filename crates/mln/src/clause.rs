//! First-order clauses (disjunctions of possibly-negated atoms over variables
//! and constants) and their ground instantiations.

use crate::predicate::{Literal, PredicateId};
use crate::symbols::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A term in a first-order atom: a universally quantified variable or an
/// interned constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable, identified by name (e.g. `"x"`, `"v"`, `"t1.v"`).
    Variable(String),
    /// A constant symbol.
    Constant(Symbol),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Variable(name.into())
    }
}

/// A possibly-negated first-order atom appearing in a clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClauseLiteral {
    /// The predicate.
    pub predicate: PredicateId,
    /// Argument terms.
    pub terms: Vec<Term>,
    /// Sign of the literal.
    pub positive: bool,
}

impl ClauseLiteral {
    /// A positive literal `P(terms…)`.
    pub fn positive(predicate: PredicateId, terms: Vec<Term>) -> Self {
        ClauseLiteral {
            predicate,
            terms,
            positive: true,
        }
    }

    /// A negative literal `¬P(terms…)`.
    pub fn negative(predicate: PredicateId, terms: Vec<Term>) -> Self {
        ClauseLiteral {
            predicate,
            terms,
            positive: false,
        }
    }

    /// Names of the variables appearing in this literal, in order of first
    /// appearance.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Variable(v) = t {
                if !out.contains(&v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }
}

/// A first-order clause: the disjunction of its literals, with all variables
/// universally quantified (the "MLN rule" form `l₁ ∨ l₂ ∨ … ∨ lₙ`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clause {
    /// The disjuncts.
    pub literals: Vec<ClauseLiteral>,
}

impl Clause {
    /// Create a clause from its literals.
    ///
    /// # Panics
    /// Panics on an empty literal list (the empty clause is unsatisfiable and
    /// never useful here).
    pub fn new(literals: Vec<ClauseLiteral>) -> Self {
        assert!(!literals.is_empty(), "a clause needs at least one literal");
        Clause { literals }
    }

    /// All distinct variable names in the clause, in order of first
    /// appearance.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for lit in &self.literals {
            for v in lit.variables() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// Whether the clause is already ground (contains no variables).
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .literals
            .iter()
            .map(|l| {
                let args: Vec<String> = l
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Variable(v) => v.clone(),
                        Term::Constant(c) => c.to_string(),
                    })
                    .collect();
                format!(
                    "{}P{}({})",
                    if l.positive { "" } else { "!" },
                    l.predicate.0,
                    args.join(",")
                )
            })
            .collect();
        write!(f, "{}", parts.join(" v "))
    }
}

/// A ground clause: a weighted disjunction of literals over ground-atom
/// indices, as stored in a [`crate::grounding::GroundMln`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundClause {
    /// The disjuncts, referring to atom indices of the ground network.
    pub literals: Vec<Literal>,
    /// Weight inherited from the first-order clause (or learned).
    pub weight: f64,
    /// Index of the first-order clause this grounding came from.
    pub source_clause: usize,
}

impl GroundClause {
    /// Whether the clause is satisfied under the given atom assignment.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        self.literals
            .iter()
            .any(|l| l.satisfied_by(assignment[l.atom]))
    }

    /// Number of literals currently satisfied.
    pub fn satisfied_count(&self, assignment: &[bool]) -> usize {
        self.literals
            .iter()
            .filter(|l| l.satisfied_by(assignment[l.atom]))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_variables_deduplicate() {
        let c = Clause::new(vec![
            ClauseLiteral::negative(PredicateId(0), vec![Term::var("x"), Term::var("y")]),
            ClauseLiteral::positive(PredicateId(1), vec![Term::var("y"), Term::var("z")]),
        ]);
        assert_eq!(c.variables(), vec!["x", "y", "z"]);
        assert!(!c.is_ground());
    }

    #[test]
    fn ground_clause_detection() {
        let c = Clause::new(vec![ClauseLiteral::positive(
            PredicateId(0),
            vec![Term::Constant(Symbol(0))],
        )]);
        assert!(c.is_ground());
    }

    #[test]
    fn ground_clause_satisfaction() {
        let gc = GroundClause {
            literals: vec![Literal::negative(0), Literal::positive(1)],
            weight: 1.0,
            source_clause: 0,
        };
        assert!(gc.satisfied(&[false, false]));
        assert!(gc.satisfied(&[true, true]));
        assert!(!gc.satisfied(&[true, false]));
        assert_eq!(gc.satisfied_count(&[false, true]), 2);
    }

    #[test]
    #[should_panic(expected = "at least one literal")]
    fn empty_clause_panics() {
        Clause::new(vec![]);
    }
}
