//! Conversion of integrity constraints into MLN rules and their data-driven
//! ground instances.
//!
//! Section 3 of the paper converts each constraint into the clause form
//! `l₁ ∨ l₂ ∨ … ∨ lₙ` (the "MLN rule"), e.g.
//!
//! * r1 (FD `CT ⇒ ST`)  →  `¬CT ∨ ST`
//! * r3 (CFD)           →  `¬HN("ELIZA") ∨ ¬CT("BOAZ") ∨ PN("2567688400")`
//!
//! and then grounds each MLN rule against the dataset: one ground MLN rule
//! per distinct combination of attribute values appearing in the data
//! (Table 3 lists the four groundings of r1 over the sample dataset).

use crate::clause::{Clause, ClauseLiteral, Term};
use crate::program::MlnProgram;
use dataset::Dataset;
use rules::{Rule, RuleId, RuleSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One ground MLN rule derived from a rule and a dataset: the attribute
/// values of the reason and result parts, plus how many tuples carry exactly
/// that combination (its support).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundRuleInstance {
    /// The source rule.
    pub rule: RuleId,
    /// Attribute names of the reason part (rule order).
    pub reason_attrs: Vec<String>,
    /// Values of the reason part.
    pub reason_values: Vec<String>,
    /// Attribute names of the result part (rule order).
    pub result_attrs: Vec<String>,
    /// Values of the result part.
    pub result_values: Vec<String>,
    /// Number of tuples carrying exactly these values.
    pub support: usize,
}

impl GroundRuleInstance {
    /// Render the ground rule in the paper's clause notation, e.g.
    /// `¬CT("DOTHAN") ∨ ST("AL")`.
    pub fn to_clause_string(&self) -> String {
        let mut parts = Vec::new();
        for (attr, value) in self.reason_attrs.iter().zip(&self.reason_values) {
            parts.push(format!("¬{attr}(\"{value}\")"));
        }
        for (attr, value) in self.result_attrs.iter().zip(&self.result_values) {
            parts.push(format!("{attr}(\"{value}\")"));
        }
        parts.join(" ∨ ")
    }
}

/// Convert one rule into its first-order MLN clause inside `program`.
///
/// Attributes become unary predicates over values; FD/CFD antecedent
/// attributes appear negated, consequent attributes positive; DCs are
/// negated conjunctions, i.e. every predicate appears with the negation of
/// its comparison (for the index-relevant equality DCs this reduces to the
/// same ¬reason ∨ result shape as FDs).
pub fn rule_to_clause(program: &mut MlnProgram, rule: &Rule) -> Clause {
    let mut literals = Vec::new();
    for attr in rule.reason_attrs() {
        let pred = program.declare_predicate(&attr, 1);
        literals.push(ClauseLiteral::negative(
            pred,
            vec![Term::var(format!("v_{attr}"))],
        ));
    }
    for attr in rule.result_attrs() {
        let pred = program.declare_predicate(&attr, 1);
        literals.push(ClauseLiteral::positive(
            pred,
            vec![Term::var(format!("v_{attr}"))],
        ));
    }
    Clause::new(literals)
}

/// Ground every rule of `rules` against `ds`: one [`GroundRuleInstance`] per
/// rule per distinct (reason values, result values) combination present in
/// the data, with its tuple support.  Only tuples relevant to the rule
/// (see [`Rule::is_relevant`]) contribute.
pub fn ground_rules_for_dataset(ds: &Dataset, rules: &RuleSet) -> Vec<GroundRuleInstance> {
    let schema = ds.schema();
    let pool = ds.pool();
    let mut out = Vec::new();
    for (rule_id, rule) in rules.iter_with_ids() {
        // Group by interned ids (integer hashing per tuple), then resolve and
        // sort once so the output keeps the historical string order.
        let mut support: HashMap<(Vec<dataset::ValueId>, Vec<dataset::ValueId>), usize> =
            HashMap::new();
        for t in ds.tuples() {
            if !rule.is_relevant(schema, &t) {
                continue;
            }
            let key = (
                rule.reason_value_ids(schema, &t),
                rule.result_value_ids(schema, &t),
            );
            *support.entry(key).or_insert(0) += 1;
        }
        type ResolvedGrounding = ((Vec<String>, Vec<String>), usize);
        let mut grounded: Vec<ResolvedGrounding> = support
            .into_iter()
            .map(|((reason, result), count)| {
                (
                    (
                        reason
                            .iter()
                            .map(|&v| pool.resolve(v).to_string())
                            .collect(),
                        result
                            .iter()
                            .map(|&v| pool.resolve(v).to_string())
                            .collect(),
                    ),
                    count,
                )
            })
            .collect();
        grounded.sort_by(|a, b| a.0.cmp(&b.0));
        for ((reason_values, result_values), count) in grounded {
            out.push(GroundRuleInstance {
                rule: rule_id,
                reason_attrs: rule.reason_attrs(),
                reason_values,
                result_attrs: rule.result_attrs(),
                result_values,
                support: count,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::sample_hospital_dataset;
    use rules::sample_hospital_rules;

    #[test]
    fn table3_groundings_of_r1() {
        // Table 3 of the paper: the FD CT ⇒ ST grounds to exactly four ground
        // MLN rules over the sample dataset.
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let grounded = ground_rules_for_dataset(&ds, &rules);
        let r1: Vec<&GroundRuleInstance> =
            grounded.iter().filter(|g| g.rule == RuleId(0)).collect();
        let clauses: Vec<String> = r1.iter().map(|g| g.to_clause_string()).collect();
        assert_eq!(r1.len(), 4);
        for expected in [
            "¬CT(\"DOTHAN\") ∨ ST(\"AL\")",
            "¬CT(\"DOTH\") ∨ ST(\"AL\")",
            "¬CT(\"BOAZ\") ∨ ST(\"AL\")",
            "¬CT(\"BOAZ\") ∨ ST(\"AK\")",
        ] {
            assert!(
                clauses.contains(&expected.to_string()),
                "missing {expected}; got {clauses:?}"
            );
        }
    }

    #[test]
    fn ground_rule_support_counts_tuples() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let grounded = ground_rules_for_dataset(&ds, &rules);
        let boaz_al = grounded
            .iter()
            .find(|g| {
                g.rule == RuleId(0)
                    && g.reason_values == vec!["BOAZ"]
                    && g.result_values == vec!["AL"]
            })
            .unwrap();
        assert_eq!(boaz_al.support, 2, "t5 and t6 support BOAZ→AL");
        let boaz_ak = grounded
            .iter()
            .find(|g| {
                g.rule == RuleId(0)
                    && g.reason_values == vec!["BOAZ"]
                    && g.result_values == vec!["AK"]
            })
            .unwrap();
        assert_eq!(boaz_ak.support, 1, "only t4 supports BOAZ→AK");
    }

    #[test]
    fn cfd_grounding_respects_relevance() {
        let ds = sample_hospital_dataset();
        let rules = sample_hospital_rules();
        let grounded = ground_rules_for_dataset(&ds, &rules);
        // Block B3: only the two groups of Figure 2 — (ELIZA, DOTHAN) and
        // (ELIZA, BOAZ).
        let r3: Vec<&GroundRuleInstance> =
            grounded.iter().filter(|g| g.rule == RuleId(2)).collect();
        assert_eq!(r3.len(), 2);
        assert!(r3.iter().all(|g| g.reason_values[0] == "ELIZA"));
    }

    #[test]
    fn rule_to_clause_shape() {
        let mut program = MlnProgram::new();
        let rules = sample_hospital_rules();
        let clause = rule_to_clause(&mut program, rules.rule(RuleId(0)));
        // ¬CT(v) ∨ ST(v): two literals, first negative, second positive.
        assert_eq!(clause.literals.len(), 2);
        assert!(!clause.literals[0].positive);
        assert!(clause.literals[1].positive);
        assert_eq!(program.predicate_count(), 2);

        let cfd_clause = rule_to_clause(&mut program, rules.rule(RuleId(2)));
        assert_eq!(cfd_clause.literals.len(), 3);
        let positives = cfd_clause.literals.iter().filter(|l| l.positive).count();
        assert_eq!(positives, 1, "only the consequent literal is positive");
    }
}
