//! Grounding: turn a first-order MLN program plus a constant domain into a
//! ground Markov network (atoms + weighted ground clauses).
//!
//! Grounding substitutes every variable of every clause with every constant
//! of the domain (the paper's "grounding process ... replaces variables in
//! the MLN rule with the corresponding constants").  The resulting ground
//! clauses reference atoms by index in a dense atom table so inference and
//! learning can use flat `Vec<bool>` assignments.

use crate::clause::{GroundClause, Term};
use crate::predicate::{GroundAtom, Literal};
use crate::program::MlnProgram;
use crate::symbols::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A ground Markov network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundMln {
    atoms: Vec<GroundAtom>,
    #[serde(skip)]
    atom_index: HashMap<GroundAtom, usize>,
    clauses: Vec<GroundClause>,
}

impl GroundMln {
    /// Create an empty ground network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a ground atom, returning its dense index.
    pub fn atom(&mut self, atom: GroundAtom) -> usize {
        if let Some(&idx) = self.atom_index.get(&atom) {
            return idx;
        }
        let idx = self.atoms.len();
        self.atom_index.insert(atom.clone(), idx);
        self.atoms.push(atom);
        idx
    }

    /// Look up an atom without interning.
    pub fn atom_id(&self, atom: &GroundAtom) -> Option<usize> {
        self.atom_index.get(atom).copied()
    }

    /// The atom stored at `idx`.
    pub fn atom_at(&self, idx: usize) -> &GroundAtom {
        &self.atoms[idx]
    }

    /// Number of ground atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Add a ground clause.
    pub fn add_clause(&mut self, clause: GroundClause) {
        self.clauses.push(clause);
    }

    /// The ground clauses.
    pub fn clauses(&self) -> &[GroundClause] {
        &self.clauses
    }

    /// Mutable access to the ground clauses (used by weight learning).
    pub fn clauses_mut(&mut self) -> &mut [GroundClause] {
        &mut self.clauses
    }

    /// Ground clauses that mention the atom `atom_idx` — the atom's Markov
    /// blanket, used by Gibbs sampling and pseudo-likelihood learning.
    pub fn clauses_touching(&self, atom_idx: usize) -> Vec<usize> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.literals.iter().any(|l| l.atom == atom_idx))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total weighted count of satisfied clauses under `assignment` — the
    /// exponent `Σ wᵢ nᵢ(x)` of Eq. 2.
    pub fn weighted_satisfied(&self, assignment: &[bool]) -> f64 {
        self.clauses
            .iter()
            .filter(|c| c.satisfied(assignment))
            .map(|c| c.weight)
            .sum()
    }
}

/// Ground `program` over all constants of its symbol table.
///
/// Every variable ranges over the whole constant domain.  This is the
/// textbook grounding semantics; for large domains callers should restrict
/// the constant table to the relevant constants first (MLNClean does exactly
/// that via its block/group index).
pub fn ground_program(program: &MlnProgram) -> GroundMln {
    let constants: Vec<Symbol> = program.constants.symbols().collect();
    let mut network = GroundMln::new();

    for (clause_idx, wc) in program.clauses().iter().enumerate() {
        let vars = wc.clause.variables();
        if vars.is_empty() {
            let literals = bind_literals(&wc.clause, &HashMap::new(), &mut network);
            network.add_clause(GroundClause { literals, weight: wc.weight, source_clause: clause_idx });
            continue;
        }
        // Enumerate every assignment of constants to the clause variables.
        let mut binding: HashMap<String, Symbol> = HashMap::new();
        enumerate_bindings(&vars, 0, &constants, &mut binding, &mut |b| {
            let literals = bind_literals(&wc.clause, b, &mut network);
            network.add_clause(GroundClause {
                literals,
                weight: wc.weight,
                source_clause: clause_idx,
            });
        });
    }
    network
}

fn enumerate_bindings<F: FnMut(&HashMap<String, Symbol>)>(
    vars: &[String],
    depth: usize,
    constants: &[Symbol],
    binding: &mut HashMap<String, Symbol>,
    emit: &mut F,
) {
    if depth == vars.len() {
        emit(binding);
        return;
    }
    for &c in constants {
        binding.insert(vars[depth].clone(), c);
        enumerate_bindings(vars, depth + 1, constants, binding, emit);
    }
    binding.remove(&vars[depth]);
}

fn bind_literals(
    clause: &crate::clause::Clause,
    binding: &HashMap<String, Symbol>,
    network: &mut GroundMln,
) -> Vec<Literal> {
    clause
        .literals
        .iter()
        .map(|lit| {
            let args: Vec<Symbol> = lit
                .terms
                .iter()
                .map(|t| match t {
                    Term::Constant(c) => *c,
                    Term::Variable(v) => *binding
                        .get(v)
                        .expect("every clause variable is bound during grounding"),
                })
                .collect();
            let atom_idx = network.atom(GroundAtom::new(lit.predicate, args));
            if lit.positive {
                Literal::positive(atom_idx)
            } else {
                Literal::negative(atom_idx)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{Clause, ClauseLiteral, Term};

    /// The classic "smoking causes cancer, friends smoke alike" program.
    fn smokers_program(people: &[&str]) -> MlnProgram {
        let mut p = MlnProgram::new();
        let smokes = p.declare_predicate("Smokes", 1);
        let cancer = p.declare_predicate("Cancer", 1);
        let friends = p.declare_predicate("Friends", 2);
        for person in people {
            p.constant(person);
        }
        // ¬Smokes(x) ∨ Cancer(x), weight 1.5
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(smokes, vec![Term::var("x")]),
                ClauseLiteral::positive(cancer, vec![Term::var("x")]),
            ]),
            1.5,
        );
        // ¬Friends(x,y) ∨ ¬Smokes(x) ∨ Smokes(y), weight 1.1
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(friends, vec![Term::var("x"), Term::var("y")]),
                ClauseLiteral::negative(smokes, vec![Term::var("x")]),
                ClauseLiteral::positive(smokes, vec![Term::var("y")]),
            ]),
            1.1,
        );
        p
    }

    #[test]
    fn grounding_counts() {
        let p = smokers_program(&["anna", "bob"]);
        let g = ground_program(&p);
        // Clause 1 has one variable → 2 groundings; clause 2 has two → 4.
        assert_eq!(g.clauses().len(), 2 + 4);
        // Atoms: Smokes(a), Smokes(b), Cancer(a), Cancer(b), Friends over 4 pairs.
        assert_eq!(g.atom_count(), 2 + 2 + 4);
    }

    #[test]
    fn weighted_satisfaction_counts() {
        let p = smokers_program(&["anna"]);
        let g = ground_program(&p);
        // Atoms with one person: Smokes(anna), Cancer(anna), Friends(anna,anna).
        assert_eq!(g.atom_count(), 3);
        // All false: ¬Smokes ∨ Cancer satisfied; friendship clause satisfied.
        let all_false = vec![false; g.atom_count()];
        let total: f64 = g.clauses().iter().map(|c| c.weight).sum();
        assert!((g.weighted_satisfied(&all_false) - total).abs() < 1e-9);
    }

    #[test]
    fn markov_blanket_lookup() {
        let p = smokers_program(&["anna", "bob"]);
        let g = ground_program(&p);
        for atom_idx in 0..g.atom_count() {
            for clause_idx in g.clauses_touching(atom_idx) {
                assert!(g.clauses()[clause_idx]
                    .literals
                    .iter()
                    .any(|l| l.atom == atom_idx));
            }
        }
    }

    #[test]
    fn already_ground_clause_passes_through() {
        let mut p = MlnProgram::new();
        let ct = p.declare_predicate("CT", 1);
        let st = p.declare_predicate("ST", 1);
        let boaz = p.constant("BOAZ");
        let al = p.constant("AL");
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(ct, vec![Term::Constant(boaz)]),
                ClauseLiteral::positive(st, vec![Term::Constant(al)]),
            ]),
            0.8,
        );
        let g = ground_program(&p);
        assert_eq!(g.clauses().len(), 1);
        assert_eq!(g.atom_count(), 2);
        assert_eq!(g.clauses()[0].weight, 0.8);
    }
}
