//! Grounding: turn a first-order MLN program plus a constant domain into a
//! ground Markov network (atoms + weighted ground clauses).
//!
//! Grounding substitutes every variable of every clause with every constant
//! of the domain (the paper's "grounding process ... replaces variables in
//! the MLN rule with the corresponding constants").  The resulting ground
//! clauses reference atoms by index in a dense atom table so inference and
//! learning can use flat `Vec<bool>` assignments.

use crate::clause::{GroundClause, Term};
use crate::predicate::{GroundAtom, Literal};
use crate::program::MlnProgram;
use crate::symbols::Symbol;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A ground Markov network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundMln {
    atoms: Vec<GroundAtom>,
    #[serde(skip)]
    atom_index: HashMap<GroundAtom, usize>,
    clauses: Vec<GroundClause>,
}

impl GroundMln {
    /// Create an empty ground network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a ground atom, returning its dense index.
    pub fn atom(&mut self, atom: GroundAtom) -> usize {
        if let Some(&idx) = self.atom_index.get(&atom) {
            return idx;
        }
        let idx = self.atoms.len();
        self.atom_index.insert(atom.clone(), idx);
        self.atoms.push(atom);
        idx
    }

    /// Look up an atom without interning.
    pub fn atom_id(&self, atom: &GroundAtom) -> Option<usize> {
        self.atom_index.get(atom).copied()
    }

    /// The atom stored at `idx`.
    pub fn atom_at(&self, idx: usize) -> &GroundAtom {
        &self.atoms[idx]
    }

    /// Number of ground atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Add a ground clause.
    pub fn add_clause(&mut self, clause: GroundClause) {
        self.clauses.push(clause);
    }

    /// The ground clauses.
    pub fn clauses(&self) -> &[GroundClause] {
        &self.clauses
    }

    /// Mutable access to the ground clauses (used by weight learning).
    pub fn clauses_mut(&mut self) -> &mut [GroundClause] {
        &mut self.clauses
    }

    /// Ground clauses that mention the atom `atom_idx` — the atom's Markov
    /// blanket, used by Gibbs sampling and pseudo-likelihood learning.
    pub fn clauses_touching(&self, atom_idx: usize) -> Vec<usize> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.literals.iter().any(|l| l.atom == atom_idx))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total weighted count of satisfied clauses under `assignment` — the
    /// exponent `Σ wᵢ nᵢ(x)` of Eq. 2.
    pub fn weighted_satisfied(&self, assignment: &[bool]) -> f64 {
        self.clauses
            .iter()
            .filter(|c| c.satisfied(assignment))
            .map(|c| c.weight)
            .sum()
    }
}

/// A ground clause whose literals still carry full [`GroundAtom`]s instead of
/// dense atom indices — the unit of work the parallel grounding phase
/// produces before the (inherently sequential) atom-interning pass.
struct RawGroundClause {
    literals: Vec<(GroundAtom, bool)>,
    weight: f64,
    source_clause: usize,
}

/// Ground `program` over all constants of its symbol table.
///
/// Every variable ranges over the whole constant domain.  This is the
/// textbook grounding semantics; for large domains callers should restrict
/// the constant table to the relevant constants first (MLNClean does exactly
/// that via its block/group index).
///
/// The combinatorial binding enumeration — the hot loop, `O(|constants|^v)`
/// per clause — runs in parallel: the work is split by (clause, binding of
/// the clause's first variable), processed in bounded batches, and the
/// resulting ground clauses are reassembled in enumeration order, after
/// which atoms are interned sequentially.  Batching keeps peak memory at
/// `O(batch)` raw clauses instead of materializing the whole raw grounding
/// next to the final network.  The produced network is bit-identical to a
/// fully serial grounding.
pub fn ground_program(program: &MlnProgram) -> GroundMln {
    let constants: Vec<Symbol> = program.constants.symbols().collect();

    // Work items in deterministic enumeration order.  `None` stands for "no
    // variables to bind" (the clause passes through as already ground).
    let mut items: Vec<(usize, Vec<String>, Option<Symbol>)> = Vec::new();
    for (clause_idx, wc) in program.clauses().iter().enumerate() {
        let vars = wc.clause.variables();
        if vars.is_empty() {
            items.push((clause_idx, vars, None));
        } else {
            for &c in &constants {
                items.push((clause_idx, vars.clone(), Some(c)));
            }
        }
    }

    let mut network = GroundMln::new();
    let batch = (rayon::current_num_threads() * 4).max(1);
    for chunk in items.chunks(batch) {
        let grounded: Vec<Vec<RawGroundClause>> = chunk
            .par_iter()
            .map(|(clause_idx, vars, first)| {
                let wc = &program.clauses()[*clause_idx];
                let mut raw = Vec::new();
                let mut binding: HashMap<String, Symbol> = HashMap::new();
                let depth = match first {
                    None => 0,
                    Some(c) => {
                        binding.insert(vars[0].clone(), *c);
                        1
                    }
                };
                enumerate_bindings(vars, depth, &constants, &mut binding, &mut |b| {
                    raw.push(RawGroundClause {
                        literals: bind_raw_literals(&wc.clause, b),
                        weight: wc.weight,
                        source_clause: *clause_idx,
                    });
                });
                raw
            })
            .collect();

        // Sequential pass per batch: intern atoms in first-encounter order,
        // exactly as the serial grounding would, then drop the raw clauses.
        for raw in grounded.into_iter().flatten() {
            let literals = raw
                .literals
                .into_iter()
                .map(|(atom, positive)| {
                    let atom_idx = network.atom(atom);
                    if positive {
                        Literal::positive(atom_idx)
                    } else {
                        Literal::negative(atom_idx)
                    }
                })
                .collect();
            network.add_clause(GroundClause {
                literals,
                weight: raw.weight,
                source_clause: raw.source_clause,
            });
        }
    }
    network
}

/// Serial reference implementation of [`ground_program`], kept for the
/// parallel-equivalence tests and for profiling the sequential baseline.
pub fn ground_program_serial(program: &MlnProgram) -> GroundMln {
    let constants: Vec<Symbol> = program.constants.symbols().collect();
    let mut network = GroundMln::new();

    for (clause_idx, wc) in program.clauses().iter().enumerate() {
        let vars = wc.clause.variables();
        let mut intern = |raw: RawGroundClause| {
            let literals = raw
                .literals
                .into_iter()
                .map(|(atom, positive)| {
                    let atom_idx = network.atom(atom);
                    if positive {
                        Literal::positive(atom_idx)
                    } else {
                        Literal::negative(atom_idx)
                    }
                })
                .collect();
            network.add_clause(GroundClause {
                literals,
                weight: raw.weight,
                source_clause: raw.source_clause,
            });
        };
        if vars.is_empty() {
            intern(RawGroundClause {
                literals: bind_raw_literals(&wc.clause, &HashMap::new()),
                weight: wc.weight,
                source_clause: clause_idx,
            });
            continue;
        }
        let mut binding: HashMap<String, Symbol> = HashMap::new();
        enumerate_bindings(&vars, 0, &constants, &mut binding, &mut |b| {
            intern(RawGroundClause {
                literals: bind_raw_literals(&wc.clause, b),
                weight: wc.weight,
                source_clause: clause_idx,
            });
        });
    }
    network
}

fn enumerate_bindings<F: FnMut(&HashMap<String, Symbol>)>(
    vars: &[String],
    depth: usize,
    constants: &[Symbol],
    binding: &mut HashMap<String, Symbol>,
    emit: &mut F,
) {
    if depth == vars.len() {
        emit(binding);
        return;
    }
    for &c in constants {
        binding.insert(vars[depth].clone(), c);
        enumerate_bindings(vars, depth + 1, constants, binding, emit);
    }
    binding.remove(&vars[depth]);
}

fn bind_raw_literals(
    clause: &crate::clause::Clause,
    binding: &HashMap<String, Symbol>,
) -> Vec<(GroundAtom, bool)> {
    clause
        .literals
        .iter()
        .map(|lit| {
            let args: Vec<Symbol> = lit
                .terms
                .iter()
                .map(|t| match t {
                    Term::Constant(c) => *c,
                    Term::Variable(v) => *binding
                        .get(v)
                        .expect("every clause variable is bound during grounding"),
                })
                .collect();
            (GroundAtom::new(lit.predicate, args), lit.positive)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{Clause, ClauseLiteral, Term};

    /// The classic "smoking causes cancer, friends smoke alike" program.
    fn smokers_program(people: &[&str]) -> MlnProgram {
        let mut p = MlnProgram::new();
        let smokes = p.declare_predicate("Smokes", 1);
        let cancer = p.declare_predicate("Cancer", 1);
        let friends = p.declare_predicate("Friends", 2);
        for person in people {
            p.constant(person);
        }
        // ¬Smokes(x) ∨ Cancer(x), weight 1.5
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(smokes, vec![Term::var("x")]),
                ClauseLiteral::positive(cancer, vec![Term::var("x")]),
            ]),
            1.5,
        );
        // ¬Friends(x,y) ∨ ¬Smokes(x) ∨ Smokes(y), weight 1.1
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(friends, vec![Term::var("x"), Term::var("y")]),
                ClauseLiteral::negative(smokes, vec![Term::var("x")]),
                ClauseLiteral::positive(smokes, vec![Term::var("y")]),
            ]),
            1.1,
        );
        p
    }

    #[test]
    fn grounding_counts() {
        let p = smokers_program(&["anna", "bob"]);
        let g = ground_program(&p);
        // Clause 1 has one variable → 2 groundings; clause 2 has two → 4.
        assert_eq!(g.clauses().len(), 2 + 4);
        // Atoms: Smokes(a), Smokes(b), Cancer(a), Cancer(b), Friends over 4 pairs.
        assert_eq!(g.atom_count(), 2 + 2 + 4);
    }

    #[test]
    fn weighted_satisfaction_counts() {
        let p = smokers_program(&["anna"]);
        let g = ground_program(&p);
        // Atoms with one person: Smokes(anna), Cancer(anna), Friends(anna,anna).
        assert_eq!(g.atom_count(), 3);
        // All false: ¬Smokes ∨ Cancer satisfied; friendship clause satisfied.
        let all_false = vec![false; g.atom_count()];
        let total: f64 = g.clauses().iter().map(|c| c.weight).sum();
        assert!((g.weighted_satisfied(&all_false) - total).abs() < 1e-9);
    }

    #[test]
    fn markov_blanket_lookup() {
        let p = smokers_program(&["anna", "bob"]);
        let g = ground_program(&p);
        for atom_idx in 0..g.atom_count() {
            for clause_idx in g.clauses_touching(atom_idx) {
                assert!(g.clauses()[clause_idx]
                    .literals
                    .iter()
                    .any(|l| l.atom == atom_idx));
            }
        }
    }

    #[test]
    fn parallel_grounding_matches_serial_bit_for_bit() {
        // The parallel grounding must produce the same atoms (same interning
        // order, hence same dense indices) and the same clause sequence as
        // the serial reference, on both small and larger domains.
        for n in [1usize, 2, 7, 23] {
            let people: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
            let refs: Vec<&str> = people.iter().map(String::as_str).collect();
            let p = smokers_program(&refs);
            let par = ground_program(&p);
            let ser = ground_program_serial(&p);
            assert_eq!(par, ser, "parallel and serial grounding diverged at n={n}");
        }
    }

    #[test]
    fn already_ground_clause_passes_through() {
        let mut p = MlnProgram::new();
        let ct = p.declare_predicate("CT", 1);
        let st = p.declare_predicate("ST", 1);
        let boaz = p.constant("BOAZ");
        let al = p.constant("AL");
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(ct, vec![Term::Constant(boaz)]),
                ClauseLiteral::positive(st, vec![Term::Constant(al)]),
            ]),
            0.8,
        );
        let g = ground_program(&p);
        assert_eq!(g.clauses().len(), 1);
        assert_eq!(g.atom_count(), 2);
        assert_eq!(g.clauses()[0].weight, 0.8);
    }
}
