//! Gibbs sampling for marginal probabilities `Pr(atom = true | evidence)`.
//!
//! Each sweep resamples every non-evidence atom from its conditional
//! distribution given its Markov blanket:
//!
//! ```text
//! Pr(X=true | blanket) = σ( Σ_{c ∋ X} w_c · [sat(c | X=true)] − Σ_{c ∋ X} w_c · [sat(c | X=false)] )
//! ```

use crate::grounding::GroundMln;
use crate::world::World;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for the Gibbs sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GibbsConfig {
    /// Burn-in sweeps discarded before counting.
    pub burn_in: usize,
    /// Counted sweeps.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        GibbsConfig {
            burn_in: 100,
            samples: 1_000,
            seed: 42,
        }
    }
}

/// Gibbs sampler over a ground network.
#[derive(Debug, Clone)]
pub struct GibbsSampler {
    config: GibbsConfig,
}

impl GibbsSampler {
    /// Create a sampler.
    pub fn new(config: GibbsConfig) -> Self {
        GibbsSampler { config }
    }

    /// Estimate `Pr(atom = true)` for every atom, clamping atoms marked in
    /// `fixed` to their value in `evidence`.
    pub fn marginals(&self, network: &GroundMln, evidence: &World, fixed: &[bool]) -> Vec<f64> {
        assert_eq!(evidence.len(), network.atom_count());
        assert_eq!(fixed.len(), network.atom_count());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = network.atom_count();
        if n == 0 {
            return Vec::new();
        }

        let touching: Vec<Vec<usize>> = (0..n).map(|a| network.clauses_touching(a)).collect();
        let mut world = evidence.clone();
        for (idx, &is_fixed) in fixed.iter().enumerate() {
            if !is_fixed {
                world.set(idx, rng.gen_bool(0.5));
            }
        }

        let mut true_counts = vec![0usize; n];
        let total_sweeps = self.config.burn_in + self.config.samples;
        for sweep in 0..total_sweeps {
            for idx in 0..n {
                if fixed[idx] {
                    continue;
                }
                // Weight of satisfied touching clauses with the atom true vs false.
                world.set(idx, true);
                let w_true: f64 = touching[idx]
                    .iter()
                    .map(|&c| {
                        let clause = &network.clauses()[c];
                        if clause.satisfied(world.assignment()) {
                            clause.weight
                        } else {
                            0.0
                        }
                    })
                    .sum();
                world.set(idx, false);
                let w_false: f64 = touching[idx]
                    .iter()
                    .map(|&c| {
                        let clause = &network.clauses()[c];
                        if clause.satisfied(world.assignment()) {
                            clause.weight
                        } else {
                            0.0
                        }
                    })
                    .sum();
                let p_true = sigmoid(w_true - w_false);
                world.set(idx, rng.gen_bool(p_true.clamp(1e-12, 1.0 - 1e-12)));
            }
            if sweep >= self.config.burn_in {
                for (idx, count) in true_counts.iter_mut().enumerate() {
                    if world.get(idx) {
                        *count += 1;
                    }
                }
            }
        }

        (0..n)
            .map(|idx| {
                if fixed[idx] {
                    if evidence.get(idx) {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    true_counts[idx] as f64 / self.config.samples as f64
                }
            })
            .collect()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{Clause, ClauseLiteral, Term};
    use crate::grounding::ground_program;
    use crate::program::MlnProgram;

    #[test]
    fn positive_unit_clause_pushes_probability_up() {
        let mut p = MlnProgram::new();
        let a = p.declare_predicate("A", 1);
        let c = p.constant("c");
        p.add_clause(
            Clause::new(vec![ClauseLiteral::positive(a, vec![Term::Constant(c)])]),
            2.0,
        );
        let g = ground_program(&p);
        let sampler = GibbsSampler::new(GibbsConfig::default());
        let marginals = sampler.marginals(&g, &World::all_false(&g), &vec![false; g.atom_count()]);
        // Pr(A) should approach σ(2.0) ≈ 0.88.
        assert!(
            (marginals[0] - sigmoid(2.0)).abs() < 0.05,
            "got {}",
            marginals[0]
        );
    }

    #[test]
    fn evidence_is_clamped() {
        let mut p = MlnProgram::new();
        let a = p.declare_predicate("A", 1);
        let b = p.declare_predicate("B", 1);
        let c = p.constant("c");
        // ¬A(c) ∨ B(c) with a strong weight: if A is true, B should be likely.
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(a, vec![Term::Constant(c)]),
                ClauseLiteral::positive(b, vec![Term::Constant(c)]),
            ]),
            3.0,
        );
        let g = ground_program(&p);
        let a_idx = 0;
        let b_idx = 1;
        let mut evidence = World::all_false(&g);
        evidence.set(a_idx, true);
        let mut fixed = vec![false; g.atom_count()];
        fixed[a_idx] = true;
        let sampler = GibbsSampler::new(GibbsConfig::default());
        let marginals = sampler.marginals(&g, &evidence, &fixed);
        assert_eq!(marginals[a_idx], 1.0);
        assert!(
            marginals[b_idx] > 0.85,
            "B should be probable given A, got {}",
            marginals[b_idx]
        );
    }

    #[test]
    fn empty_network_returns_empty() {
        let p = MlnProgram::new();
        let g = ground_program(&p);
        let sampler = GibbsSampler::new(GibbsConfig::default());
        assert!(sampler.marginals(&g, &World::all_false(&g), &[]).is_empty());
    }

    #[test]
    fn unconstrained_atom_is_near_half() {
        let mut p = MlnProgram::new();
        let a = p.declare_predicate("A", 1);
        let c = p.constant("c");
        // Weight zero: no constraint at all.
        p.add_clause(
            Clause::new(vec![ClauseLiteral::positive(a, vec![Term::Constant(c)])]),
            0.0,
        );
        let g = ground_program(&p);
        let sampler = GibbsSampler::new(GibbsConfig {
            samples: 4000,
            ..Default::default()
        });
        let marginals = sampler.marginals(&g, &World::all_false(&g), &vec![false; g.atom_count()]);
        assert!((marginals[0] - 0.5).abs() < 0.05, "got {}", marginals[0]);
    }
}
