//! Inference over ground Markov networks: MAP inference with MaxWalkSAT and
//! marginal inference with Gibbs sampling.

pub mod gibbs;
pub mod walksat;
