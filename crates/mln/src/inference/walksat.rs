//! MaxWalkSAT: stochastic local search for the MAP (most probable) world of a
//! weighted ground network.
//!
//! The algorithm repeatedly picks an unsatisfied clause and flips one of its
//! atoms — a random one with probability `p` (noise), otherwise the atom
//! whose flip increases the total weight of satisfied clauses the most.

use crate::grounding::GroundMln;
use crate::world::World;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for [`MaxWalkSat`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkSatConfig {
    /// Maximum number of flips.
    pub max_flips: usize,
    /// Number of random restarts.
    pub max_tries: usize,
    /// Probability of a noisy (random) flip.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkSatConfig {
    fn default() -> Self {
        WalkSatConfig {
            max_flips: 10_000,
            max_tries: 3,
            noise: 0.2,
            seed: 42,
        }
    }
}

/// MaxWalkSAT MAP-inference engine.
#[derive(Debug, Clone)]
pub struct MaxWalkSat {
    config: WalkSatConfig,
}

impl MaxWalkSat {
    /// Create a solver with the given configuration.
    pub fn new(config: WalkSatConfig) -> Self {
        MaxWalkSat { config }
    }

    /// Find a high-weight world; atoms listed in `fixed` keep their value
    /// from `evidence` (evidence atoms are never flipped).
    pub fn solve(&self, network: &GroundMln, evidence: &World, fixed: &[bool]) -> World {
        assert_eq!(evidence.len(), network.atom_count());
        assert_eq!(fixed.len(), network.atom_count());
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Precompute the Markov blanket of every atom once.
        let touching: Vec<Vec<usize>> = (0..network.atom_count())
            .map(|a| network.clauses_touching(a))
            .collect();

        let mut best = evidence.clone();
        let mut best_potential = best.log_potential(network);

        for _try in 0..self.config.max_tries.max(1) {
            let mut world = evidence.clone();
            // Randomize the free atoms.
            for (idx, &is_fixed) in fixed.iter().enumerate() {
                if !is_fixed {
                    world.set(idx, rng.gen_bool(0.5));
                }
            }

            for _flip in 0..self.config.max_flips {
                let unsatisfied: Vec<usize> = network
                    .clauses()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.weight > 0.0 && !c.satisfied(world.assignment()))
                    .map(|(i, _)| i)
                    .collect();
                if unsatisfied.is_empty() {
                    break;
                }
                let clause_idx = *unsatisfied.choose(&mut rng).expect("non-empty");
                let clause = &network.clauses()[clause_idx];
                let candidates: Vec<usize> = clause
                    .literals
                    .iter()
                    .map(|l| l.atom)
                    .filter(|&a| !fixed[a])
                    .collect();
                if candidates.is_empty() {
                    continue;
                }

                let flip_atom = if rng.gen_bool(self.config.noise) {
                    *candidates.choose(&mut rng).expect("non-empty")
                } else {
                    // Greedy: flip the atom with the best delta.
                    *candidates
                        .iter()
                        .max_by(|&&a, &&b| {
                            let da = world.delta_log_potential(network, a, &touching[a]);
                            let db = world.delta_log_potential(network, b, &touching[b]);
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("non-empty")
                };
                world.flip(flip_atom);

                let potential = world.log_potential(network);
                if potential > best_potential {
                    best_potential = potential;
                    best = world.clone();
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{Clause, ClauseLiteral, Term};
    use crate::grounding::ground_program;
    use crate::program::MlnProgram;

    /// A ∧ (A → B) with weights should push both A and B true when A is
    /// rewarded.
    fn implication_network() -> (GroundMln, usize, usize) {
        let mut p = MlnProgram::new();
        let a = p.declare_predicate("A", 1);
        let b = p.declare_predicate("B", 1);
        let c = p.constant("c");
        // A(c) with weight 3 (rewarding A true).
        p.add_clause(
            Clause::new(vec![ClauseLiteral::positive(a, vec![Term::Constant(c)])]),
            3.0,
        );
        // ¬A(c) ∨ B(c) with weight 2.
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(a, vec![Term::Constant(c)]),
                ClauseLiteral::positive(b, vec![Term::Constant(c)]),
            ]),
            2.0,
        );
        let g = ground_program(&p);
        (g, 0, 1)
    }

    #[test]
    fn map_inference_prefers_satisfying_world() {
        let (g, a_idx, b_idx) = implication_network();
        let solver = MaxWalkSat::new(WalkSatConfig::default());
        let evidence = World::all_false(&g);
        let fixed = vec![false; g.atom_count()];
        let map = solver.solve(&g, &evidence, &fixed);
        assert!(map.get(a_idx), "A should be true in the MAP world");
        assert!(map.get(b_idx), "B should follow from A");
        assert_eq!(map.satisfied_count(&g), 2);
    }

    #[test]
    fn evidence_atoms_are_never_flipped() {
        let (g, a_idx, b_idx) = implication_network();
        let solver = MaxWalkSat::new(WalkSatConfig::default());
        let mut evidence = World::all_false(&g);
        evidence.set(a_idx, false);
        let mut fixed = vec![false; g.atom_count()];
        fixed[a_idx] = true; // clamp A = false
        let map = solver.solve(&g, &evidence, &fixed);
        assert!(!map.get(a_idx), "clamped evidence must be preserved");
        // With A false the implication clause is already satisfied, so B's
        // value is unconstrained; just check the clause is satisfied.
        assert!(g.clauses()[1].satisfied(map.assignment()));
        let _ = b_idx;
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _, _) = implication_network();
        let cfg = WalkSatConfig {
            seed: 7,
            ..Default::default()
        };
        let a = MaxWalkSat::new(cfg).solve(&g, &World::all_false(&g), &vec![false; g.atom_count()]);
        let b = MaxWalkSat::new(cfg).solve(&g, &World::all_false(&g), &vec![false; g.atom_count()]);
        assert_eq!(a, b);
    }
}
