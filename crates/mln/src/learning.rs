//! Weight learning.
//!
//! Two entry points:
//!
//! * [`DiagonalNewton`] — the generic learner used by Tuffy: maximise the
//!   pseudo-log-likelihood of an observed world with per-weight Newton steps
//!   using the diagonal of the Hessian.  It operates on a ground network and
//!   an observed [`World`].
//!
//! * [`learn_gamma_weights`] — the specialised form MLNClean applies inside
//!   each block of its MLN index.  Each distinct piece of data γᵢ of a block
//!   corresponds to one ground MLN rule whose true-grounding count is the
//!   number of tuples supporting it, `c(γᵢ)`.  Starting from the prior
//!   `w⁰ᵢ = c(γᵢ) / Σⱼ c(γⱼ)` (Eq. 4), diagonal-Newton ascent on the
//!   block's log-likelihood converges to weights whose softmax matches the
//!   empirical support distribution — i.e. better-supported γs end up with
//!   strictly larger weights, which is exactly the statistical signal the
//!   reliability score needs.

use crate::grounding::GroundMln;
use crate::world::World;
use serde::{Deserialize, Serialize};

/// Configuration shared by the learners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningConfig {
    /// Maximum number of Newton iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max absolute weight change.
    pub tolerance: f64,
    /// Additive damping added to the Hessian diagonal for numerical
    /// stability (also acts as an L2 prior).
    pub damping: f64,
    /// Hard cap on the absolute value of any learned weight.
    pub max_weight: f64,
}

impl Default for LearningConfig {
    fn default() -> Self {
        LearningConfig {
            max_iterations: 100,
            tolerance: 1e-6,
            damping: 1e-3,
            max_weight: 20.0,
        }
    }
}

/// Learn the weights of the γs of one block from their support counts.
///
/// `counts[i]` is `c(γᵢ)`, the number of tuples related to γᵢ in the block.
/// Returns one weight per γ; weights are strictly increasing in the support
/// count and the softmax of the returned weights reproduces the empirical
/// distribution `c(γᵢ)/Σc(γⱼ)` up to the configured tolerance.
pub fn learn_gamma_weights(counts: &[usize], config: &LearningConfig) -> Vec<f64> {
    if counts.is_empty() {
        return Vec::new();
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    let n = total as f64;
    // Empirical target distribution; zero-count γs get a small floor so the
    // log-likelihood stays finite (they can exist after group merges).
    let floor = 0.5 / n;
    let target: Vec<f64> = counts
        .iter()
        .map(|&c| if c == 0 { floor } else { c as f64 / n })
        .collect();
    let norm: f64 = target.iter().sum();
    let target: Vec<f64> = target.iter().map(|p| p / norm).collect();

    // Prior weights w⁰ᵢ = c(γᵢ)/Σc(γⱼ)  (Eq. 4 of the paper).
    let mut weights: Vec<f64> = counts.iter().map(|&c| c as f64 / n).collect();

    // Diagonal Newton ascent on the multinomial log-likelihood
    //   L(w) = Σᵢ N·targetᵢ · log softmax(w)ᵢ .
    // Gradient: gᵢ = N·(targetᵢ − pᵢ);  Hessian diag: Hᵢᵢ = −N·pᵢ(1−pᵢ).
    // The step is halved: the diagonal ignores the softmax coupling between
    // weights, and the undamped update oscillates (raising wᵢ lowers every
    // other pⱼ too).  A factor of ½ is the exact Newton step in the pairwise
    // weight-difference coordinate and converges quadratically.
    for _ in 0..config.max_iterations {
        let p = softmax(&weights);
        let fit_error = target
            .iter()
            .zip(&p)
            .map(|(t, q)| (t - q).abs())
            .fold(0.0f64, f64::max);
        if fit_error < config.tolerance {
            break;
        }
        let mut max_change: f64 = 0.0;
        for i in 0..weights.len() {
            let gradient = n * (target[i] - p[i]);
            let hessian = n * p[i] * (1.0 - p[i]) + config.damping;
            let step = 0.5 * gradient / hessian;
            let new_w = (weights[i] + step).clamp(-config.max_weight, config.max_weight);
            max_change = max_change.max((new_w - weights[i]).abs());
            weights[i] = new_w;
        }
        if max_change < config.tolerance {
            break;
        }
    }
    weights
}

fn softmax(w: &[f64]) -> Vec<f64> {
    let max = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = w.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Generic pseudo-log-likelihood weight learner with diagonal Newton updates,
/// in the style of Tuffy's learner.
///
/// Weights are learned **per first-order clause** (all groundings of a clause
/// share its weight).  The observed world is treated as fully observed
/// evidence; the pseudo-likelihood decomposes over atoms conditioned on their
/// Markov blankets.
#[derive(Debug, Clone)]
pub struct DiagonalNewton {
    config: LearningConfig,
}

impl DiagonalNewton {
    /// Create a learner.
    pub fn new(config: LearningConfig) -> Self {
        DiagonalNewton { config }
    }

    /// Learn per-source-clause weights from the observed world and write them
    /// back into the ground clauses.  Returns the learned weight of each
    /// source clause index.
    pub fn learn(&self, network: &mut GroundMln, observed: &World) -> Vec<f64> {
        let num_sources = network
            .clauses()
            .iter()
            .map(|c| c.source_clause + 1)
            .max()
            .unwrap_or(0);
        if num_sources == 0 {
            return Vec::new();
        }
        let mut weights = vec![0.0f64; num_sources];

        // Pre-compute, per atom, the clauses touching it.
        let n_atoms = network.atom_count();
        let touching: Vec<Vec<usize>> = (0..n_atoms).map(|a| network.clauses_touching(a)).collect();

        for _ in 0..self.config.max_iterations {
            // Apply the current per-source weights to all ground clauses.
            for clause in network.clauses_mut() {
                clause.weight = weights[clause.source_clause];
            }

            let mut gradient = vec![0.0f64; num_sources];
            let mut hessian = vec![self.config.damping; num_sources];

            // Pseudo-likelihood contributions per atom.
            let mut world = observed.clone();
            for (atom, atom_clauses) in touching.iter().enumerate() {
                if atom_clauses.is_empty() {
                    continue;
                }
                // Per-source satisfied-clause counts with the atom true/false.
                let mut n_true = vec![0.0f64; num_sources];
                let mut n_false = vec![0.0f64; num_sources];
                let original = world.get(atom);

                world.set(atom, true);
                for &c in atom_clauses {
                    let clause = &network.clauses()[c];
                    if clause.satisfied(world.assignment()) {
                        n_true[clause.source_clause] += 1.0;
                    }
                }
                world.set(atom, false);
                for &c in atom_clauses {
                    let clause = &network.clauses()[c];
                    if clause.satisfied(world.assignment()) {
                        n_false[clause.source_clause] += 1.0;
                    }
                }
                world.set(atom, original);

                // Conditional Pr(atom = true | blanket) under current weights.
                let score_true: f64 = (0..num_sources).map(|s| weights[s] * n_true[s]).sum();
                let score_false: f64 = (0..num_sources).map(|s| weights[s] * n_false[s]).sum();
                let p_true = 1.0 / (1.0 + (score_false - score_true).exp());

                let observed_true = observed.get(atom);
                for s in 0..num_sources {
                    let diff = n_true[s] - n_false[s];
                    // d/dw_s log Pr(x_atom | blanket)
                    let expected = p_true * diff;
                    let actual = if observed_true { diff } else { 0.0 };
                    gradient[s] += actual - expected;
                    hessian[s] += diff * diff * p_true * (1.0 - p_true);
                }
            }

            let mut max_change: f64 = 0.0;
            for s in 0..num_sources {
                let step = gradient[s] / hessian[s];
                let new_w =
                    (weights[s] + step).clamp(-self.config.max_weight, self.config.max_weight);
                max_change = max_change.max((new_w - weights[s]).abs());
                weights[s] = new_w;
            }
            if max_change < self.config.tolerance {
                break;
            }
        }

        for clause in network.clauses_mut() {
            clause.weight = weights[clause.source_clause];
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{Clause, ClauseLiteral, Term};
    use crate::grounding::ground_program;
    use crate::program::MlnProgram;
    use proptest::prelude::*;

    #[test]
    fn gamma_weights_follow_support() {
        let cfg = LearningConfig::default();
        // The paper's G13: γ1 {BOAZ, AL} supported by 2 tuples, γ2 {BOAZ, AK}
        // supported by 1 tuple → γ1 must get the larger weight.
        let w = learn_gamma_weights(&[2, 1], &cfg);
        assert!(w[0] > w[1], "{w:?}");

        // Softmax of the learned weights matches the empirical distribution.
        let p = softmax(&w);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-3, "{p:?}");
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-3, "{p:?}");
    }

    #[test]
    fn gamma_weights_edge_cases() {
        let cfg = LearningConfig::default();
        assert!(learn_gamma_weights(&[], &cfg).is_empty());
        assert_eq!(learn_gamma_weights(&[0, 0], &cfg), vec![0.0, 0.0]);
        // A single γ gets a finite weight.
        let single = learn_gamma_weights(&[5], &cfg);
        assert_eq!(single.len(), 1);
        assert!(single[0].is_finite());
    }

    #[test]
    fn gamma_weights_are_monotone_in_count() {
        let cfg = LearningConfig::default();
        let w = learn_gamma_weights(&[1, 3, 7, 7, 2], &cfg);
        assert!(w[2] > w[1] && w[1] > w[0]);
        assert!((w[2] - w[3]).abs() < 1e-6, "equal counts get equal weights");
        assert!(w[4] > w[0] && w[4] < w[1]);
    }

    #[test]
    fn newton_learner_rewards_satisfied_clause() {
        // Observed world: A(c) true, B(c) true — consistent with A → B.
        // A second clause A → ¬B is violated by the evidence and should get a
        // smaller (or negative) weight.
        let mut p = MlnProgram::new();
        let a = p.declare_predicate("A", 1);
        let b = p.declare_predicate("B", 1);
        let c = p.constant("c");
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(a, vec![Term::Constant(c)]),
                ClauseLiteral::positive(b, vec![Term::Constant(c)]),
            ]),
            0.0,
        );
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(a, vec![Term::Constant(c)]),
                ClauseLiteral::negative(b, vec![Term::Constant(c)]),
            ]),
            0.0,
        );
        let mut g = ground_program(&p);
        let mut observed = World::all_false(&g);
        let a_idx = g
            .atom_id(&crate::predicate::GroundAtom::new(a, vec![c]))
            .unwrap();
        let b_idx = g
            .atom_id(&crate::predicate::GroundAtom::new(b, vec![c]))
            .unwrap();
        observed.set(a_idx, true);
        observed.set(b_idx, true);

        let learner = DiagonalNewton::new(LearningConfig {
            max_iterations: 200,
            ..Default::default()
        });
        let weights = learner.learn(&mut g, &observed);
        assert_eq!(weights.len(), 2);
        assert!(
            weights[0] > weights[1],
            "the satisfied implication should outweigh the violated one: {weights:?}"
        );
    }

    #[test]
    fn newton_learner_empty_network() {
        let p = MlnProgram::new();
        let mut g = ground_program(&p);
        let learner = DiagonalNewton::new(LearningConfig::default());
        let empty_world = World::all_false(&g);
        assert!(learner.learn(&mut g, &empty_world).is_empty());
    }

    proptest! {
        #[test]
        fn gamma_weight_order_matches_count_order(counts in proptest::collection::vec(0usize..50, 1..8)) {
            let cfg = LearningConfig::default();
            let w = learn_gamma_weights(&counts, &cfg);
            prop_assert_eq!(w.len(), counts.len());
            for i in 0..counts.len() {
                for j in 0..counts.len() {
                    if counts[i] > counts[j] && counts.iter().sum::<usize>() > 0 {
                        prop_assert!(w[i] >= w[j] - 1e-9,
                            "counts {:?} produced weights {:?}", counts, w);
                    }
                }
            }
        }

        #[test]
        fn gamma_weights_are_finite_and_bounded(counts in proptest::collection::vec(0usize..1000, 1..10)) {
            let cfg = LearningConfig::default();
            let w = learn_gamma_weights(&counts, &cfg);
            for x in w {
                prop_assert!(x.is_finite());
                prop_assert!(x.abs() <= cfg.max_weight + 1e-9);
            }
        }
    }
}
