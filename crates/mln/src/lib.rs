//! A from-scratch Markov Logic Network (MLN) engine.
//!
//! Markov logic [Domingos & Lowd 2009] attaches a real-valued weight to each
//! first-order clause; together with a finite set of constants the weighted
//! clauses define a Markov network over all ground atoms whose probability of
//! a world `x` is
//!
//! ```text
//! Pr(x) = 1/Z · exp( Σ_i  w_i · n_i(x) )
//! ```
//!
//! where `n_i(x)` is the number of true groundings of clause `i` in `x`
//! (Eq. 2 in the MLNClean paper).
//!
//! This crate provides the pieces MLNClean needs, plus a general-purpose
//! engine usable on its own:
//!
//! * a predicate / literal / clause representation with variables and
//!   constants ([`predicate`], [`clause`]);
//! * grounding of clauses against a constant domain ([`grounding`]), which is
//!   also used to derive the "ground MLN rules" of the paper's Table 3 from a
//!   dataset ([`convert`]);
//! * possible-world bookkeeping and true-grounding counts ([`world`]);
//! * MAP inference with MaxWalkSAT and marginal inference with Gibbs
//!   sampling ([`inference`]);
//! * weight learning with the diagonal-Newton method used by Tuffy,
//!   both in its generic pseudo-likelihood form and in the specialised
//!   "γ-weight" form MLNClean uses inside each block ([`learning`]).

pub mod clause;
pub mod convert;
pub mod grounding;
pub mod inference;
pub mod learning;
pub mod predicate;
pub mod program;
pub mod symbols;
pub mod world;

pub use clause::{Clause, GroundClause, Term};
pub use convert::{ground_rules_for_dataset, rule_to_clause, GroundRuleInstance};
pub use grounding::{ground_program, ground_program_serial, GroundMln};
pub use inference::gibbs::{GibbsConfig, GibbsSampler};
pub use inference::walksat::{MaxWalkSat, WalkSatConfig};
pub use learning::{learn_gamma_weights, DiagonalNewton, LearningConfig};
pub use predicate::{GroundAtom, Literal, Predicate, PredicateId};
pub use program::{MlnProgram, WeightedClause};
pub use symbols::{Symbol, SymbolTable};
pub use world::World;
