//! Predicates, ground atoms, and literals.
//!
//! In the MLNClean setting each attribute becomes a unary predicate over
//! values — `CT("DOTHAN")`, `ST("AL")` — but the engine supports arbitrary
//! arities (e.g. the classic `Friends(x, y)` examples used in the tests).

use crate::symbols::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a predicate within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PredicateId(pub u32);

impl PredicateId {
    /// Raw index of the predicate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A predicate declaration: a name and an arity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Predicate name (e.g. an attribute name).
    pub name: String,
    /// Number of arguments.
    pub arity: usize,
}

impl Predicate {
    /// Declare a predicate.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Predicate {
            name: name.into(),
            arity,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// A ground atom: a predicate applied to constant arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroundAtom {
    /// The predicate being applied.
    pub predicate: PredicateId,
    /// Constant arguments.
    pub args: Vec<Symbol>,
}

impl GroundAtom {
    /// Create a ground atom.
    pub fn new(predicate: PredicateId, args: Vec<Symbol>) -> Self {
        GroundAtom { predicate, args }
    }
}

/// A signed ground atom inside a ground clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Index of the ground atom in the ground network's atom table.
    pub atom: usize,
    /// `true` for a positive literal, `false` for a negated one.
    pub positive: bool,
}

impl Literal {
    /// Positive literal over atom index `atom`.
    pub fn positive(atom: usize) -> Self {
        Literal {
            atom,
            positive: true,
        }
    }

    /// Negative literal over atom index `atom`.
    pub fn negative(atom: usize) -> Self {
        Literal {
            atom,
            positive: false,
        }
    }

    /// Whether the literal is satisfied when its atom has truth value `value`.
    pub fn satisfied_by(&self, value: bool) -> bool {
        self.positive == value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_satisfaction() {
        let pos = Literal::positive(3);
        let neg = Literal::negative(3);
        assert!(pos.satisfied_by(true));
        assert!(!pos.satisfied_by(false));
        assert!(neg.satisfied_by(false));
        assert!(!neg.satisfied_by(true));
    }

    #[test]
    fn predicate_display() {
        assert_eq!(Predicate::new("Friends", 2).to_string(), "Friends/2");
        assert_eq!(Predicate::new("CT", 1).to_string(), "CT/1");
    }

    #[test]
    fn ground_atoms_compare_structurally() {
        let a = GroundAtom::new(PredicateId(0), vec![Symbol(1), Symbol(2)]);
        let b = GroundAtom::new(PredicateId(0), vec![Symbol(1), Symbol(2)]);
        let c = GroundAtom::new(PredicateId(0), vec![Symbol(2), Symbol(1)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
