//! An MLN program: predicate declarations, a constant table, and weighted
//! first-order clauses.

use crate::clause::Clause;
use crate::predicate::{Predicate, PredicateId};
use crate::symbols::{Symbol, SymbolTable};
use serde::{Deserialize, Serialize};

/// A first-order clause together with its weight (the rule–weight pair of
/// Definition 1 in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedClause {
    /// The clause.
    pub clause: Clause,
    /// Its weight; larger weights mean stronger constraints.  Hard
    /// constraints can be approximated with a large finite weight.
    pub weight: f64,
}

/// A Markov logic program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MlnProgram {
    predicates: Vec<Predicate>,
    /// Interned constants shared by all clauses and evidence.
    pub constants: SymbolTable,
    clauses: Vec<WeightedClause>,
}

impl MlnProgram {
    /// Create an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a predicate and return its id.  Re-declaring a predicate with
    /// the same name and arity returns the existing id.
    pub fn declare_predicate(&mut self, name: &str, arity: usize) -> PredicateId {
        if let Some(idx) = self
            .predicates
            .iter()
            .position(|p| p.name == name && p.arity == arity)
        {
            return PredicateId(idx as u32);
        }
        let id = PredicateId(self.predicates.len() as u32);
        self.predicates.push(Predicate::new(name, arity));
        id
    }

    /// Look up a predicate by name.
    pub fn predicate_id(&self, name: &str) -> Option<PredicateId> {
        self.predicates
            .iter()
            .position(|p| p.name == name)
            .map(|i| PredicateId(i as u32))
    }

    /// The predicate declaration for `id`.
    pub fn predicate(&self, id: PredicateId) -> &Predicate {
        &self.predicates[id.index()]
    }

    /// Number of declared predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Intern a constant.
    pub fn constant(&mut self, name: &str) -> Symbol {
        self.constants.intern(name)
    }

    /// Add a weighted clause, returning its index.
    pub fn add_clause(&mut self, clause: Clause, weight: f64) -> usize {
        self.clauses.push(WeightedClause { clause, weight });
        self.clauses.len() - 1
    }

    /// The weighted clauses.
    pub fn clauses(&self) -> &[WeightedClause] {
        &self.clauses
    }

    /// Mutable access to clause weights (used by weight learning).
    pub fn set_weight(&mut self, clause_idx: usize, weight: f64) {
        self.clauses[clause_idx].weight = weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{ClauseLiteral, Term};

    #[test]
    fn predicate_declaration_is_idempotent() {
        let mut p = MlnProgram::new();
        let a = p.declare_predicate("Smokes", 1);
        let b = p.declare_predicate("Cancer", 1);
        assert_ne!(a, b);
        assert_eq!(p.declare_predicate("Smokes", 1), a);
        assert_eq!(p.predicate_count(), 2);
        assert_eq!(p.predicate(a).name, "Smokes");
        assert_eq!(p.predicate_id("Cancer"), Some(b));
        assert_eq!(p.predicate_id("Friends"), None);
    }

    #[test]
    fn clauses_keep_weights() {
        let mut p = MlnProgram::new();
        let smokes = p.declare_predicate("Smokes", 1);
        let cancer = p.declare_predicate("Cancer", 1);
        let idx = p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(smokes, vec![Term::var("x")]),
                ClauseLiteral::positive(cancer, vec![Term::var("x")]),
            ]),
            1.5,
        );
        assert_eq!(p.clauses()[idx].weight, 1.5);
        p.set_weight(idx, 2.0);
        assert_eq!(p.clauses()[idx].weight, 2.0);
    }
}
