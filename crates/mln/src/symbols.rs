//! Constant interning: every constant appearing in ground atoms is mapped to
//! a small integer [`Symbol`], so grounding and inference work on ids rather
//! than strings.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index of the symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional string ↔ [`Symbol`] table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol (existing or newly assigned).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// Look up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// The string for a symbol.
    ///
    /// # Panics
    /// Panics if the symbol does not belong to this table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All symbols in interning order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> {
        (0..self.names.len() as u32).map(Symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("BOAZ");
        let b = t.intern("DOTHAN");
        assert_ne!(a, b);
        assert_eq!(t.intern("BOAZ"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("AL");
        assert_eq!(t.resolve(a), "AL");
        assert_eq!(t.lookup("AL"), Some(a));
        assert_eq!(t.lookup("AK"), None);
    }

    #[test]
    fn symbols_iterates_in_order() {
        let mut t = SymbolTable::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| t.intern(s)).collect();
        assert_eq!(t.symbols().collect::<Vec<_>>(), syms);
    }
}
