//! Possible worlds: truth assignments over the ground atoms of a
//! [`crate::grounding::GroundMln`], with the bookkeeping needed by inference
//! and learning (per-clause satisfaction counts and the log-potential
//! `Σ wᵢ nᵢ(x)` of Eq. 2).

use crate::grounding::GroundMln;
use serde::{Deserialize, Serialize};

/// A truth assignment over all ground atoms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    assignment: Vec<bool>,
}

impl World {
    /// A world with every atom false.
    pub fn all_false(network: &GroundMln) -> Self {
        World {
            assignment: vec![false; network.atom_count()],
        }
    }

    /// A world with every atom true.
    pub fn all_true(network: &GroundMln) -> Self {
        World {
            assignment: vec![true; network.atom_count()],
        }
    }

    /// A world from an explicit assignment.
    pub fn from_assignment(assignment: Vec<bool>) -> Self {
        World { assignment }
    }

    /// The truth value of atom `idx`.
    pub fn get(&self, idx: usize) -> bool {
        self.assignment[idx]
    }

    /// Set the truth value of atom `idx`.
    pub fn set(&mut self, idx: usize, value: bool) {
        self.assignment[idx] = value;
    }

    /// Flip atom `idx`.
    pub fn flip(&mut self, idx: usize) {
        self.assignment[idx] = !self.assignment[idx];
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[bool] {
        &self.assignment
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the world has no atoms.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of ground clauses of `network` satisfied in this world.
    pub fn satisfied_count(&self, network: &GroundMln) -> usize {
        network
            .clauses()
            .iter()
            .filter(|c| c.satisfied(&self.assignment))
            .count()
    }

    /// The unnormalized log-probability `Σ wᵢ nᵢ(x)` of this world (Eq. 2
    /// without `-ln Z`).
    pub fn log_potential(&self, network: &GroundMln) -> f64 {
        network.weighted_satisfied(&self.assignment)
    }

    /// The change in log-potential if atom `idx` were flipped.  Only clauses
    /// touching the atom need to be re-evaluated, which is what makes Gibbs
    /// sampling and WalkSAT efficient.
    pub fn delta_log_potential(
        &mut self,
        network: &GroundMln,
        idx: usize,
        touching: &[usize],
    ) -> f64 {
        let before: f64 = touching
            .iter()
            .map(|&c| {
                let clause = &network.clauses()[c];
                if clause.satisfied(&self.assignment) {
                    clause.weight
                } else {
                    0.0
                }
            })
            .sum();
        self.flip(idx);
        let after: f64 = touching
            .iter()
            .map(|&c| {
                let clause = &network.clauses()[c];
                if clause.satisfied(&self.assignment) {
                    clause.weight
                } else {
                    0.0
                }
            })
            .sum();
        self.flip(idx); // restore
        after - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{Clause, ClauseLiteral, Term};
    use crate::grounding::ground_program;
    use crate::program::MlnProgram;

    fn tiny_network() -> GroundMln {
        let mut p = MlnProgram::new();
        let a = p.declare_predicate("A", 1);
        let b = p.declare_predicate("B", 1);
        p.constant("c1");
        p.constant("c2");
        // ¬A(x) ∨ B(x), weight 2.0
        p.add_clause(
            Clause::new(vec![
                ClauseLiteral::negative(a, vec![Term::var("x")]),
                ClauseLiteral::positive(b, vec![Term::var("x")]),
            ]),
            2.0,
        );
        ground_program(&p)
    }

    #[test]
    fn log_potential_matches_manual_count() {
        let g = tiny_network();
        let all_false = World::all_false(&g);
        assert_eq!(all_false.satisfied_count(&g), 2);
        assert!((all_false.log_potential(&g) - 4.0).abs() < 1e-12);

        // Make A(c1) true and B(c1) false → that grounding becomes unsatisfied.
        let mut w = World::all_false(&g);
        w.set(0, true);
        assert_eq!(w.satisfied_count(&g), 1);
        assert!((w.log_potential(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delta_matches_full_recomputation() {
        let g = tiny_network();
        let mut w = World::all_false(&g);
        for idx in 0..w.len() {
            let touching = g.clauses_touching(idx);
            let before = w.log_potential(&g);
            let delta = w.delta_log_potential(&g, idx, &touching);
            w.flip(idx);
            let after = w.log_potential(&g);
            w.flip(idx);
            assert!(((after - before) - delta).abs() < 1e-9);
        }
    }

    #[test]
    fn all_true_world() {
        let g = tiny_network();
        let w = World::all_true(&g);
        assert_eq!(w.satisfied_count(&g), 2, "¬A∨B is satisfied when B is true");
        assert!(!w.is_empty());
    }
}
